//! The Fela runtime: TS + workers + network + GPU, wired into the discrete-event
//! simulator (§III-A workflow).
//!
//! Event flow per token:
//!
//! ```text
//! worker idle ──RPC──▶ RequestArrive @TS ──RPC(+conflict penalty)──▶ GrantArrive
//!      ▲                                                            │
//!      │                         dependency flows (from holders) ───┤
//!      │                                                            ▼
//! ReportArrive @TS ◀──RPC── ComputeDone ◀── compute(+straggler) ── start
//! ```
//!
//! Reports piggyback the next request (§III-D "Fela combines report and request").
//! When a level's last token completes, its parameters ring-all-reduce among the
//! sync group *without blocking trainers* (§III-A); the BSP barrier closes an
//! iteration once all tokens are trained and all syncs have drained.

use fela_cluster::{FaultKind, Scenario, TrainingRuntime};
use fela_metrics::RunReport;
use fela_model::{bin_partition, Partition, PartitionOptions};
use fela_net::{FlowSpec, Network, NodeId, RingAllReduce};
use fela_sim::{
    BusyTracker, Engine, EventId, EventKind, Scheduler, SimDuration, SimTime, Trace, World,
};

use crate::config::{FelaConfig, RecoveryConfig};
use crate::coordinator::ControlPlane;
use crate::error::ScheduleError;
use crate::plan::TokenPlan;
use crate::server::{Grant, LevelMeta, SyncSpec};
use crate::token::TokenId;
use crate::wal::{self, DurabilityOptions, FileWal, MemWal};

/// The simulation runtime treats any scheduling error as a fatal bug in the
/// scheduler itself (a real deployment would abort the job the same way).
fn sched_ok<T>(result: Result<T, ScheduleError>) -> T {
    match result {
        Ok(v) => v,
        Err(e) => panic!("Fela scheduler invariant violated: {e}"),
    }
}

/// Tag namespace for network flows: dependency fetches carry the token id,
/// sync flows carry the level.
const TAG_DEP: u64 = 1 << 62;
const TAG_SYNC: u64 = 2 << 62;

fn dep_tag(token: TokenId) -> u64 {
    TAG_DEP | token.0
}

fn sync_tag(level: usize, iteration: u64) -> u64 {
    // Under SSP staleness two syncs of one level can be in flight concurrently,
    // so the tag carries both coordinates.
    TAG_SYNC | ((level as u64) << 40) | (iteration & 0xFF_FFFF_FFFF)
}

enum Ev {
    /// A worker's token request reaches the TS.
    RequestArrive { worker: usize },
    /// A grant reaches the worker. `epoch` is the addressee's liveness epoch at
    /// send time: a grant in flight across a crash is void on arrival (the TS
    /// revoked its lease when it processed the crash).
    GrantArrive {
        worker: usize,
        grant: Grant,
        epoch: u64,
    },
    /// The worker's GPU finishes a token.
    ComputeDone { worker: usize },
    /// A completion report (with piggybacked request) reaches the TS.
    ReportArrive { worker: usize, token: TokenId },
    /// The network has one or more flows completing now.
    NetWake,
    /// An injected fault strikes `worker` (scheduled when the victim's
    /// iteration is released).
    Fault { worker: usize, kind: FaultKind },
    /// A crashed worker rejoins after its downtime.
    Restart { worker: usize },
    /// The lease deadline armed for `(token, attempt)` passes. Stale timers —
    /// the token was reported, or already revoked and re-granted — no-op.
    LeaseExpire { token: TokenId, attempt: u64 },
    /// The Token Server process dies, recovers from its write-ahead log, and
    /// is unreachable for `down` (every server-touching event stalls).
    ServerCrash { down: SimDuration },
}

/// One compute-span query: everything a worker (local or remote) needs to
/// price a granted token on its GPU. All fields are plain data so the request
/// can cross a process or wire boundary unchanged.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ComputeRequest {
    /// The worker the token was granted to.
    pub worker: usize,
    /// Token id (for correlation on asynchronous backends).
    pub token: u64,
    /// Sub-model level the token trains.
    pub level: usize,
    /// First model unit of the sub-model (inclusive).
    pub unit_start: usize,
    /// Last model unit of the sub-model (exclusive).
    pub unit_end: usize,
    /// Samples the token covers.
    pub batch: u64,
    /// BSP iteration the token belongs to.
    pub iteration: u64,
}

/// Where compute spans come from.
///
/// The simulation's event loop is backend-agnostic: when a worker starts a
/// token it asks the backend how many seconds the span costs and schedules
/// `ComputeDone` accordingly. [`LocalCompute`] answers inline from the
/// scenario's analytic GPU model; `fela-live` answers by round-tripping the
/// request to a real worker thread over a transport. The contract that keeps
/// every backend bit-identical: the returned value is the *raw* `f64` seconds
/// of [`fela_cluster::ClusterSpec::compute_secs`] — the runtime converts to
/// virtual time itself (lease deadlines multiply the raw seconds before any
/// nanosecond rounding, so a backend must not round first).
pub trait ComputeBackend {
    /// Prices one compute span in seconds.
    fn compute_secs(&mut self, scenario: &Scenario, req: &ComputeRequest) -> f64;
}

/// The default backend: evaluate the scenario's analytic GPU model inline.
#[derive(Clone, Copy, Default, Debug)]
pub struct LocalCompute;

impl ComputeBackend for LocalCompute {
    fn compute_secs(&mut self, scenario: &Scenario, req: &ComputeRequest) -> f64 {
        scenario.cluster.compute_secs(
            &scenario.model,
            req.unit_start,
            req.unit_end,
            req.batch,
            req.worker,
        )
    }
}

struct WorkerState {
    current: Option<Grant>,
    pending_fetches: usize,
    /// Liveness epoch, bumped on every crash: events addressed to a previous
    /// incarnation (an in-flight grant) are dropped on arrival.
    epoch: u64,
    /// The in-flight `ComputeDone` event and its scheduled instant, so a crash
    /// can cancel it and a hang can push it back.
    compute_ev: Option<(EventId, SimTime)>,
    /// The worker is frozen until this instant (Hang fault): computes cannot
    /// start earlier.
    hang_until: SimTime,
}

struct ActiveSync {
    level: usize,
    iteration: u64,
    /// Participants at start time, so a crash can restart the collective among
    /// the survivors.
    participants: Vec<usize>,
    bytes: u64,
    collective: RingAllReduce,
}

/// Fault-path counters, reported only when a fault model is active so
/// fault-free `RunReport`s stay byte-identical to pre-recovery builds.
#[derive(Default)]
struct FaultStats {
    crashes: u64,
    restarts: u64,
    revocations: u64,
    stale_reports: u64,
    quarantines: u64,
    server_crashes: u64,
    server_restarts: u64,
}

/// Where the run's write-ahead log lives. The in-memory handle is the
/// simulator's default (the crash injector reads the committed bytes straight
/// back); a `--wal-dir` run goes through a real file and real fsyncs.
enum WalHandle {
    Mem(MemWal),
    File(std::path::PathBuf),
}

impl WalHandle {
    fn bytes(&self) -> Vec<u8> {
        match self {
            WalHandle::Mem(m) => m.bytes(),
            WalHandle::File(path) => match std::fs::read(path) {
                Ok(b) => b,
                Err(e) => panic!("cannot read WAL {}: {e}", path.display()),
            },
        }
    }
}

struct FelaWorld<'a> {
    trace: Trace,
    /// Compute-span oracle: inline analytic model, or a live worker fleet.
    backend: &'a mut dyn ComputeBackend,
    scenario: Scenario,
    partition: Partition,
    server: ControlPlane,
    net: Network,
    net_ev: Option<EventId>,
    workers: Vec<WorkerState>,
    syncs: Vec<ActiveSync>,
    busy: Vec<BusyTracker>,
    /// Start instant of each released iteration (straggler floors).
    iter_starts: Vec<SimTime>,
    /// Completion instant of each fully synced iteration.
    iter_done: Vec<SimTime>,
    finished_at: Option<SimTime>,
    /// Whether the scenario injects faults. False keeps every fault code path
    /// cold: no fault events, no lease timers, no extra counters.
    fault_active: bool,
    /// Iterations whose fault declarations have been turned into events.
    faults_armed: usize,
    fault_stats: FaultStats,
    /// Level metadata, kept for rebuilding a plane on WAL recovery.
    meta: Vec<LevelMeta>,
    /// The write-ahead log, when durability is on (explicitly, or implied by
    /// a declared server fault).
    wal: Option<WalHandle>,
    /// Checkpoint after every N completed iterations (0 = never).
    checkpoint_every: u64,
    /// Completed-iteration count at the last checkpoint written.
    last_checkpoint: u64,
    /// The server process is down until this instant: server-touching events
    /// arriving earlier are deferred to it (ZERO when the server is up,
    /// which keeps crash-free runs byte-identical).
    server_frozen_until: SimTime,
}

impl FelaWorld<'_> {
    fn rpc(&self) -> SimDuration {
        self.server.config().rpc_latency
    }

    fn reschedule_net(&mut self, sched: &mut Scheduler<'_, Ev>) {
        if let Some(ev) = self.net_ev.take() {
            sched.cancel(ev);
        }
        if let Some(t) = self.net.next_completion() {
            // A flow can "complete" marginally in the past after float rounding;
            // clamp to now.
            let at = t.max(sched.now());
            self.net_ev = Some(sched.schedule_at(at, Ev::NetWake));
        }
    }

    /// Whether grants are leases with armed deadlines. Requires both an active
    /// fault model *and* recovery config: a fault-free run schedules no timer
    /// events at all, which is what keeps it bit-identical to a build without
    /// fault injection.
    fn leases_armed(&self) -> bool {
        self.fault_active && self.server.recovery_on()
    }

    /// The smallest-id eligible worker — mirrors the server's deterministic
    /// re-home target for crashed workers' data.
    fn rehome_target(&self) -> Option<usize> {
        (0..self.scenario.cluster.nodes)
            .find(|&w| self.server.is_alive(w) && !self.server.is_quarantined(w))
    }

    fn schedule_grant(&mut self, worker: usize, grant: Grant, sched: &mut Scheduler<'_, Ev>) {
        let mut delay = self.rpc();
        if grant.conflict {
            delay += self.server.config().conflict_penalty;
        }
        let epoch = self.workers[worker].epoch;
        sched.schedule_in(
            delay,
            Ev::GrantArrive {
                worker,
                grant,
                epoch,
            },
        );
    }

    fn serve_waiting(&mut self, sched: &mut Scheduler<'_, Ev>) {
        while let Some((worker, grant)) = sched_ok(self.server.pop_ready_grant(sched.now())) {
            self.schedule_grant(worker, grant, sched);
        }
    }

    /// Turns this scenario's fault declarations into events as iterations are
    /// released (a fault declared for iteration `k` strikes when `k` starts).
    fn arm_faults(&mut self, sched: &mut Scheduler<'_, Ev>) {
        if !self.fault_active {
            return;
        }
        while self.faults_armed < self.iter_starts.len() {
            let it = self.faults_armed as u64;
            for worker in 0..self.scenario.cluster.nodes {
                if let Some(kind) = self.scenario.fault_for(it, worker) {
                    sched.schedule_now(Ev::Fault { worker, kind });
                }
            }
            if let Some(down) = self.scenario.fault.server_fault_for(it) {
                sched.schedule_now(Ev::ServerCrash { down });
            }
            self.faults_armed += 1;
        }
    }

    fn start_compute(&mut self, worker: usize, sched: &mut Scheduler<'_, Ev>) {
        let Some(grant) = self.workers[worker].current.as_ref() else {
            panic!("worker {worker} started compute without a grant");
        };
        let sm = &self.partition.sub_models()[grant.token.level];
        let req = ComputeRequest {
            worker,
            token: grant.token.id.0,
            level: grant.token.level,
            unit_start: sm.unit_start,
            unit_end: sm.unit_end,
            batch: grant.token.batch,
            iteration: grant.token.iteration,
        };
        let token = grant.token.id;
        let attempt = grant.attempt;
        let iter = grant.token.iteration;
        let secs = self.backend.compute_secs(&self.scenario, &req);
        // Straggler sleep (§V-C2): the worker cannot start computing before
        // its iteration's start + d, so the sleep overlaps any scheduling idle
        // time (and overlapping iterations each charge their own sleep).
        let floor = self.iter_starts[iter as usize] + self.scenario.straggler_delay(iter, worker);
        let start = sched.now().max(floor).max(self.workers[worker].hang_until);
        self.busy[worker].begin(start);
        let done_at = start + SimDuration::from_secs_f64(secs);
        let ev = sched.schedule_at(done_at, Ev::ComputeDone { worker });
        self.workers[worker].compute_ev = Some((ev, done_at));
        if self.leases_armed() {
            if let Some(rec) = self.server.config().recovery {
                // Deadline = estimated cost × slack, doubled per prior expiry
                // (exponential backoff), plus flat control-plane grace.
                let backoff = (1u64 << attempt.min(32)) as f64;
                let deadline = start
                    + SimDuration::from_secs_f64(secs * rec.lease_slack * backoff)
                    + rec.lease_grace;
                sched.schedule_at(deadline, Ev::LeaseExpire { token, attempt });
            }
        }
    }

    fn start_syncs(&mut self, specs: Vec<SyncSpec>, sched: &mut Scheduler<'_, Ev>) {
        let now = sched.now();
        for spec in specs {
            self.trace.record_kind(
                now,
                "sync",
                EventKind::SyncStart {
                    level: spec.level,
                    iteration: spec.iteration,
                },
                || {
                    format!(
                        "all-reduce level {} iter {} ({} MB among {:?})",
                        spec.level + 1,
                        spec.iteration,
                        spec.bytes / 1_000_000,
                        spec.participants
                    )
                },
            );
            if spec.is_degenerate() {
                // Nothing crosses the wire: the update commits instantly, but the
                // commit point still appears in the trace for checkers.
                self.trace.record_kind(
                    now,
                    "sync",
                    EventKind::SyncDone {
                        level: spec.level,
                        iteration: spec.iteration,
                    },
                    || {
                        format!(
                            "degenerate sync level {} iter {} committed for free",
                            spec.level + 1,
                            spec.iteration
                        )
                    },
                );
                sched_ok(self.server.sync_finished(spec.level, spec.iteration));
                continue;
            }
            let participants = spec.participants.iter().map(|&w| NodeId(w)).collect();
            let collective = RingAllReduce::start(
                &mut self.net,
                now,
                participants,
                spec.bytes,
                sync_tag(spec.level, spec.iteration),
            );
            debug_assert!(!collective.is_done(), "non-degenerate syncs move bytes");
            self.syncs.push(ActiveSync {
                level: spec.level,
                iteration: spec.iteration,
                participants: spec.participants,
                bytes: spec.bytes,
                collective,
            });
        }
    }

    /// Reconciles with the server after any state change: records newly released
    /// iterations (for straggler floors), newly completed iterations, serves
    /// waiting workers, and detects run completion.
    fn after_server_change(&mut self, sched: &mut Scheduler<'_, Ev>) {
        let now = sched.now();
        while (self.iter_starts.len() as u64) < self.server.released_root_iterations() {
            self.iter_starts.push(now);
        }
        while (self.iter_done.len() as u64) < self.server.completed_iterations() {
            self.iter_done.push(now);
        }
        self.arm_faults(sched);
        self.serve_waiting(sched);
        self.maybe_checkpoint();
        if self.server.run_complete() {
            self.finished_at = Some(now);
        }
    }

    /// Writes a checkpoint when the completed-iteration count crosses a
    /// `checkpoint_every` multiple. Scheduling is untouched — the log only
    /// grows — so durable crash-free runs stay byte-identical.
    fn maybe_checkpoint(&mut self) {
        if self.wal.is_none() || self.checkpoint_every == 0 || !self.server.wal_attached() {
            return;
        }
        let done = self.server.completed_iterations();
        if done / self.checkpoint_every > self.last_checkpoint / self.checkpoint_every {
            if let Err(e) = self.server.checkpoint_wal(&[]) {
                panic!("WAL checkpoint failed — cannot guarantee durability: {e}");
            }
            self.last_checkpoint = done;
        }
    }

    /// The Token Server process dies and is reborn from its write-ahead log:
    /// restore the latest checkpoint, replay the op suffix, verify the
    /// recovered plane is snapshot-equal to the one that died, and freeze all
    /// server-touching traffic for the downtime.
    fn on_server_crash(&mut self, down: SimDuration, sched: &mut Scheduler<'_, Ev>) {
        let now = sched.now();
        self.fault_stats.server_crashes += 1;
        self.trace.record(now, "fault", || {
            format!("token server crashed, recovering from WAL, back in {down}")
        });
        let Some(handle) = &self.wal else {
            panic!("server crash injected without a write-ahead log attached");
        };
        let bytes = handle.bytes();
        let expected = self.server.snapshot();
        let rec = match wal::recover(
            &bytes,
            self.server.plan(),
            self.server.config(),
            &self.meta,
            self.server.n_workers(),
            self.server.max_iterations(),
        ) {
            Ok(r) => r,
            Err(e) => panic!("WAL recovery failed: {e}"),
        };
        assert_eq!(
            rec.plane.snapshot(),
            expected,
            "recovered plane must be snapshot-equal to the crashed one"
        );
        assert_eq!(
            rec.plane.tokens(),
            self.server.tokens(),
            "recovered token table must match the crashed one"
        );
        let mut plane = rec.plane;
        let valid = bytes.len() - rec.torn_bytes;
        match handle {
            WalHandle::Mem(m) => {
                m.truncate(valid);
                plane.resume_wal(Box::new(m.clone()), rec.next_seq);
            }
            WalHandle::File(path) => match FileWal::resume(path, valid as u64) {
                Ok(f) => plane.resume_wal(Box::new(f), rec.next_seq),
                Err(e) => panic!("cannot resume WAL {}: {e}", path.display()),
            },
        }
        self.server = plane;
        self.fault_stats.server_restarts += 1;
        self.server_frozen_until = now + down;
    }

    fn on_flow_done(
        &mut self,
        id: fela_net::FlowId,
        spec: FlowSpec,
        sched: &mut Scheduler<'_, Ev>,
    ) {
        let now = sched.now();
        if spec.tag & TAG_DEP != 0 {
            let token = TokenId(spec.tag & !TAG_DEP);
            let worker = spec.dst.0;
            let state = &mut self.workers[worker];
            let waiting_for_this = state
                .current
                .as_ref()
                .is_some_and(|g| g.token.id == token && state.pending_fetches > 0);
            if !waiting_for_this {
                // Without faults this is a scheduler bug; with them, a fetch
                // can outlive its grant (the addressee crashed and rejoined,
                // or the grant was revoked while inputs were in flight).
                assert!(
                    self.fault_active,
                    "dep flow for token {token:?} arrived at worker {worker} unexpectedly"
                );
                return;
            }
            state.pending_fetches -= 1;
            if state.pending_fetches == 0 {
                self.start_compute(worker, sched);
            }
        } else {
            debug_assert!(spec.tag & TAG_SYNC != 0, "unknown flow tag {}", spec.tag);
            let mut finished: Vec<(usize, u64)> = Vec::new();
            for sync in &mut self.syncs {
                if sync.collective.tag() == spec.tag {
                    use fela_net::CollectiveProgress as P;
                    match sync.collective.on_flow_complete(&mut self.net, now, id) {
                        P::Done => finished.push((sync.level, sync.iteration)),
                        P::NotMine => unreachable!("tag matched but flow not owned"),
                        P::InProgress | P::RoundStarted => {}
                    }
                    break;
                }
            }
            for (level, iteration) in finished {
                self.syncs
                    .retain(|s| !(s.level == level && s.iteration == iteration));
                self.trace.record_kind(
                    now,
                    "sync",
                    EventKind::SyncDone { level, iteration },
                    || format!("all-reduce level {} iter {} done", level + 1, iteration),
                );
                sched_ok(self.server.sync_finished(level, iteration));
                self.after_server_change(sched);
            }
        }
    }

    /// A worker freezes for `stall` but keeps its state: its in-flight compute
    /// finishes late, and nothing is revoked by the hang itself (the lease
    /// deadline, deliberately, is *not* extended — a long enough hang expires
    /// the lease and the token is recomputed elsewhere).
    fn on_hang(&mut self, worker: usize, stall: SimDuration, sched: &mut Scheduler<'_, Ev>) {
        let now = sched.now();
        if !self.server.is_alive(worker) {
            return; // already down: the hang is subsumed by the outage
        }
        self.trace.record(now, "fault", || {
            format!("worker {worker} hangs for {stall}")
        });
        let until = now + stall;
        if until > self.workers[worker].hang_until {
            self.workers[worker].hang_until = until;
        }
        if let Some((ev, done_at)) = self.workers[worker].compute_ev.take() {
            sched.cancel(ev);
            let pushed = done_at + stall;
            let new_ev = sched.schedule_at(pushed, Ev::ComputeDone { worker });
            self.workers[worker].compute_ev = Some((new_ev, pushed));
        }
    }

    /// A worker dies (process crash or dark link — from the scheduler's view a
    /// partitioned node is equally gone: it can neither receive grants nor
    /// report gradients). Its in-flight work is dropped, its leases revoked,
    /// its transfers aborted; with `restart_after` set it rejoins later.
    fn on_crash(
        &mut self,
        worker: usize,
        restart_after: Option<SimDuration>,
        sched: &mut Scheduler<'_, Ev>,
    ) {
        let now = sched.now();
        if !self.server.is_alive(worker) {
            return; // chaos can strike a worker that is already down
        }
        self.fault_stats.crashes += 1;
        self.trace
            .record_kind(now, "fault", EventKind::Crash { worker }, || {
                format!(
                    "worker {worker} crashed{}",
                    match restart_after {
                        Some(d) => format!(", back in {d}"),
                        None => " permanently".to_owned(),
                    }
                )
            });
        // Kill the local incarnation: in-flight grants to it become void
        // (epoch), its compute never completes, its GPU interval is closed.
        let state = &mut self.workers[worker];
        state.epoch += 1;
        state.current = None;
        state.pending_fetches = 0;
        state.hang_until = SimTime::ZERO;
        if let Some((ev, _)) = state.compute_ev.take() {
            sched.cancel(ev);
        }
        self.busy[worker].abort(now);
        // Crash notification to the TS: revokes the victim's leases, re-homes
        // its durable data, redistributes its bucket, shrinks the barrier.
        let revoked = sched_ok(self.server.worker_crashed(worker));
        self.fault_stats.revocations += revoked.len() as u64;
        for t in revoked {
            let attempt = self.server.attempt_of(t).saturating_sub(1);
            self.trace.record_kind(
                now,
                "ts",
                EventKind::Revoke {
                    worker,
                    token: t.0,
                    attempt,
                },
                || format!("revoke token {} from crashed worker {worker}", t.0),
            );
        }
        // The node's NIC goes dark: abort everything touching it. Fetches an
        // *alive* worker was pulling from the victim restart from the shard's
        // new home; collectives the victim participated in restart among the
        // survivors.
        let aborted = self.net.fail_node(now, NodeId(worker));
        let mut broken_syncs: Vec<u64> = Vec::new();
        for (_, spec) in aborted {
            if spec.tag & TAG_DEP != 0 {
                let token = TokenId(spec.tag & !TAG_DEP);
                let dst = spec.dst.0;
                if dst != worker {
                    let dst_state = &self.workers[dst];
                    let still_wanted = dst_state.pending_fetches > 0
                        && dst_state
                            .current
                            .as_ref()
                            .is_some_and(|g| g.token.id == token);
                    if still_wanted {
                        // The server re-homed every holder entry pointing at
                        // the victim onto the smallest eligible survivor. With
                        // no survivor left (fully dark cluster) the fetch is
                        // simply dropped — the grant's lease expires and the
                        // token is re-granted once a worker rejoins.
                        if let Some(src) = self.rehome_target() {
                            self.net.start_flow(
                                now,
                                FlowSpec {
                                    src: NodeId(src),
                                    dst: spec.dst,
                                    bytes: spec.bytes,
                                    tag: spec.tag,
                                },
                            );
                        }
                    }
                }
                // dst == worker: the victim's own fetch — its grant is revoked.
            } else if spec.tag & TAG_SYNC != 0 && !broken_syncs.contains(&spec.tag) {
                broken_syncs.push(spec.tag);
            }
        }
        for tag in broken_syncs {
            self.restart_sync(tag, sched);
        }
        self.reschedule_net(sched);
        if let Some(down) = restart_after {
            sched.schedule_at(now + down, Ev::Restart { worker });
        }
        // Revoked tokens are grantable again; waiting survivors pick them up.
        self.after_server_change(sched);
    }

    /// Restarts a broken collective among the surviving participants from
    /// scratch (ring progress is lost). One survivor (or none) degenerates to
    /// an immediate commit, like [`SyncSpec::is_degenerate`].
    fn restart_sync(&mut self, tag: u64, sched: &mut Scheduler<'_, Ev>) {
        let now = sched.now();
        let Some(pos) = self.syncs.iter().position(|s| s.collective.tag() == tag) else {
            return;
        };
        let sync = self.syncs.remove(pos);
        // Drop the collective's remaining flows (legs not touching the victim).
        self.net.abort_matching(now, |s| s.tag == tag);
        // Quarantined workers stay in: their network is healthy, they are only
        // barred from new grants. Only dead nodes leave the ring.
        let survivors: Vec<usize> = sync
            .participants
            .iter()
            .copied()
            .filter(|&w| self.server.is_alive(w))
            .collect();
        if survivors.len() <= 1 {
            self.trace.record_kind(
                now,
                "sync",
                EventKind::SyncDone {
                    level: sync.level,
                    iteration: sync.iteration,
                },
                || {
                    format!(
                        "all-reduce level {} iter {} degenerated to a local commit after a crash",
                        sync.level + 1,
                        sync.iteration
                    )
                },
            );
            sched_ok(self.server.sync_finished(sync.level, sync.iteration));
            self.after_server_change(sched);
            return;
        }
        self.trace.record(now, "sync", || {
            format!(
                "restarting all-reduce level {} iter {} among {survivors:?}",
                sync.level + 1,
                sync.iteration
            )
        });
        let nodes = survivors.iter().map(|&w| NodeId(w)).collect();
        let collective = RingAllReduce::start(&mut self.net, now, nodes, sync.bytes, tag);
        self.syncs.push(ActiveSync {
            level: sync.level,
            iteration: sync.iteration,
            participants: survivors,
            bytes: sync.bytes,
            collective,
        });
    }

    /// A lease deadline passed. The server decides whether the timer is stale;
    /// a live expiry revokes the token (and possibly quarantines the holder),
    /// making it grantable to someone else. The victim may still be computing:
    /// its eventual report will be rejected as stale.
    fn on_lease_expiry(&mut self, token: TokenId, attempt: u64, sched: &mut Scheduler<'_, Ev>) {
        let now = sched.now();
        let Some(exp) = sched_ok(self.server.lease_expired(token, attempt)) else {
            return;
        };
        self.fault_stats.revocations += exp.revoked.len() as u64;
        if exp.quarantined {
            self.fault_stats.quarantines += 1;
            self.trace.record(now, "ts", || {
                format!(
                    "worker {} quarantined after repeated lease expiries",
                    exp.worker
                )
            });
        }
        for t in exp.revoked {
            let at = self.server.attempt_of(t).saturating_sub(1);
            self.trace.record_kind(
                now,
                "ts",
                EventKind::Revoke {
                    worker: exp.worker,
                    token: t.0,
                    attempt: at,
                },
                || {
                    format!(
                        "lease on token {} (attempt {at}) expired; revoked from worker {}",
                        t.0, exp.worker
                    )
                },
            );
        }
        self.after_server_change(sched);
    }
}

impl World for FelaWorld<'_> {
    type Event = Ev;

    fn handle(&mut self, now: SimTime, event: Ev, sched: &mut Scheduler<'_, Ev>) {
        // Server downtime: anything that would reach the (dead) Token Server
        // process — requests, reports, fault notifications, lease timers, and
        // the network wake that commits sync watermarks — stalls until the
        // recovered process is back. Worker-local events (grant arrival,
        // compute completion) proceed: the machines are alive, only the
        // coordinator is down. `server_frozen_until` is ZERO in crash-free
        // runs, so this guard never fires there.
        if now < self.server_frozen_until {
            let at = self.server_frozen_until;
            match event {
                Ev::RequestArrive { .. }
                | Ev::ReportArrive { .. }
                | Ev::Fault { .. }
                | Ev::Restart { .. }
                | Ev::LeaseExpire { .. }
                | Ev::ServerCrash { .. } => {
                    sched.schedule_at(at, event);
                    return;
                }
                Ev::NetWake => {
                    // Keep the single-in-flight NetWake invariant intact.
                    self.net_ev = Some(sched.schedule_at(at, Ev::NetWake));
                    return;
                }
                Ev::GrantArrive { .. } | Ev::ComputeDone { .. } => {}
            }
        }
        match event {
            Ev::RequestArrive { worker } => {
                match self.server.request(worker, now) {
                    Ok(Some(grant)) => self.schedule_grant(worker, grant, sched),
                    Ok(None) => {}
                    // The request legitimately raced the worker's own crash or
                    // quarantine: it was in flight when the membership changed.
                    Err(ScheduleError::WorkerUnavailable { .. }) => {}
                    Err(e) => panic!("Fela scheduler invariant violated: {e}"),
                }
            }
            Ev::GrantArrive {
                worker,
                grant,
                epoch,
            } => {
                if epoch != self.workers[worker].epoch {
                    // The addressee died while the grant was in flight; the TS
                    // revoked the lease when it processed the crash.
                    return;
                }
                self.trace.record_kind(
                    now,
                    "ts",
                    EventKind::Grant {
                        worker,
                        token: grant.token.id.0,
                        level: grant.token.level,
                        iteration: grant.token.iteration,
                        deps: grant.token.deps.iter().map(|d| d.0).collect(),
                    },
                    || {
                        format!(
                        "grant token {} (level {}, iter {}, batch {}) to worker {} ({} fetches{})",
                        grant.token.id.0,
                        grant.token.level + 1,
                        grant.token.iteration,
                        grant.token.batch,
                        worker,
                        grant.fetches.len(),
                        if grant.conflict { ", conflicted" } else { "" }
                    )
                    },
                );
                let fetches = grant.fetches.clone();
                let token = grant.token.id;
                let state = &mut self.workers[worker];
                debug_assert!(state.current.is_none(), "worker {worker} double-granted");
                state.current = Some(grant);
                state.pending_fetches = fetches.len();
                if fetches.is_empty() {
                    self.start_compute(worker, sched);
                } else {
                    for (holder, bytes) in fetches {
                        self.net.start_flow(
                            now,
                            FlowSpec {
                                src: NodeId(holder),
                                dst: NodeId(worker),
                                bytes,
                                tag: dep_tag(token),
                            },
                        );
                    }
                    self.reschedule_net(sched);
                }
            }
            Ev::ComputeDone { worker } => {
                self.workers[worker].compute_ev = None;
                let Some(grant) = self.workers[worker].current.take() else {
                    panic!("worker {worker} finished compute without a grant");
                };
                self.trace.record_kind(
                    now,
                    "worker",
                    EventKind::Complete {
                        worker,
                        token: grant.token.id.0,
                        level: grant.token.level,
                        iteration: grant.token.iteration,
                    },
                    || {
                        format!(
                            "worker {} finished token {} (level {})",
                            worker,
                            grant.token.id.0,
                            grant.token.level + 1
                        )
                    },
                );
                self.busy[worker].end(now);
                sched.schedule_in(
                    self.rpc(),
                    Ev::ReportArrive {
                        worker,
                        token: grant.token.id,
                    },
                );
            }
            Ev::ReportArrive { worker, token } => {
                match self.server.report(worker, token) {
                    Ok(syncs) => {
                        if !syncs.is_empty() {
                            self.start_syncs(syncs, sched);
                            self.reschedule_net(sched);
                        }
                    }
                    // The reporter no longer holds the token's lease (it hung
                    // past its deadline, or this report raced a crash/restart
                    // cycle): the gradient is discarded, never applied.
                    Err(ScheduleError::StaleReport { .. }) => {
                        self.fault_stats.stale_reports += 1;
                        self.trace.record_kind(
                            now,
                            "ts",
                            EventKind::StaleReport {
                                worker,
                                token: token.0,
                            },
                            || {
                                format!(
                                    "discarded stale report of token {} from worker {worker}",
                                    token.0
                                )
                            },
                        );
                    }
                    Err(e) => panic!("Fela scheduler invariant violated: {e}"),
                }
                // Piggybacked request for the reporter, then any other waiters
                // (a quarantined reporter is refused and goes idle).
                match self.server.request(worker, now) {
                    Ok(Some(grant)) => self.schedule_grant(worker, grant, sched),
                    Ok(None) => {}
                    Err(ScheduleError::WorkerUnavailable { .. }) => {}
                    Err(e) => panic!("Fela scheduler invariant violated: {e}"),
                }
                self.after_server_change(sched);
            }
            Ev::NetWake => {
                self.net_ev = None;
                let completions = self.net.take_completions(now);
                for (id, spec) in completions {
                    self.on_flow_done(id, spec, sched);
                }
                self.reschedule_net(sched);
            }
            Ev::Fault { worker, kind } => match kind {
                FaultKind::Hang { stall } => self.on_hang(worker, stall, sched),
                FaultKind::Crash => self.on_crash(worker, None, sched),
                FaultKind::CrashRestart { down } | FaultKind::LinkDown { down } => {
                    self.on_crash(worker, Some(down), sched)
                }
            },
            Ev::Restart { worker } => {
                if self.server.is_alive(worker) {
                    return; // defensive: at most one restart per crash is scheduled
                }
                sched_ok(self.server.worker_restarted(worker));
                self.fault_stats.restarts += 1;
                self.trace
                    .record_kind(now, "fault", EventKind::Restart { worker }, || {
                        format!("worker {worker} rejoined the cluster")
                    });
                // The reborn process asks for work like a freshly started one.
                sched.schedule_in(self.rpc(), Ev::RequestArrive { worker });
            }
            Ev::LeaseExpire { token, attempt } => self.on_lease_expiry(token, attempt, sched),
            Ev::ServerCrash { down } => self.on_server_crash(down, sched),
        }
    }
}

/// The Fela training runtime (implements [`TrainingRuntime`]).
pub struct FelaRuntime {
    /// Scheduling/tuning configuration.
    pub config: FelaConfig,
    /// Partitioning options (defaults reproduce the paper's 3-way splits).
    pub partition_options: PartitionOptions,
    /// Control-plane durability (write-ahead log + checkpoints). `None`
    /// keeps the plane purely in-memory — unless the scenario declares a
    /// server fault, which implies an in-memory WAL (the crash cannot be
    /// survived without one). Logging never perturbs scheduling, so a
    /// durable crash-free run reports byte-identically to a non-durable one.
    pub durability: Option<DurabilityOptions>,
}

impl FelaRuntime {
    /// A runtime with the given configuration and default partitioning.
    pub fn new(config: FelaConfig) -> Self {
        FelaRuntime {
            config,
            partition_options: PartitionOptions::default(),
            durability: None,
        }
    }

    /// Enables control-plane durability.
    #[must_use]
    pub fn with_durability(mut self, durability: DurabilityOptions) -> Self {
        self.durability = Some(durability);
        self
    }

    /// Builds the partition this runtime would use for a scenario's model.
    pub fn partition_for(&self, scenario: &Scenario) -> Partition {
        bin_partition(
            &scenario.model,
            &scenario.cluster.compute.profile,
            self.partition_options,
        )
    }
}

impl FelaRuntime {
    /// Runs a scenario with schedule tracing enabled, returning the report and
    /// the recorded trace (grants, completions and syncs with virtual
    /// timestamps). Tracing costs formatting time, so [`TrainingRuntime::run`]
    /// leaves it off.
    pub fn run_traced(&self, scenario: &Scenario) -> (RunReport, Trace) {
        self.run_impl(scenario, Trace::enabled(), &mut LocalCompute)
    }

    /// Like [`FelaRuntime::run_traced`] but with compute spans priced by an
    /// explicit [`ComputeBackend`] instead of the inline analytic model.
    ///
    /// The event machinery — grants, fetches, syncs, straggler floors, leases,
    /// faults — is *shared* with the local path; only the span oracle differs.
    /// A backend that returns the same seconds as [`LocalCompute`] therefore
    /// produces a byte-identical trace and report (this is how `fela-live`
    /// proves virtual-clock conformance).
    pub fn run_traced_with(
        &self,
        scenario: &Scenario,
        backend: &mut dyn ComputeBackend,
    ) -> (RunReport, Trace) {
        self.run_impl(scenario, Trace::enabled(), backend)
    }

    fn run_impl(
        &self,
        scenario: &Scenario,
        trace: Trace,
        backend: &mut dyn ComputeBackend,
    ) -> (RunReport, Trace) {
        scenario.cluster.validate();
        if let Err(e) = scenario.fault.validate() {
            panic!("invalid fault model: {e}");
        }
        // Faults imply recovery: grants must be leases for the TS to revoke
        // and re-grant a victim's tokens. A fault-free scenario leaves the
        // config untouched (recovery stays exactly as the caller set it).
        let mut config = self.config.clone();
        if !scenario.fault.is_none() && config.recovery.is_none() {
            config.recovery = Some(RecoveryConfig::default());
        }
        let partition = self.partition_for(scenario);
        let plan = match TokenPlan::build(
            &partition,
            &config,
            scenario.total_batch,
            scenario.cluster.nodes,
        ) {
            Ok(plan) => plan,
            Err(e) => panic!("scenario must admit a token plan: {e}"),
        };
        let meta: Vec<LevelMeta> = partition
            .sub_models()
            .iter()
            .map(|s| LevelMeta {
                param_bytes: s.param_bytes,
                output_bytes_per_sample: s.output_bytes_per_sample,
                input_bytes_per_sample: s.input_bytes_per_sample,
                comm_intensive: s.comm_intensive,
            })
            .collect();
        let n = scenario.cluster.nodes;
        let fault_active = !scenario.fault.is_none();
        let mut server =
            ControlPlane::new(plan, config.clone(), meta.clone(), n, scenario.iterations);
        // Durability: explicit options, or implied by a declared server fault
        // (which is unsurvivable without a log). A `--wal-dir` goes through a
        // real file with real fsyncs; otherwise the log lives in memory.
        let server_fault_declared =
            (0..scenario.iterations).any(|it| scenario.fault.server_fault_for(it).is_some());
        let durability = if self.durability.is_some() || server_fault_declared {
            Some(self.durability.clone().unwrap_or_default())
        } else {
            None
        };
        let wal_handle = match &durability {
            Some(DurabilityOptions {
                wal_dir: Some(dir), ..
            }) => {
                if let Err(e) = std::fs::create_dir_all(dir) {
                    panic!("cannot create WAL directory {}: {e}", dir.display());
                }
                let path = wal::wal_path(dir);
                match FileWal::create(&path) {
                    Ok(f) => {
                        if let Err(e) = server.attach_wal(Box::new(f)) {
                            panic!("cannot attach WAL {}: {e}", path.display());
                        }
                    }
                    Err(e) => panic!("cannot create WAL {}: {e}", path.display()),
                }
                Some(WalHandle::File(path))
            }
            Some(_) => {
                let mem = MemWal::new();
                if let Err(e) = server.attach_wal(Box::new(mem.clone())) {
                    panic!("cannot attach in-memory WAL: {e}");
                }
                Some(WalHandle::Mem(mem))
            }
            None => None,
        };
        let checkpoint_every = durability.as_ref().map_or(0, |d| d.checkpoint_every);
        let world = FelaWorld {
            trace,
            backend,
            scenario: scenario.clone(),
            partition,
            server,
            net: Network::new(scenario.cluster.network),
            net_ev: None,
            workers: (0..n)
                .map(|_| WorkerState {
                    current: None,
                    pending_fetches: 0,
                    epoch: 0,
                    compute_ev: None,
                    hang_until: SimTime::ZERO,
                })
                .collect(),
            syncs: Vec::new(),
            busy: vec![BusyTracker::new(); n],
            iter_starts: vec![SimTime::ZERO],
            iter_done: Vec::new(),
            finished_at: None,
            fault_active,
            // Iteration 0 is released before the engine starts; its fault
            // declarations are primed below rather than armed by an event.
            faults_armed: 1,
            fault_stats: FaultStats::default(),
            meta,
            wal: wal_handle,
            checkpoint_every,
            last_checkpoint: 0,
            server_frozen_until: SimTime::ZERO,
        };
        let mut engine = Engine::new(world);
        // Every worker fires its first request at t=0 (arrives after one RPC).
        for worker in 0..n {
            engine.prime_at(
                SimTime::ZERO + config.rpc_latency,
                Ev::RequestArrive { worker },
            );
        }
        if fault_active {
            for worker in 0..n {
                if let Some(kind) = scenario.fault_for(0, worker) {
                    engine.prime_at(SimTime::ZERO, Ev::Fault { worker, kind });
                }
            }
            if let Some(down) = scenario.fault.server_fault_for(0) {
                engine.prime_at(SimTime::ZERO, Ev::ServerCrash { down });
            }
        }
        let outcome = engine.run(1 << 32);
        assert_eq!(
            outcome,
            fela_sim::RunOutcome::Drained,
            "Fela simulation hit the step backstop"
        );
        let (world, _) = engine.into_world();
        let Some(end) = world.finished_at else {
            panic!("simulation drained before completing all iterations");
        };

        let mut report = RunReport::new("fela", &scenario.model.name, scenario.total_batch);
        report.iterations = world.iter_done.len() as u64;
        report.total_time_secs = end.as_secs_f64();
        // Per-iteration times are the gaps between successive iteration-complete
        // instants (iterations overlap, so these are pipeline-steady-state gaps).
        report.per_iteration_secs = world
            .iter_done
            .iter()
            .scan(SimTime::ZERO, |prev, &t| {
                let dt = t.since(*prev).as_secs_f64();
                *prev = t;
                Some(dt)
            })
            .collect();
        report.network_bytes = world.net.bytes_delivered();
        report.worker_busy_secs = world
            .busy
            .iter()
            .map(|b| b.busy_time().as_secs_f64())
            .collect();
        let stats = world.server.stats();
        report.bump("grants", stats.grants);
        report.bump("local_grants", stats.local_grants);
        report.bump("steals", stats.steals);
        report.bump("conflicts", stats.conflicts);
        report.bump("remote_fetch_bytes", stats.remote_fetch_bytes);
        report.bump("starved_requests", stats.starved_requests);
        for (w, &count) in world.server.trained_per_worker().iter().enumerate() {
            report.bump(&format!("tokens_worker{w}"), count);
        }
        let any_fault_fired = world.fault_stats.crashes
            + world.fault_stats.restarts
            + world.fault_stats.revocations
            + world.fault_stats.stale_reports
            + world.fault_stats.quarantines
            > 0;
        if world.fault_active && any_fault_fired {
            // Fault-path counters exist only when a fault actually struck, so
            // a crash-free run — whether the fault model is `None` or simply
            // never fired — stays byte-identical to a fault-free RunReport.
            report.bump("crashes", world.fault_stats.crashes);
            report.bump("restarts", world.fault_stats.restarts);
            report.bump("revocations", world.fault_stats.revocations);
            report.bump("stale_reports", world.fault_stats.stale_reports);
            report.bump("quarantined", world.fault_stats.quarantines);
        }
        if world.fault_active && world.fault_stats.server_crashes > 0 {
            // Gated separately from the worker-fault block so existing
            // worker-fault reports gain no new keys.
            report.bump("server_crashes", world.fault_stats.server_crashes);
            report.bump("server_restarts", world.fault_stats.server_restarts);
        }
        (report, world.trace)
    }
}

impl TrainingRuntime for FelaRuntime {
    fn name(&self) -> &'static str {
        "fela"
    }

    fn run(&self, scenario: &Scenario) -> RunReport {
        self.run_impl(scenario, Trace::disabled(), &mut LocalCompute)
            .0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fela_cluster::StragglerModel;
    use fela_model::zoo;

    fn quick_scenario(batch: u64) -> Scenario {
        Scenario::paper(zoo::vgg19(), batch).with_iterations(3)
    }

    fn runtime(weights: Vec<u64>) -> FelaRuntime {
        FelaRuntime::new(FelaConfig::new(3).with_weights(weights))
    }

    #[test]
    fn completes_all_iterations() {
        let r = runtime(vec![1, 2, 4]).run(&quick_scenario(128));
        assert_eq!(r.iterations, 3);
        assert_eq!(r.per_iteration_secs.len(), 3);
        assert!(r.total_time_secs > 0.0);
        assert!(r.average_throughput() > 0.0);
    }

    #[test]
    fn token_conservation() {
        let r = runtime(vec![1, 2, 4]).run(&quick_scenario(128));
        // 8 + 4 + 2 tokens per iteration × 3 iterations.
        assert_eq!(r.counter("grants"), 14 * 3);
        let per_worker: u64 = (0..8)
            .map(|w| r.counter(&format!("tokens_worker{w}")))
            .sum();
        assert_eq!(per_worker, 14 * 3);
    }

    #[test]
    fn deterministic_runs() {
        let a = runtime(vec![1, 2, 4]).run(&quick_scenario(128));
        let b = runtime(vec![1, 2, 4]).run(&quick_scenario(128));
        assert_eq!(a.total_time_secs, b.total_time_secs);
        assert_eq!(a.network_bytes, b.network_bytes);
        assert_eq!(a.counters, b.counters);
    }

    #[test]
    fn stragglers_slow_the_run_down() {
        let base = runtime(vec![1, 2, 4]).run(&quick_scenario(128));
        let slow = runtime(vec![1, 2, 4]).run(&quick_scenario(128).with_straggler(
            StragglerModel::RoundRobin {
                delay: SimDuration::from_secs(2),
            },
        ));
        assert!(slow.total_time_secs > base.total_time_secs);
        // Token counts unchanged — only timing shifts.
        assert_eq!(slow.counter("grants"), base.counter("grants"));
    }

    #[test]
    fn straggler_delay_mostly_absorbed() {
        // With token stealing, one 2 s straggler per iteration should cost the
        // 8-worker cluster well under the full 2 s per iteration.
        let base = runtime(vec![1, 2, 4]).run(&quick_scenario(256));
        let slow = runtime(vec![1, 2, 4]).run(&quick_scenario(256).with_straggler(
            StragglerModel::RoundRobin {
                delay: SimDuration::from_secs(2),
            },
        ));
        let pid = (slow.total_time_secs - base.total_time_secs) / 3.0;
        assert!(
            pid < 2.0,
            "per-iteration delay {pid} should be < full sleep"
        );
        assert!(pid > 0.0);
    }

    #[test]
    fn hf_off_causes_conflicts_and_remote_fetches() {
        let on = runtime(vec![1, 2, 4]).run(&quick_scenario(128));
        let off = FelaRuntime::new(
            FelaConfig::new(3)
                .with_weights(vec![1, 2, 4])
                .with_hf(false),
        )
        .run(&quick_scenario(128));
        assert!(off.counter("conflicts") > on.counter("conflicts"));
        assert!(
            off.counter("remote_fetch_bytes") > on.counter("remote_fetch_bytes"),
            "global bucket loses sample affinity"
        );
        assert!(off.total_time_secs >= on.total_time_secs);
    }

    #[test]
    fn ctd_reduces_network_bytes() {
        let no_ctd = runtime(vec![1, 2, 4]).run(&quick_scenario(128));
        let ctd = FelaRuntime::new(FelaConfig::new(3).with_weights(vec![1, 2, 4]).with_ctd(2))
            .run(&quick_scenario(128));
        // FC params sync among 2 instead of 8 → fewer sync bytes on the wire.
        assert!(ctd.network_bytes < no_ctd.network_bytes);
    }

    #[test]
    fn utilization_is_sane() {
        let r = runtime(vec![1, 2, 4]).run(&quick_scenario(1024));
        let u = r.mean_utilization();
        assert!(u > 0.05 && u <= 1.0, "utilization {u}");
    }

    #[test]
    fn pipelining_improves_throughput() {
        let sc = quick_scenario(128).with_iterations(6);
        let piped = runtime(vec![1, 2, 4]).run(&sc);
        let barrier = FelaRuntime::new(
            FelaConfig::new(3)
                .with_weights(vec![1, 2, 4])
                .with_pipelining(false),
        )
        .run(&sc);
        assert!(
            piped.average_throughput() > barrier.average_throughput(),
            "pipelined {} vs barrier {}",
            piped.average_throughput(),
            barrier.average_throughput()
        );
        // Both process identical token counts.
        assert_eq!(piped.counter("grants"), barrier.counter("grants"));
    }

    #[test]
    fn ssp_staleness_tolerates_stragglers_better() {
        let sc =
            quick_scenario(128)
                .with_iterations(6)
                .with_straggler(StragglerModel::RoundRobin {
                    delay: SimDuration::from_secs(4),
                });
        let bsp = runtime(vec![1, 2, 4]).run(&sc);
        let ssp = FelaRuntime::new(
            FelaConfig::new(3)
                .with_weights(vec![1, 2, 4])
                .with_staleness(1),
        )
        .run(&sc);
        assert!(
            ssp.average_throughput() >= bsp.average_throughput(),
            "SSP {} must not lose to BSP {} under stragglers",
            ssp.average_throughput(),
            bsp.average_throughput()
        );
        assert_eq!(ssp.counter("grants"), bsp.counter("grants"));
    }

    #[test]
    fn googlenet_runs_too() {
        let scenario = Scenario::paper(zoo::googlenet(), 256).with_iterations(2);
        let r = runtime(vec![1, 1, 2]).run(&scenario);
        assert_eq!(r.iterations, 2);
        assert!(r.total_time_secs > 0.0);
    }

    // ---- fault injection & recovery -------------------------------------

    use fela_cluster::{FaultKind, FaultModel};

    /// Total tokens a `quick_scenario` run must apply exactly once:
    /// (8 + 4 + 2) tokens per iteration with weights [1, 2, 4].
    const TOKENS_PER_ITER: u64 = 14;

    fn trained_total(r: &RunReport, n: usize) -> u64 {
        (0..n)
            .map(|w| r.counter(&format!("tokens_worker{w}")))
            .sum()
    }

    #[test]
    fn crash_restart_completes_with_exactly_once_gradients() {
        let sc = quick_scenario(128).with_fault(FaultModel::Scripted {
            worker: 2,
            iteration: 1,
            kind: FaultKind::CrashRestart {
                down: SimDuration::from_secs(5),
            },
        });
        let r = runtime(vec![1, 2, 4]).run(&sc);
        assert_eq!(r.iterations, 3, "crash-restart must not wedge the run");
        assert_eq!(r.counter("crashes"), 1);
        assert_eq!(r.counter("restarts"), 1);
        // Every micro-batch gradient applied exactly once, crash or not.
        assert_eq!(trained_total(&r, 8), TOKENS_PER_ITER * 3);
        // Re-granted work means at least as many grants as applications.
        assert!(r.counter("grants") >= TOKENS_PER_ITER * 3);
    }

    #[test]
    fn crash_of_entire_ctd_subset_lapses_the_restriction() {
        // With a one-worker CTD subset, crashing worker 0 kills every member:
        // the conditional-level restriction must lapse onto the survivors (and
        // re-engage when the member rejoins) instead of wedging the run.
        let sc = quick_scenario(128).with_fault(FaultModel::Scripted {
            worker: 0,
            iteration: 1,
            kind: FaultKind::CrashRestart {
                down: SimDuration::from_secs(5),
            },
        });
        let rt = FelaRuntime::new(FelaConfig::new(3).with_weights(vec![1, 2, 4]).with_ctd(1));
        let r = rt.run(&sc);
        assert_eq!(r.iterations, 3);
        assert_eq!(r.counter("crashes"), 1);
        assert_eq!(trained_total(&r, 8), TOKENS_PER_ITER * 3);
    }

    #[test]
    fn full_cluster_death_parks_tokens_until_a_restart() {
        // Chaos at p = 1 crashes every worker at every iteration boundary, so
        // the cluster repeatedly goes fully dark. Revoked tokens must park and
        // be re-placed when the restarts land, not wedge or panic the server,
        // and the run must still apply every gradient exactly once.
        let sc = quick_scenario(128).with_fault(FaultModel::Chaos {
            p: 1.0,
            down: SimDuration::from_secs(2),
            seed: 7,
        });
        let r = runtime(vec![1, 2, 4]).run(&sc);
        assert_eq!(r.iterations, 3);
        assert!(r.counter("crashes") >= 8, "every worker must have crashed");
        assert!(r.counter("restarts") >= 8);
        assert_eq!(trained_total(&r, 8), TOKENS_PER_ITER * 3);
    }

    #[test]
    fn permanent_crash_completes_on_survivors() {
        let sc = quick_scenario(128).with_fault(FaultModel::Scripted {
            worker: 7,
            iteration: 0,
            kind: FaultKind::Crash,
        });
        let r = runtime(vec![1, 2, 4]).run(&sc);
        assert_eq!(r.iterations, 3);
        assert_eq!(r.counter("crashes"), 1);
        assert_eq!(r.counter("restarts"), 0);
        // The victim died at t = 0, before its first request arrived.
        assert_eq!(r.counter("tokens_worker7"), 0);
        assert_eq!(trained_total(&r, 8), TOKENS_PER_ITER * 3);
    }

    #[test]
    fn hang_and_link_down_recover() {
        for kind in [
            FaultKind::Hang {
                stall: SimDuration::from_secs(30),
            },
            FaultKind::LinkDown {
                down: SimDuration::from_secs(3),
            },
        ] {
            let sc = quick_scenario(128).with_fault(FaultModel::Scripted {
                worker: 0,
                iteration: 1,
                kind,
            });
            let r = runtime(vec![1, 2, 4]).run(&sc);
            assert_eq!(r.iterations, 3, "{kind:?} must not wedge the run");
            assert_eq!(trained_total(&r, 8), TOKENS_PER_ITER * 3, "{kind:?}");
        }
    }

    #[test]
    fn long_hang_expires_the_lease_and_work_moves() {
        // A freeze only expires a lease when it catches the worker
        // mid-compute: a pre-compute hang just delays the start, and the
        // deadline is armed from the delayed start. Scan scripted hang
        // sites; at least one must land mid-compute and exercise the
        // expiry → revoke → recompute-elsewhere → stale-report path. Every
        // run, expired or not, must apply each gradient exactly once.
        let mut expired = false;
        for worker in 0..8 {
            for iteration in 0..3 {
                let sc = quick_scenario(128).with_fault(FaultModel::Scripted {
                    worker,
                    iteration,
                    kind: FaultKind::Hang {
                        stall: SimDuration::from_secs(600),
                    },
                });
                let r = runtime(vec![1, 2, 4]).run(&sc);
                assert_eq!(trained_total(&r, 8), TOKENS_PER_ITER * 3);
                if r.counter("revocations") >= 1 {
                    assert!(
                        r.counter("stale_reports") >= 1,
                        "worker {worker}'s thawed report must be stale"
                    );
                    expired = true;
                }
            }
        }
        assert!(expired, "no scripted hang landed mid-compute");
    }

    #[test]
    fn crash_free_fault_model_changes_nothing() {
        // Chaos with p = 0 activates the whole recovery machinery — leases,
        // deadline timers, fault counters — but never fires. The schedule
        // must be identical to the fault-free run (zero-cost abstraction).
        let base = runtime(vec![1, 2, 4]).run(&quick_scenario(128));
        let idle = runtime(vec![1, 2, 4]).run(&quick_scenario(128).with_fault(FaultModel::Chaos {
            p: 0.0,
            down: SimDuration::from_secs(5),
            seed: 7,
        }));
        assert_eq!(idle.total_time_secs, base.total_time_secs);
        assert_eq!(idle.network_bytes, base.network_bytes);
        assert_eq!(idle.per_iteration_secs, base.per_iteration_secs);
        for key in ["grants", "local_grants", "steals", "conflicts"] {
            assert_eq!(idle.counter(key), base.counter(key), "{key}");
        }
        for key in ["crashes", "restarts", "revocations", "stale_reports"] {
            assert_eq!(idle.counter(key), 0, "{key}");
        }
    }

    #[test]
    fn chaos_churn_completes_every_iteration() {
        let sc = quick_scenario(128)
            .with_iterations(5)
            .with_fault(FaultModel::Chaos {
                p: 0.1,
                down: SimDuration::from_secs(4),
                seed: 42,
            });
        let r = runtime(vec![1, 2, 4]).run(&sc);
        assert_eq!(r.iterations, 5);
        assert!(r.counter("crashes") >= 1, "seed 42 must draw some crashes");
        assert_eq!(r.counter("restarts"), r.counter("crashes"));
        assert_eq!(trained_total(&r, 8), TOKENS_PER_ITER * 5);
    }

    #[test]
    fn crashed_run_reaches_the_same_applied_gradient_set() {
        // The recovery analogue of "same final model hash": a crash-restart
        // run applies exactly the token set of the fault-free run (each token
        // once), so the reduced model state is the same function of the same
        // gradients.
        let base = runtime(vec![1, 2, 4]).run(&quick_scenario(128));
        let faulted =
            runtime(vec![1, 2, 4]).run(&quick_scenario(128).with_fault(FaultModel::Scripted {
                worker: 3,
                iteration: 0,
                kind: FaultKind::CrashRestart {
                    down: SimDuration::from_secs(10),
                },
            }));
        assert_eq!(trained_total(&faulted, 8), trained_total(&base, 8));
        assert_eq!(faulted.iterations, base.iterations);
    }

    #[test]
    fn explicit_recovery_config_is_respected() {
        use crate::config::RecoveryConfig;
        let sc = quick_scenario(128).with_fault(FaultModel::Scripted {
            worker: 1,
            iteration: 1,
            kind: FaultKind::CrashRestart {
                down: SimDuration::from_secs(2),
            },
        });
        let rt = FelaRuntime::new(
            FelaConfig::new(3)
                .with_weights(vec![1, 2, 4])
                .with_recovery(RecoveryConfig {
                    lease_slack: 8.0,
                    lease_grace: SimDuration::from_secs(1),
                    quarantine_after: 2,
                }),
        );
        let r = rt.run(&sc);
        assert_eq!(r.iterations, 3);
        assert_eq!(trained_total(&r, 8), TOKENS_PER_ITER * 3);
    }

    #[test]
    fn server_crash_restart_recovers_and_completes() {
        // The tentpole path: the Token Server dies at the start of iteration 1,
        // rebuilds itself from the write-ahead log (snapshot-equality is
        // asserted inside the crash handler), and the run still trains every
        // token of every iteration exactly once.
        let base = runtime(vec![1, 2, 4]).run(&quick_scenario(128));
        let sc = quick_scenario(128).with_fault(FaultModel::ServerCrashRestart {
            iteration: 1,
            down: SimDuration::from_secs(10),
        });
        let r = runtime(vec![1, 2, 4]).run(&sc);
        assert_eq!(r.iterations, 3);
        assert_eq!(r.counter("server_crashes"), 1);
        assert_eq!(r.counter("server_restarts"), 1);
        assert_eq!(trained_total(&r, 8), trained_total(&base, 8));
        // The downtime is real: the run cannot finish faster than the outage.
        assert!(
            r.total_time_secs >= 10.0,
            "downtime must show in the makespan, got {}",
            r.total_time_secs
        );
    }

    #[test]
    fn server_crash_at_iteration_zero_recovers_an_early_log() {
        // Crash before any checkpoint: recovery replays from the Begin record.
        let sc = quick_scenario(128).with_fault(FaultModel::ServerCrashRestart {
            iteration: 0,
            down: SimDuration::from_secs(3),
        });
        let r = runtime(vec![1, 2, 4]).run(&sc);
        assert_eq!(r.iterations, 3);
        assert_eq!(r.counter("server_crashes"), 1);
        assert_eq!(trained_total(&r, 8), TOKENS_PER_ITER * 3);
    }

    #[test]
    fn durable_crash_free_run_is_byte_identical() {
        // Logging every op and writing checkpoints must not perturb
        // scheduling: a durable run's report is the fault-free report.
        let base = runtime(vec![1, 2, 4]).run(&quick_scenario(128));
        let durable = runtime(vec![1, 2, 4])
            .with_durability(crate::wal::DurabilityOptions::default())
            .run(&quick_scenario(128));
        assert_eq!(
            serde_json::to_string(&durable).expect("serialize"),
            serde_json::to_string(&base).expect("serialize")
        );
    }

    #[test]
    fn file_backed_wal_survives_the_crash() {
        // Same recovery path, but through a real log file and real fsyncs.
        let dir = std::env::temp_dir().join(format!(
            "fela-runtime-wal-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let sc = quick_scenario(128).with_fault(FaultModel::ServerCrashRestart {
            iteration: 1,
            down: SimDuration::from_secs(5),
        });
        let rt = runtime(vec![1, 2, 4]).with_durability(crate::wal::DurabilityOptions {
            wal_dir: Some(dir.clone()),
            checkpoint_every: 1,
        });
        let r = rt.run(&sc);
        assert_eq!(r.iterations, 3);
        assert_eq!(r.counter("server_crashes"), 1);
        let log = std::fs::read(crate::wal::wal_path(&dir)).expect("log file exists");
        let read = crate::wal::read_log(&log).expect("log is well-formed");
        assert_eq!(read.torn_bytes, 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn server_and_worker_faults_do_not_mix_counters() {
        // A worker-fault run must not gain server counters (tracked-report
        // byte-identity) and a pure server-fault run reports no worker
        // crashes.
        let worker_faulted =
            runtime(vec![1, 2, 4]).run(&quick_scenario(128).with_fault(FaultModel::Scripted {
                worker: 2,
                iteration: 1,
                kind: FaultKind::CrashRestart {
                    down: SimDuration::from_secs(5),
                },
            }));
        assert_eq!(worker_faulted.counter("server_crashes"), 0);
        assert!(worker_faulted.counter("crashes") >= 1);
        let server_faulted = runtime(vec![1, 2, 4]).run(&quick_scenario(128).with_fault(
            FaultModel::ServerCrashRestart {
                iteration: 1,
                down: SimDuration::from_secs(5),
            },
        ));
        assert_eq!(server_faulted.counter("crashes"), 0);
        assert_eq!(server_faulted.counter("server_crashes"), 1);
    }
}
