//! Lease bookkeeping for the control plane: who holds which granted token,
//! how often each token's lease has been revoked, and each worker's expiry
//! history (the quarantine trigger).
//!
//! Both control planes speak leases. The monolithic
//! [`TokenServer`](crate::TokenServer) keeps the maps inline (it is the frozen
//! conformance oracle); the sharded [`Coordinator`](crate::Coordinator)
//! delegates token blocks to its shards and tracks the resulting grants here,
//! in a [`LeaseTable`] — the cross-shard view that crash/expiry recovery walks
//! without consulting any shard.

use std::collections::BTreeMap;

use crate::token::TokenId;

/// An active lease: who holds a granted token, and which attempt this is.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct LeaseInfo {
    /// The worker the token is granted to.
    pub worker: usize,
    /// Revocation count at grant time (matches [`Grant::attempt`](crate::Grant::attempt)).
    pub attempt: u64,
}

/// What `lease_expired` did: the lease was live and has been revoked; the
/// token is back in the grantable set.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ExpiredLease {
    /// The worker that lost the lease.
    pub worker: usize,
    /// Every token revoked by this expiry — the expired token itself, plus
    /// (if the expiry tipped the worker into quarantine) all its other leases.
    pub revoked: Vec<TokenId>,
    /// True if this expiry quarantined the worker.
    pub quarantined: bool,
}

/// The coordinator's lease ledger: active leases, per-token revocation counts
/// and per-worker expiry counts. Ordered maps only — recovery sweeps must
/// revoke in token-id order so traces stay byte-identical across runs.
#[derive(Clone, Default)]
pub(crate) struct LeaseTable {
    /// Active leases (maintained only with recovery on): granted,
    /// not-yet-reported tokens.
    leases: BTreeMap<TokenId, LeaseInfo>,
    /// Revocation counts per token (sparse; absent = 0).
    attempts: BTreeMap<TokenId, u64>,
    /// Lease expiries per worker (drives quarantine).
    expiry_counts: Vec<u64>,
}

impl LeaseTable {
    pub(crate) fn new(n_workers: usize) -> Self {
        LeaseTable {
            leases: BTreeMap::new(),
            attempts: BTreeMap::new(),
            expiry_counts: vec![0; n_workers],
        }
    }

    /// The active lease on `token`, if any.
    pub(crate) fn lease_of(&self, token: TokenId) -> Option<LeaseInfo> {
        self.leases.get(&token).copied()
    }

    /// The attempt number `token`'s next grant will carry.
    pub(crate) fn attempt_of(&self, token: TokenId) -> u64 {
        self.attempts.get(&token).copied().unwrap_or(0)
    }

    /// Records a grant as an active lease.
    pub(crate) fn grant(&mut self, token: TokenId, worker: usize, attempt: u64) {
        self.leases.insert(token, LeaseInfo { worker, attempt });
    }

    /// Releases the lease on a reported token; returns the lease if it was the
    /// caller's to release.
    pub(crate) fn release(&mut self, token: TokenId) -> Option<LeaseInfo> {
        self.leases.remove(&token)
    }

    /// Drops the lease and bumps the token's revocation count. Returns `false`
    /// if there was no active lease (the caller surfaces the typed error).
    pub(crate) fn revoke(&mut self, token: TokenId) -> bool {
        if self.leases.remove(&token).is_none() {
            return false;
        }
        *self.attempts.entry(token).or_insert(0) += 1;
        true
    }

    /// Every token `worker` currently leases, in token-id order.
    pub(crate) fn held_by(&self, worker: usize) -> Vec<TokenId> {
        self.leases
            .iter()
            .filter(|(_, l)| l.worker == worker)
            .map(|(&t, _)| t)
            .collect()
    }

    /// Counts one lease expiry against `worker`; returns the new count.
    pub(crate) fn count_expiry(&mut self, worker: usize) -> u64 {
        self.expiry_counts[worker] += 1;
        self.expiry_counts[worker]
    }

    /// Clears `worker`'s expiry history (restart with a fresh process).
    pub(crate) fn clear_expiries(&mut self, worker: usize) {
        self.expiry_counts[worker] = 0;
    }

    /// Snapshot export: `(token, worker, attempt)` triples in token-id order.
    pub(crate) fn lease_triples(&self) -> Vec<(u64, usize, u64)> {
        self.leases
            .iter()
            .map(|(&t, l)| (t.0, l.worker, l.attempt))
            .collect()
    }

    /// Snapshot export: `(token, revocations)` pairs in token-id order.
    pub(crate) fn attempt_pairs(&self) -> Vec<(u64, u64)> {
        self.attempts.iter().map(|(&t, &n)| (t.0, n)).collect()
    }

    /// Snapshot export: per-worker expiry counts.
    pub(crate) fn expiry_counts(&self) -> &[u64] {
        &self.expiry_counts
    }

    /// Restore from snapshot fields (inverse of the exports above).
    pub(crate) fn restore(
        leases: &[(u64, usize, u64)],
        attempts: &[(u64, u64)],
        expiry_counts: &[u64],
    ) -> Self {
        LeaseTable {
            leases: leases
                .iter()
                .map(|&(t, worker, attempt)| (TokenId(t), LeaseInfo { worker, attempt }))
                .collect(),
            attempts: attempts.iter().map(|&(t, n)| (TokenId(t), n)).collect(),
            expiry_counts: expiry_counts.to_vec(),
        }
    }
}
