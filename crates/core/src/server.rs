//! The Token Server (§III): Token Generator, Token Distributor, Token Bucket /
//! sub-Token Buckets (STBs) and Info Mapping, plus the three scheduling policies —
//! ADS (§III-D), HF (§III-E) and CTD (§III-F).
//!
//! The server is *pure scheduling state*: it knows nothing about virtual time
//! except the instants the runtime passes in for lock-conflict detection. That
//! keeps every policy decision unit-testable without a simulation.
//!
//! ## How the pieces map to the paper
//!
//! * **Token Generator** — root (T-1) tokens are seeded per iteration;
//!   [`TokenServer::report`] groups completed level-`i` tokens in completion order
//!   (as in Figure 3) and generates one level-`i+1` token per `ratio` completions,
//!   with the group as its dependency set.
//! * **Info Mapping** — the `holder` map (which worker holds a completed token's
//!   output); locality scores (Equation 1) are computed from it.
//! * **Token Distributor** — [`TokenServer::request`] / the waiting queue. With HF
//!   on, each worker owns an STB and steals only when its own STB is empty
//!   (becoming a *helper*, §III-E); with HF off there is one global bucket and
//!   every grant contends for the lock.
//! * **ADS** — level order is highest-first (Principle 1) and, within a level, the
//!   token with the highest locality score towards the requester wins, ties to the
//!   smallest token id (Principle 2). With ADS off (ablation), levels go
//!   lowest-first and tokens in id order, ignoring locality.
//! * **CTD** — communication-intensive levels are only granted to the subset `S`
//!   (workers `0..subset_size`), with priority cond > rest-descending for members
//!   and cond levels skipped for non-members.
//!
//! ## Work conservation across iterations
//!
//! BSP correctness is a *per-sub-model dataflow* property: level `l` tokens of
//! iteration `k+1` need (a) level `l`'s parameters synced from iteration `k` and
//! (b) their input dependencies from iteration `k+1` itself. They do **not** wait
//! for deeper sub-models of iteration `k`. The server therefore releases each
//! level's next iteration as soon as that level's sync drains, letting SM-1 of
//! iteration `k+1` fill the bubbles while SM-3 of iteration `k` still trains —
//! the "Work Conservation ✓" column Fela earns in Table II, with no staleness:
//! every gradient still enters the very next update of its own sub-model.
//!
//! ## Errors and determinism
//!
//! Every internal invariant breach surfaces as a typed
//! [`ScheduleError`](crate::ScheduleError) instead of a panic, so callers (the
//! simulation runtime, the `fela-check` verifier, tests) decide how to react.
//! Scheduling state lives in ordered containers (`BTreeMap`/`VecDeque`) only:
//! no code path's observable behaviour can depend on hash-iteration order,
//! which keeps emitted reports and artifacts byte-identical across runs.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use fela_sim::SimTime;
use serde::Serialize;

use crate::config::FelaConfig;
use crate::error::ScheduleError;
use crate::lease::{ExpiredLease, LeaseInfo};
use crate::plan::TokenPlan;
use crate::shard::{score_key, LevelState, ScoreSet};
use crate::snapshot::ServerSnapshot;
use crate::token::{Token, TokenId};

/// Static per-level facts the scheduler needs (derived from the partition).
#[derive(Clone, Copy, Debug, Serialize)]
pub struct LevelMeta {
    /// Trainable parameter bytes of the sub-model (sync volume).
    pub param_bytes: u64,
    /// Per-sample output activation bytes (dependency transfer volume).
    pub output_bytes_per_sample: u64,
    /// Per-sample input bytes (for level 0: raw sample bytes).
    pub input_bytes_per_sample: u64,
    /// Whether the level is communication-intensive (CTD target).
    pub comm_intensive: bool,
}

/// A token grant handed to a worker.
#[derive(Clone, Debug)]
pub struct Grant {
    /// The granted token.
    pub token: Token,
    /// Remote inputs to fetch before compute starts: `(holder, bytes)`.
    pub fetches: Vec<(usize, u64)>,
    /// The grant hit a fetching conflict (§III-E) — the runtime adds the penalty.
    pub conflict: bool,
    /// How many times this token's lease has been revoked before this grant
    /// (0 = first attempt). With recovery on, the runtime widens the lease
    /// deadline by `2^attempt` (exponential backoff on repeated expiry).
    pub attempt: u64,
}

/// A parameter-synchronisation request emitted when a level's last token of an
/// iteration completes.
///
/// Every completed `(level, iteration)` emits exactly one spec — including
/// *degenerate* ones (a single participant or zero parameter bytes), which cost
/// nothing on the wire but still mark the update commit. The caller must call
/// [`TokenServer::sync_finished`] for each spec, immediately for degenerate
/// ones; this keeps every parameter-update commit observable to checkers.
#[derive(Clone, Debug, PartialEq, Eq, Serialize)]
pub struct SyncSpec {
    /// Level whose parameters to all-reduce.
    pub level: usize,
    /// Iteration the sync belongs to.
    pub iteration: u64,
    /// Participating workers.
    pub participants: Vec<usize>,
    /// Bytes to all-reduce.
    pub bytes: u64,
}

impl SyncSpec {
    /// True if the sync needs no wire traffic (single participant or no bytes)
    /// and can be finished immediately.
    pub fn is_degenerate(&self) -> bool {
        self.participants.len() <= 1 || self.bytes == 0
    }
}

/// Counters the server accumulates for the run report.
#[derive(Clone, Copy, Debug, Default, Serialize)]
pub struct ServerStats {
    /// Tokens granted in total.
    pub grants: u64,
    /// Grants served from the requester's own STB.
    pub local_grants: u64,
    /// Grants that stole from another worker's STB (helper grants).
    pub steals: u64,
    /// Grants that hit a lock conflict.
    pub conflicts: u64,
    /// Bytes fetched from remote workers for dependencies.
    pub remote_fetch_bytes: u64,
    /// Token requests that found the bucket empty (the §III-D "locking problem").
    pub starved_requests: u64,
}

/// The Token Server.
#[derive(Clone)]
pub struct TokenServer {
    plan: TokenPlan,
    cfg: FelaConfig,
    meta: Vec<LevelMeta>,
    n_workers: usize,
    max_iterations: u64,
    /// Iterations whose root tokens have been released (0..count).
    released_roots: u64,
    next_token_id: u64,
    /// All generated tokens. Ordered map: scheduling decisions and artifacts
    /// must never depend on hash-iteration order.
    tokens: BTreeMap<TokenId, Token>,
    /// `stbs[worker][level]` — distributable tokens. With HF off only `stbs[0]`
    /// is used (the global bucket).
    stbs: Vec<Vec<VecDeque<TokenId>>>,
    /// Id-ordered mirror of each `stbs[bucket][level]` queue: the smallest-id
    /// pick of the ablation paths becomes an O(log) `first()` instead of a
    /// linear queue scan.
    grantable: Vec<Vec<BTreeSet<TokenId>>>,
    /// Principle-2 index: `by_score[bucket][level][worker]` holds the bucket's
    /// tokens with *strictly positive* locality score towards `worker`, keyed by
    /// `(descending score, ascending id)`, so the distribution hot path is a
    /// `first()` lookup instead of an O(tokens × deps) scoring scan per grant.
    /// Zero-score tokens are deliberately absent: any positive score beats all
    /// zeros, and among zero-score tokens the pick is the smallest id — exactly
    /// `grantable`'s `first()` — so the index only needs the sparse positive
    /// entries (a token scores positively for at most `deps.len()` workers).
    /// Valid because a token's score towards every worker is fixed the moment it
    /// enters an STB: its deps are already-reported tokens whose `holder`
    /// entries never change. Populated only when ADS and HF are both on — the
    /// one configuration whose pick consults locality.
    by_score: Vec<Vec<Vec<ScoreSet>>>,
    /// Sparse `(worker, score key)` index entries of every STB-resident token,
    /// kept so `stb_remove` can drop them without recomputing scores.
    score_keys: BTreeMap<TokenId, Vec<(usize, u64)>>,
    /// Completed-token outputs: token → holding worker (Info Mapping).
    holder: BTreeMap<TokenId, usize>,
    levels: Vec<LevelState>,
    /// Last grant instant per bucket, for lock-conflict detection.
    last_grant_at: Vec<Option<SimTime>>,
    /// Helpers currently assisting each STB (decayed on root release).
    helpers: Vec<u64>,
    waiting: VecDeque<usize>,
    stats: ServerStats,
    /// Tokens trained per worker (for load-balance reporting).
    trained_per_worker: Vec<u64>,
    /// Liveness per worker. All-true until a crash notification arrives.
    alive: Vec<bool>,
    /// Quarantined workers: alive but untrusted (repeated lease expiries) —
    /// they get no further grants and leave the sync membership.
    quarantined: Vec<bool>,
    /// Lease expiries per worker (drives quarantine).
    expiry_counts: Vec<u64>,
    /// Active leases (maintained only with recovery on): granted,
    /// not-yet-reported tokens.
    leases: BTreeMap<TokenId, LeaseInfo>,
    /// Revocation counts per token (sparse; absent = 0).
    attempts: BTreeMap<TokenId, u64>,
    /// Where each worker's durable data (sample shard, checkpointed token
    /// outputs) currently lives. Identity until a crash re-homes a dead
    /// worker's data to a survivor — modelling the replica/checkpoint store a
    /// production deployment restores from, so dataflow survives the death of
    /// a holder without cascading recomputation.
    data_home: Vec<usize>,
    /// Tokens with no eligible bucket: when a crash kills the *last* eligible
    /// worker (the cluster is fully dark) revoked and displaced tokens park
    /// here, in revocation order, until a restart brings a survivor back.
    parked: Vec<(usize, TokenId)>,
}

impl TokenServer {
    /// Creates a server and releases iteration 0's root tokens.
    ///
    /// # Panics
    /// Panics if `meta` length differs from the plan's level count or the config
    /// is invalid for the cluster size.
    pub fn new(
        plan: TokenPlan,
        cfg: FelaConfig,
        meta: Vec<LevelMeta>,
        n_workers: usize,
        max_iterations: u64,
    ) -> Self {
        assert_eq!(
            meta.len(),
            plan.num_levels(),
            "level metadata must match plan levels"
        );
        assert!(max_iterations > 0, "need at least one iteration");
        cfg.validate(n_workers);
        let m = plan.num_levels();
        let buckets = if cfg.hf { n_workers } else { 1 };
        let mut server = TokenServer {
            plan,
            cfg,
            meta,
            n_workers,
            max_iterations,
            released_roots: 0,
            next_token_id: 0,
            tokens: BTreeMap::new(),
            stbs: vec![vec![VecDeque::new(); m]; buckets],
            grantable: vec![vec![BTreeSet::new(); m]; buckets],
            by_score: vec![vec![vec![BTreeSet::new(); n_workers]; m]; buckets],
            score_keys: BTreeMap::new(),
            holder: BTreeMap::new(),
            levels: (0..m).map(|_| LevelState::new()).collect(),
            last_grant_at: vec![None; buckets],
            helpers: vec![0; buckets],
            waiting: VecDeque::new(),
            stats: ServerStats::default(),
            trained_per_worker: vec![0; n_workers],
            alive: vec![true; n_workers],
            quarantined: vec![false; n_workers],
            expiry_counts: vec![0; n_workers],
            leases: BTreeMap::new(),
            attempts: BTreeMap::new(),
            data_home: (0..n_workers).collect(),
            parked: Vec::new(),
        };
        server.release_due_roots();
        server
    }

    /// Run configuration (read access).
    pub fn config(&self) -> &FelaConfig {
        &self.cfg
    }

    /// The token plan (read access).
    pub fn plan(&self) -> &TokenPlan {
        &self.plan
    }

    /// Cluster size the server schedules for.
    pub fn n_workers(&self) -> usize {
        self.n_workers
    }

    /// Total iterations this run trains.
    pub fn max_iterations(&self) -> u64 {
        self.max_iterations
    }

    /// A generated token by id (introspection for checkers).
    pub fn token(&self, id: TokenId) -> Option<&Token> {
        self.tokens.get(&id)
    }

    /// The full token table (pair with [`Self::snapshot`] for
    /// [`Self::restore`]).
    pub fn tokens(&self) -> &BTreeMap<TokenId, Token> {
        &self.tokens
    }

    /// Accumulated counters.
    pub fn stats(&self) -> &ServerStats {
        &self.stats
    }

    /// Tokens trained per worker so far.
    pub fn trained_per_worker(&self) -> &[u64] {
        &self.trained_per_worker
    }

    /// Iterations whose root tokens have been released (the runtime records their
    /// start times for straggler floors).
    pub fn released_root_iterations(&self) -> u64 {
        self.released_roots
    }

    /// Iterations fully finished: every level's sync for that iteration drained.
    pub fn completed_iterations(&self) -> u64 {
        self.levels.iter().map(|l| l.synced_upto).min().unwrap_or(0)
    }

    /// True once all `max_iterations` iterations are fully synced.
    pub fn run_complete(&self) -> bool {
        self.completed_iterations() == self.max_iterations
    }

    /// Whether `worker` belongs to the CTD subset `S`.
    ///
    /// While the whole subset is dead or quarantined the restriction *lapses*:
    /// every worker counts as a member, so conditional levels keep making
    /// progress on survivors instead of deadlocking until a member rejoins.
    /// Fault-free runs never take the lapse path (all members stay eligible).
    pub fn in_ctd_subset(&self, worker: usize) -> bool {
        match self.cfg.ctd {
            Some(ctd) => worker < ctd.subset_size || !self.ctd_subset_alive(),
            None => true,
        }
    }

    /// Whether the CTD subset still has at least one eligible member.
    fn ctd_subset_alive(&self) -> bool {
        match self.cfg.ctd {
            Some(ctd) => (0..ctd.subset_size).any(|w| self.eligible(w)),
            None => true,
        }
    }

    /// Eligible participants for a conditional level: the alive part of the
    /// CTD subset, or — when the whole subset is down — every eligible worker
    /// (the CTD restriction lapses until a subset member rejoins).
    fn ctd_participants(&self, level: usize) -> Result<Vec<usize>, ScheduleError> {
        let ctd = self
            .cfg
            .ctd
            .ok_or(ScheduleError::CtdConfigMissing { level })?;
        let members: Vec<usize> = (0..ctd.subset_size).filter(|&w| self.eligible(w)).collect();
        if !members.is_empty() {
            return Ok(members);
        }
        let alive: Vec<usize> = (0..self.n_workers).filter(|&w| self.eligible(w)).collect();
        if alive.is_empty() {
            return Err(ScheduleError::NoAliveWorkers);
        }
        Ok(alive)
    }

    /// Whether lease-based recovery is enabled.
    pub fn recovery_on(&self) -> bool {
        self.cfg.recovery.is_some()
    }

    /// Whether the server considers `worker` alive.
    pub fn is_alive(&self, worker: usize) -> bool {
        self.alive[worker]
    }

    /// Whether `worker` is quarantined (alive but barred from grants).
    pub fn is_quarantined(&self, worker: usize) -> bool {
        self.quarantined[worker]
    }

    /// Alive, non-quarantined — the workers grants and syncs may target.
    fn eligible(&self, worker: usize) -> bool {
        self.alive[worker] && !self.quarantined[worker]
    }

    /// The active lease on `token`, if any (recovery mode only).
    pub fn lease_of(&self, token: TokenId) -> Option<LeaseInfo> {
        self.leases.get(&token).copied()
    }

    /// How many times `token`'s lease has been revoked so far (the attempt
    /// number its *next* grant will carry).
    pub fn attempt_of(&self, token: TokenId) -> u64 {
        self.attempts.get(&token).copied().unwrap_or(0)
    }

    /// Where `worker`'s durable data (shard, checkpointed outputs) currently
    /// lives — `worker` itself until a crash re-homes it.
    pub fn data_home_of(&self, worker: usize) -> usize {
        self.data_home[worker]
    }

    /// The smallest-id eligible worker — the deterministic re-home target.
    fn fallback_worker(&self) -> Result<usize, ScheduleError> {
        (0..self.n_workers)
            .find(|&w| self.eligible(w))
            .ok_or(ScheduleError::NoAliveWorkers)
    }

    /// Handles a crash notification for `worker`: revokes all its leases,
    /// re-homes its durable data onto a survivor, redistributes its STB
    /// contents across surviving buckets and drops it from the waiting queue
    /// and barrier membership. Returns the tokens revoked (for tracing).
    pub fn worker_crashed(&mut self, worker: usize) -> Result<Vec<TokenId>, ScheduleError> {
        self.check_worker(worker)?;
        if !self.alive[worker] {
            return Err(ScheduleError::BadLivenessTransition {
                worker,
                alive: false,
            });
        }
        self.alive[worker] = false;
        self.waiting.retain(|&w| w != worker);
        // When the crash kills the last eligible worker the cluster is fully
        // dark: nobody can serve data or accept tokens, so re-homing is
        // deferred and revoked tokens park until a restart (see
        // [`Self::worker_restarted`]). Nothing is lost — the durable store
        // the homes model outlives every process.
        let fallback = self.fallback_worker().ok();
        if let Some(fb) = fallback {
            // Re-home durable data: every shard and checkpointed output whose
            // home was the dead worker is now served by the fallback survivor.
            for home in &mut self.data_home {
                if *home == worker {
                    *home = fb;
                }
            }
            for holder in self.holder.values_mut() {
                if *holder == worker {
                    *holder = fb;
                }
            }
        }
        // Revoke every lease the dead worker held.
        let held: Vec<TokenId> = self
            .leases
            .iter()
            .filter(|(_, l)| l.worker == worker)
            .map(|(&t, _)| t)
            .collect();
        for &t in &held {
            self.revoke_lease(t)?;
        }
        // Redistribute the dead worker's STB so no token is stranded in a
        // bucket nobody requests from (helpers do steal from foreign buckets,
        // but an unmarked dead bucket would still skew helper prioritisation).
        if self.cfg.hf {
            for level in 0..self.plan.num_levels() {
                let ids: Vec<TokenId> = self.stbs[worker][level].iter().copied().collect();
                for id in ids {
                    self.stb_remove(worker, level, id)?;
                    self.place_token(level, id)?;
                }
            }
            if let Some(fb) = fallback {
                for ls in &mut self.levels {
                    for (_, bucket) in ls.pending.iter_mut() {
                        if *bucket == worker {
                            *bucket = fb;
                        }
                    }
                }
            }
        }
        // Holder re-homing invalidated locality scores computed earlier.
        self.rebuild_score_index()?;
        Ok(held)
    }

    /// Handles a restart notification: `worker` rejoins with a fresh process
    /// (empty STB, clean slate — quarantine and expiry history are cleared).
    /// Its durable data stays where the crash re-homed it. If the cluster went
    /// fully dark in the meantime, the rejoining worker adopts the orphaned
    /// state: homes and holders still pointing at dead workers move to it and
    /// parked tokens are finally placed.
    pub fn worker_restarted(&mut self, worker: usize) -> Result<(), ScheduleError> {
        self.check_worker(worker)?;
        if self.alive[worker] {
            return Err(ScheduleError::BadLivenessTransition {
                worker,
                alive: true,
            });
        }
        self.alive[worker] = true;
        self.quarantined[worker] = false;
        self.expiry_counts[worker] = 0;
        let orphaned = !self.parked.is_empty()
            || self.data_home.iter().any(|&h| !self.alive[h])
            || self.holder.values().any(|&h| !self.alive[h]);
        if orphaned {
            let fb = self.fallback_worker()?; // the rejoining worker at worst
            for home in &mut self.data_home {
                if !self.alive[*home] {
                    *home = fb;
                }
            }
            for holder in self.holder.values_mut() {
                if !self.alive[*holder] {
                    *holder = fb;
                }
            }
            if self.cfg.hf {
                for ls in &mut self.levels {
                    for (_, bucket) in ls.pending.iter_mut() {
                        if !self.alive[*bucket] {
                            *bucket = fb;
                        }
                    }
                }
            }
            let parked = std::mem::take(&mut self.parked);
            for (level, id) in parked {
                self.place_token(level, id)?;
            }
            self.rebuild_score_index()?;
        }
        Ok(())
    }

    /// Handles a lease-deadline expiry for `(token, attempt)`. Stale timers —
    /// the lease was already released by a report, or already revoked and
    /// re-granted under a newer attempt — return `Ok(None)` and change
    /// nothing. A live expiry revokes the lease, counts against the holder
    /// and, at the configured threshold, quarantines it (revoking all its
    /// remaining leases too).
    pub fn lease_expired(
        &mut self,
        token: TokenId,
        attempt: u64,
    ) -> Result<Option<ExpiredLease>, ScheduleError> {
        let Some(lease) = self.leases.get(&token).copied() else {
            return Ok(None);
        };
        if lease.attempt != attempt {
            return Ok(None);
        }
        let worker = lease.worker;
        self.revoke_lease(token)?;
        let mut revoked = vec![token];
        self.expiry_counts[worker] += 1;
        let threshold = self
            .cfg
            .recovery
            .map(|r| r.quarantine_after)
            .unwrap_or(u64::MAX);
        let mut newly_quarantined = false;
        if self.expiry_counts[worker] >= threshold && !self.quarantined[worker] {
            // Check a survivor remains before shrinking the membership.
            if (0..self.n_workers).any(|w| w != worker && self.eligible(w)) {
                self.quarantined[worker] = true;
                newly_quarantined = true;
                self.waiting.retain(|&w| w != worker);
                let held: Vec<TokenId> = self
                    .leases
                    .iter()
                    .filter(|(_, l)| l.worker == worker)
                    .map(|(&t, _)| t)
                    .collect();
                for &t in &held {
                    self.revoke_lease(t)?;
                }
                revoked.extend(held);
            }
        }
        Ok(Some(ExpiredLease {
            worker,
            revoked,
            quarantined: newly_quarantined,
        }))
    }

    /// Revokes the active lease on `token`: bumps its attempt count and
    /// returns it to the grantable set, re-scored against surviving workers.
    fn revoke_lease(&mut self, token: TokenId) -> Result<(), ScheduleError> {
        self.leases
            .remove(&token)
            .ok_or(ScheduleError::UnknownToken { token })?;
        *self.attempts.entry(token).or_insert(0) += 1;
        let level = self
            .tokens
            .get(&token)
            .ok_or(ScheduleError::UnknownToken { token })?
            .level;
        self.place_token(level, token)
    }

    /// Places a token (revoked, or displaced from a dead bucket) into the best
    /// surviving bucket: the eligible worker with the highest locality score
    /// (Equation 1 against the current holder map), ties to the lightest
    /// queue, then the smallest id. Conditional levels stay inside the alive
    /// part of the CTD subset. With no eligible worker anywhere (fully dark
    /// cluster) the token parks until a restart re-places it.
    fn place_token(&mut self, level: usize, id: TokenId) -> Result<(), ScheduleError> {
        if !self.cfg.hf {
            return self.stb_push(0, level, id);
        }
        let candidates: Vec<usize> = if self.is_cond_level(level) {
            match self.ctd_participants(level) {
                Ok(c) => c,
                Err(ScheduleError::NoAliveWorkers) => {
                    self.parked.push((level, id));
                    return Ok(());
                }
                Err(e) => return Err(e),
            }
        } else {
            let alive: Vec<usize> = (0..self.n_workers).filter(|&w| self.eligible(w)).collect();
            if alive.is_empty() {
                self.parked.push((level, id));
                return Ok(());
            }
            alive
        };
        let mut best: Option<(u64, usize, usize)> = None; // (score key, queue, id)
        let mut bucket = candidates[0];
        for &w in &candidates {
            let score = self.locality_score(w, id)?;
            let key = (
                score_key(score),
                self.stbs[w].iter().map(VecDeque::len).sum::<usize>(),
                w,
            );
            if best.map_or(true, |b| key < b) {
                best = Some(key);
                bucket = w;
            }
        }
        self.stb_push(bucket, level, id)
    }

    /// Recomputes the Principle-2 score index for every STB-resident token
    /// (crash re-homing moved holder entries, invalidating scores fixed at
    /// insertion time). Crash-path only — cost is proportional to queued
    /// tokens, and crashes are rare events.
    fn rebuild_score_index(&mut self) -> Result<(), ScheduleError> {
        if !self.use_score_index() {
            return Ok(());
        }
        for bucket in 0..self.stbs.len() {
            for level in 0..self.plan.num_levels() {
                let ids: Vec<TokenId> = self.stbs[bucket][level].iter().copied().collect();
                for id in ids {
                    if let Some(keys) = self.score_keys.remove(&id) {
                        for (w, k) in keys {
                            self.by_score[bucket][level][w].remove(&(k, id));
                        }
                    }
                    let (counts, len) = {
                        let t = self
                            .tokens
                            .get(&id)
                            .ok_or(ScheduleError::UnknownToken { token: id })?;
                        let mut counts = vec![0usize; self.n_workers];
                        for d in &t.deps {
                            if let Some(&w) = self.holder.get(d) {
                                counts[w] += 1;
                            }
                        }
                        (counts, t.deps.len())
                    };
                    let mut keys: Vec<(usize, u64)> = Vec::new();
                    for (w, &c) in counts.iter().enumerate() {
                        if c > 0 {
                            let k = score_key(c as f64 / len as f64);
                            self.by_score[bucket][level][w].insert((k, id));
                            keys.push((w, k));
                        }
                    }
                    if !keys.is_empty() {
                        self.score_keys.insert(id, keys);
                    }
                }
            }
        }
        Ok(())
    }

    /// A canonical snapshot of the scheduling state (see [`ServerSnapshot`]).
    pub fn snapshot(&self) -> ServerSnapshot {
        ServerSnapshot {
            released_roots: self.released_roots,
            next_token_id: self.next_token_id,
            stbs: self
                .stbs
                .iter()
                .map(|b| {
                    b.iter()
                        .map(|q| q.iter().map(|id| id.0).collect())
                        .collect()
                })
                .collect(),
            pending: self
                .levels
                .iter()
                .map(|l| l.pending.iter().map(|&(id, b)| (id.0, b)).collect())
                .collect(),
            synced_upto: self.levels.iter().map(|l| l.synced_upto).collect(),
            synced_out_of_order: self
                .levels
                .iter()
                .map(|l| l.synced_out_of_order.iter().copied().collect())
                .collect(),
            completed: self
                .levels
                .iter()
                .map(|l| l.completed.iter().map(|(&k, &v)| (k, v)).collect())
                .collect(),
            gen_buffers: self
                .levels
                .iter()
                .map(|l| {
                    l.gen_buffer
                        .iter()
                        .map(|(&k, v)| (k, v.iter().map(|id| id.0).collect()))
                        .collect()
                })
                .collect(),
            holder: self.holder.iter().map(|(&t, &w)| (t.0, w)).collect(),
            waiting: self.waiting.iter().copied().collect(),
            helpers: self.helpers.clone(),
            alive: self.alive.clone(),
            quarantined: self.quarantined.clone(),
            leases: self
                .leases
                .iter()
                .map(|(&t, l)| (t.0, l.worker, l.attempt))
                .collect(),
            attempts: self.attempts.iter().map(|(&t, &n)| (t.0, n)).collect(),
            expiry_counts: self.expiry_counts.clone(),
            data_home: self.data_home.clone(),
            parked: self.parked.iter().map(|&(l, id)| (l, id.0)).collect(),
        }
    }

    /// Restores a server from a snapshot plus the token table it refers to.
    /// The result snapshots back bit-identically and continues exactly as a
    /// server that reached the snapshot live (timing-only state — conflict
    /// instants and counters — restarts empty, as documented on
    /// [`ServerSnapshot`]).
    pub fn restore(
        plan: TokenPlan,
        cfg: FelaConfig,
        meta: Vec<LevelMeta>,
        n_workers: usize,
        max_iterations: u64,
        tokens: BTreeMap<TokenId, Token>,
        snap: &ServerSnapshot,
    ) -> Result<Self, ScheduleError> {
        assert_eq!(
            meta.len(),
            plan.num_levels(),
            "level metadata must match plan levels"
        );
        assert!(max_iterations > 0, "need at least one iteration");
        cfg.validate(n_workers);
        let m = plan.num_levels();
        let buckets = if cfg.hf { n_workers } else { 1 };
        let mut s = TokenServer {
            plan,
            cfg,
            meta,
            n_workers,
            max_iterations,
            released_roots: snap.released_roots,
            next_token_id: snap.next_token_id,
            tokens,
            stbs: vec![vec![VecDeque::new(); m]; buckets],
            grantable: vec![vec![BTreeSet::new(); m]; buckets],
            by_score: vec![vec![vec![BTreeSet::new(); n_workers]; m]; buckets],
            score_keys: BTreeMap::new(),
            holder: snap.holder.iter().map(|&(t, w)| (TokenId(t), w)).collect(),
            levels: (0..m).map(|_| LevelState::new()).collect(),
            last_grant_at: vec![None; buckets],
            helpers: snap.helpers.clone(),
            waiting: snap.waiting.iter().copied().collect(),
            stats: ServerStats::default(),
            trained_per_worker: vec![0; n_workers],
            alive: snap.alive.clone(),
            quarantined: snap.quarantined.clone(),
            expiry_counts: snap.expiry_counts.clone(),
            leases: snap
                .leases
                .iter()
                .map(|&(t, worker, attempt)| (TokenId(t), LeaseInfo { worker, attempt }))
                .collect(),
            attempts: snap
                .attempts
                .iter()
                .map(|&(t, n)| (TokenId(t), n))
                .collect(),
            data_home: snap.data_home.clone(),
            parked: snap
                .parked
                .iter()
                .map(|&(level, id)| (level, TokenId(id)))
                .collect(),
        };
        for level in 0..m {
            let ls = &mut s.levels[level];
            ls.synced_upto = snap.synced_upto[level];
            ls.synced_out_of_order = snap.synced_out_of_order[level].iter().copied().collect();
            ls.completed = snap.completed[level].iter().copied().collect();
            ls.gen_buffer = snap.gen_buffers[level]
                .iter()
                .map(|(k, v)| (*k, v.iter().map(|&i| TokenId(i)).collect()))
                .collect();
            ls.pending = snap.pending[level]
                .iter()
                .map(|&(id, b)| (TokenId(id), b))
                .collect();
        }
        // `generated` is derivable: level ≥ 1 tokens are created only by the
        // generator and never dropped from the token table.
        let gen_pairs: Vec<(usize, u64)> = s
            .tokens
            .values()
            .filter(|t| t.level >= 1)
            .map(|t| (t.level, t.iteration))
            .collect();
        for (level, iteration) in gen_pairs {
            *s.levels[level].generated.entry(iteration).or_insert(0) += 1;
        }
        // Queues repopulate in snapshot order; scores recompute against the
        // restored Info Mapping, which equals the insertion-time index (dep
        // holders never change except re-homing, which rebuilds the index).
        for bucket in 0..snap.stbs.len() {
            for level in 0..m {
                for &id in &snap.stbs[bucket][level] {
                    s.stb_push(bucket, level, TokenId(id))?;
                }
            }
        }
        Ok(s)
    }

    fn check_worker(&self, worker: usize) -> Result<(), ScheduleError> {
        if worker >= self.n_workers {
            return Err(ScheduleError::InvalidWorker {
                worker,
                n_workers: self.n_workers,
            });
        }
        Ok(())
    }

    fn is_cond_level(&self, level: usize) -> bool {
        self.cfg.ctd.is_some() && self.meta[level].comm_intensive
    }

    /// True when grants consult locality (and the Principle-2 index is kept).
    fn use_score_index(&self) -> bool {
        self.cfg.ads && self.cfg.hf
    }

    /// Inserts a token into an STB queue and all distribution indices. A single
    /// walk over the token's dependency holders yields every worker's held
    /// count; only workers with a positive count get an index entry (Equation
    /// 1's `held / len` — the same division [`Self::locality_score`] performs).
    fn stb_push(&mut self, bucket: usize, level: usize, id: TokenId) -> Result<(), ScheduleError> {
        self.stbs[bucket][level].push_back(id);
        self.grantable[bucket][level].insert(id);
        if self.use_score_index() {
            let counts = {
                let t = self
                    .tokens
                    .get(&id)
                    .ok_or(ScheduleError::UnknownToken { token: id })?;
                let mut counts = vec![0usize; self.n_workers];
                for d in &t.deps {
                    if let Some(&w) = self.holder.get(d) {
                        counts[w] += 1;
                    }
                }
                (counts, t.deps.len())
            };
            let (counts, len) = counts;
            let mut keys: Vec<(usize, u64)> = Vec::new();
            for (w, &c) in counts.iter().enumerate() {
                if c > 0 {
                    let k = score_key(c as f64 / len as f64);
                    self.by_score[bucket][level][w].insert((k, id));
                    keys.push((w, k));
                }
            }
            if !keys.is_empty() {
                self.score_keys.insert(id, keys);
            }
        }
        Ok(())
    }

    /// [`Self::stb_push`] for root tokens, whose dependency set is empty and
    /// whose score is therefore 0 towards everyone (no index entries) —
    /// infallible, so root release (called from the constructor) needs no error
    /// path.
    fn stb_push_root(&mut self, bucket: usize, id: TokenId) {
        self.stbs[bucket][0].push_back(id);
        self.grantable[bucket][0].insert(id);
    }

    /// Removes a granted token from its STB queue and all distribution indices.
    fn stb_remove(
        &mut self,
        bucket: usize,
        level: usize,
        id: TokenId,
    ) -> Result<(), ScheduleError> {
        let q = &mut self.stbs[bucket][level];
        let Some(pos) = q.iter().position(|&x| x == id) else {
            // The index pointed at a token the queue does not hold.
            return Err(ScheduleError::CorruptBucket {
                bucket,
                level,
                position: 0,
            });
        };
        q.remove(pos);
        self.grantable[bucket][level].remove(&id);
        if let Some(keys) = self.score_keys.remove(&id) {
            for (w, k) in keys {
                self.by_score[bucket][level][w].remove(&(k, id));
            }
        }
        Ok(())
    }

    /// Releases root tokens for every iteration currently allowed by the level-0
    /// sync state, staleness bound and pipelining mode (called at construction
    /// and whenever a sync drains). Root token `seq` draws its samples from
    /// worker `seq % N`'s local shard and (with HF) starts in that worker's STB —
    /// the sample affinity that makes HF's first stage transfer-free.
    fn release_due_roots(&mut self) {
        loop {
            let bound = if self.cfg.pipelining {
                self.levels[0].release_bound(self.cfg.staleness)
            } else {
                // Strict barrier: iteration k+1 starts only once iteration k is
                // fully synced at every level.
                self.completed_iterations() + self.cfg.staleness
            };
            if self.released_roots >= self.max_iterations || self.released_roots > bound {
                return;
            }
            self.release_one_root_iteration();
        }
    }

    fn release_one_root_iteration(&mut self) {
        let iter = self.released_roots;
        self.released_roots += 1;
        // A fresh wave of local work arrived for everyone: helper counts from the
        // previous wave no longer describe the new contention picture.
        for h in &mut self.helpers {
            *h = 0;
        }
        let n0 = self.plan.levels[0].tokens_per_iteration;
        let batch = self.plan.levels[0].batch_per_token;
        for seq in 0..n0 {
            let owner = (seq % self.n_workers as u64) as usize;
            let id = TokenId(self.next_token_id);
            self.next_token_id += 1;
            let token = Token {
                id,
                level: 0,
                iteration: iter,
                seq,
                batch,
                deps: vec![],
                sample_owner: Some(owner),
            };
            self.tokens.insert(id, token);
            // Sample affinity: the root starts in the STB of whoever serves its
            // shard — the owner, unless a crash re-homed the shard (or the home
            // is quarantined, in which case the smallest eligible worker hosts
            // the token so it is not stranded in an unrequesting bucket).
            let home = self.data_home[owner];
            let bucket = if !self.cfg.hf {
                0
            } else if self.eligible(home) {
                home
            } else {
                (0..self.n_workers)
                    .find(|&w| self.eligible(w))
                    .unwrap_or(home)
            };
            self.stb_push_root(bucket, id);
        }
    }

    /// A worker asks for a token at `now`. Returns the grant, or `Ok(None)` — in
    /// which case the worker is queued and will be returned later by
    /// [`TokenServer::pop_ready_grant`].
    pub fn request(&mut self, worker: usize, now: SimTime) -> Result<Option<Grant>, ScheduleError> {
        self.check_worker(worker)?;
        if !self.eligible(worker) {
            // A request can legitimately race the worker's own crash or
            // quarantine (it was in flight when the membership changed).
            return Err(ScheduleError::WorkerUnavailable { worker });
        }
        match self.try_grant(worker, now)? {
            Some(grant) => Ok(Some(grant)),
            None => {
                self.stats.starved_requests += 1;
                if !self.waiting.contains(&worker) {
                    self.waiting.push_back(worker);
                }
                Ok(None)
            }
        }
    }

    /// After bucket contents changed (report / sync / release), serves the
    /// longest-waiting worker that can now be granted. Call in a loop until
    /// `Ok(None)`.
    pub fn pop_ready_grant(
        &mut self,
        now: SimTime,
    ) -> Result<Option<(usize, Grant)>, ScheduleError> {
        for idx in 0..self.waiting.len() {
            let worker = self.waiting[idx];
            if let Some(grant) = self.try_grant(worker, now)? {
                self.waiting.remove(idx);
                return Ok(Some((worker, grant)));
            }
        }
        Ok(None)
    }

    /// Drains *every* currently servable waiting worker into `out` — exactly
    /// the repeated-[`TokenServer::pop_ready_grant`]-until-`None` loop, so
    /// callers that batch grants observe the same grant order and stats as
    /// callers that pop one at a time.
    pub fn drain_ready_grants(
        &mut self,
        now: SimTime,
        out: &mut Vec<(usize, Grant)>,
    ) -> Result<(), ScheduleError> {
        while let Some(pair) = self.pop_ready_grant(now)? {
            out.push(pair);
        }
        Ok(())
    }

    /// Core distribution: pick a token for `worker` per HF/ADS/CTD.
    fn try_grant(&mut self, worker: usize, now: SimTime) -> Result<Option<Grant>, ScheduleError> {
        let Some((bucket, stolen)) = self.pick_bucket(worker) else {
            return Ok(None);
        };
        let Some((level, id)) = self.pick_token(bucket, worker) else {
            return Ok(None);
        };
        self.stb_remove(bucket, level, id)?;
        // Lock-conflict detection: with HF, only steals contend (owners access
        // their STB lock-free); with the global bucket every grant contends.
        let contends = stolen || !self.cfg.hf;
        let mut conflict = false;
        if contends {
            if let Some(last) = self.last_grant_at[bucket] {
                if now.saturating_since(last) < self.cfg.lock_window {
                    conflict = true;
                    self.stats.conflicts += 1;
                }
            }
            self.last_grant_at[bucket] = Some(now);
        }
        if stolen {
            self.stats.steals += 1;
            self.helpers[bucket] += 1;
        } else {
            self.stats.local_grants += 1;
        }
        self.stats.grants += 1;
        let token = self
            .tokens
            .get(&id)
            .ok_or(ScheduleError::UnknownToken { token: id })?
            .clone();
        let fetches = self.fetches_for(&token, worker)?;
        for &(_, bytes) in &fetches {
            self.stats.remote_fetch_bytes += bytes;
        }
        let attempt = self.attempts.get(&id).copied().unwrap_or(0);
        if self.recovery_on() {
            self.leases.insert(id, LeaseInfo { worker, attempt });
        }
        Ok(Some(Grant {
            token,
            fetches,
            conflict,
            attempt,
        }))
    }

    /// Chooses which bucket to draw from: own STB, else the most deserving
    /// straggler's STB (helper prioritisation, §III-E). Returns
    /// `(bucket, stolen)`.
    fn pick_bucket(&self, worker: usize) -> Option<(usize, bool)> {
        if !self.cfg.hf {
            let has = self.bucket_has_grantable(0, worker);
            return has.then_some((0, false));
        }
        if self.bucket_has_grantable(worker, worker) {
            return Some((worker, false));
        }
        // Helper mode: prefer the straggler with the fewest helpers, then the most
        // remaining tokens (slowest progress), then the lowest id.
        let mut best: Option<(u64, std::cmp::Reverse<usize>, usize)> = None;
        let mut best_bucket = None;
        for b in 0..self.n_workers {
            if b == worker || !self.bucket_has_grantable(b, worker) {
                continue;
            }
            let remaining: usize = self.stbs[b].iter().map(VecDeque::len).sum();
            let key = (self.helpers[b], std::cmp::Reverse(remaining), b);
            if best.map_or(true, |b| key < b) {
                best = Some(key);
                best_bucket = Some(b);
            }
        }
        best_bucket.map(|b| (b, true))
    }

    /// Whether `bucket` holds at least one token grantable to `worker` under CTD.
    fn bucket_has_grantable(&self, bucket: usize, worker: usize) -> bool {
        self.stbs[bucket].iter().enumerate().any(|(level, q)| {
            !q.is_empty() && (self.in_ctd_subset(worker) || !self.is_cond_level(level))
        })
    }

    /// Picks `(level, token)` inside a bucket per ADS/CTD.
    ///
    /// Both picks are index `first()` lookups. The Principle-2 index reproduces
    /// the historical epsilon-tolerant scan (`score > best + 1e-12`, ties to the
    /// smallest id) exactly: scores are rationals `held/len`, so two distinct
    /// scores differ by at least `1/(lenₐ·len_b)` — orders of magnitude above
    /// the 1e-12 epsilon — meaning the epsilon never merged genuinely distinct
    /// scores and the exact `(score, id)` order picks the same token.
    fn pick_token(&self, bucket: usize, worker: usize) -> Option<(usize, TokenId)> {
        let m = self.plan.num_levels();
        let member = self.in_ctd_subset(worker);
        // Build the level preference order.
        let mut order: Vec<usize> = Vec::with_capacity(m);
        if self.cfg.ctd.is_some() && member {
            // Conditional levels first (T-2 > T-3 > T-1 in the paper's example).
            order.extend((0..m).filter(|&l| self.is_cond_level(l)));
        }
        let mut rest: Vec<usize> = (0..m).filter(|l| !order.contains(l)).collect();
        if self.cfg.ads {
            rest.sort_unstable_by(|a, b| b.cmp(a)); // highest level first
        } else {
            rest.sort_unstable(); // ablation: lowest level first
        }
        order.extend(rest);

        for level in order {
            if !member && self.is_cond_level(level) {
                continue;
            }
            // The global bucket (HF off) is locality-blind: scoring every
            // token's dependency holders under the single global lock is exactly
            // the serialization §III-E says the STBs exist to avoid, so the
            // distributor degrades to sequential (smallest-id) assignment.
            let pick = if self.use_score_index() {
                // Principle 2: max locality score, tie → smallest token id. The
                // positive-score index wins outright when non-empty (any
                // positive score beats zero); otherwise every token in the
                // bucket scores 0 towards `worker` and the smallest id — the
                // `grantable` front — is the Principle-2 pick.
                self.by_score[bucket][level][worker]
                    .first()
                    .map(|&(_, id)| id)
                    .or_else(|| self.grantable[bucket][level].first().copied())
            } else {
                // Ablation: smallest token id.
                self.grantable[bucket][level].first().copied()
            };
            if let Some(id) = pick {
                return Some((level, id));
            }
        }
        None
    }

    /// Equation 1: fraction of a token's dependencies whose outputs `worker`
    /// already holds. Root tokens have an empty dependency set and score 0 — the
    /// paper distributes them "randomly (or sequentially)"; their *sample*
    /// affinity is expressed only through STB placement (§III-E), which is
    /// exactly why HF matters so much for them.
    pub fn locality_score(&self, worker: usize, token: TokenId) -> Result<f64, ScheduleError> {
        let t = self
            .tokens
            .get(&token)
            .ok_or(ScheduleError::UnknownToken { token })?;
        if t.deps.is_empty() {
            return Ok(0.0);
        }
        let held = t
            .deps
            .iter()
            .filter(|d| self.holder.get(d) == Some(&worker))
            .count();
        Ok(held as f64 / t.deps.len() as f64)
    }

    /// Remote inputs `worker` must fetch to run `token`.
    fn fetches_for(
        &self,
        token: &Token,
        worker: usize,
    ) -> Result<Vec<(usize, u64)>, ScheduleError> {
        if token.level == 0 {
            let owner = token
                .sample_owner
                .ok_or(ScheduleError::MissingSampleOwner { token: token.id })?;
            // The shard may have been re-homed if its owner crashed.
            let home = self.data_home[owner];
            if home != worker {
                let bytes = token.batch * self.meta[0].input_bytes_per_sample;
                return Ok(vec![(home, bytes)]);
            }
            return Ok(vec![]);
        }
        let per_sample = self.meta[token.level].input_bytes_per_sample;
        let mut fetches = Vec::new();
        for dep in &token.deps {
            let holder = *self
                .holder
                .get(dep)
                .ok_or(ScheduleError::MissingDependencyHolder {
                    token: token.id,
                    dep: *dep,
                })?;
            if holder != worker {
                let dep_batch = self
                    .tokens
                    .get(dep)
                    .ok_or(ScheduleError::UnknownToken { token: *dep })?
                    .batch;
                fetches.push((holder, dep_batch * per_sample));
            }
        }
        Ok(fetches)
    }

    /// A worker reports a completed token. Records the holder, possibly generates
    /// the next-level token, and returns any sync requests that became due.
    ///
    /// Degenerate syncs (see [`SyncSpec::is_degenerate`]) are returned too; the
    /// caller finishes them immediately via [`TokenServer::sync_finished`].
    pub fn report(
        &mut self,
        worker: usize,
        token: TokenId,
    ) -> Result<Vec<SyncSpec>, ScheduleError> {
        self.check_worker(worker)?;
        let (level, iteration) = {
            let t = self
                .tokens
                .get(&token)
                .ok_or(ScheduleError::UnknownToken { token })?;
            (t.level, t.iteration)
        };
        if self.recovery_on() {
            // Exactly-once gradient application: only the current lease holder
            // may commit a token. A report whose lease expired or was revoked
            // (the worker hung past its deadline, or crashed and this report
            // raced the notification) is rejected before any state changes.
            match self.leases.get(&token) {
                Some(l) if l.worker == worker => {
                    self.leases.remove(&token);
                }
                _ => return Err(ScheduleError::StaleReport { worker, token }),
            }
        }
        if self.holder.contains_key(&token) {
            return Err(ScheduleError::DuplicateReport { token });
        }
        self.holder.insert(token, worker);
        self.trained_per_worker[worker] += 1;
        // Token generation: group completions in completion order, per iteration
        // (under SSP staleness two iterations of a level can be in flight, so the
        // buffers are keyed by iteration — the token's "age" attribute of §VI).
        if level + 1 < self.plan.num_levels() {
            let ratio = self.plan.levels[level + 1].gen_ratio as usize;
            let buffer = self.levels[level].gen_buffer.entry(iteration).or_default();
            buffer.push(token);
            let deps = if buffer.len() >= ratio {
                self.levels[level].gen_buffer.remove(&iteration)
            } else {
                None
            };
            if let Some(deps) = deps {
                self.generate_token(level + 1, iteration, deps, worker)?;
            }
        }
        // Completion accounting + sync trigger for this level.
        let mut syncs = Vec::new();
        let lp = self.plan.levels[level];
        let count = {
            let ls = &mut self.levels[level];
            let c = ls.completed.entry(iteration).or_insert(0);
            *c += 1;
            *c
        };
        if count == lp.tokens_per_iteration {
            self.levels[level].completed.remove(&iteration);
            // Barrier membership recomputes against the current liveness view:
            // an iteration closes with fewer workers rather than waiting on a
            // dead or quarantined one. With everyone eligible the filter is a
            // no-op and the participants are exactly the pre-recovery sets.
            let participants: Vec<usize> = if self.is_cond_level(level) {
                self.ctd_participants(level)?
            } else {
                let alive: Vec<usize> = (0..self.n_workers).filter(|&w| self.eligible(w)).collect();
                if alive.is_empty() {
                    return Err(ScheduleError::NoAliveWorkers);
                }
                alive
            };
            syncs.push(SyncSpec {
                level,
                iteration,
                participants,
                bytes: self.meta[level].param_bytes,
            });
        }
        Ok(syncs)
    }

    /// Marks a level's parameter sync for `iteration` finished, releasing the
    /// level's next iteration (root generation for level 0, pending generated
    /// tokens for deeper levels).
    pub fn sync_finished(&mut self, level: usize, iteration: u64) -> Result<(), ScheduleError> {
        if level >= self.levels.len() {
            return Err(ScheduleError::LevelOutOfRange {
                level,
                levels: self.levels.len(),
            });
        }
        {
            let ls = &mut self.levels[level];
            if iteration < ls.synced_upto || ls.synced_out_of_order.contains(&iteration) {
                return Err(ScheduleError::DuplicateSync { level, iteration });
            }
            ls.synced_out_of_order.insert(iteration);
            while ls.synced_out_of_order.remove(&ls.synced_upto) {
                ls.synced_upto += 1;
            }
        }
        // Release gated generated tokens for this level (pending tokens are not
        // necessarily in iteration order under staleness, so scan the deque).
        let bound = self.levels[level].release_bound(self.cfg.staleness);
        let mut still_pending = VecDeque::new();
        while let Some((id, bucket)) = self.levels[level].pending.pop_front() {
            let token_iter = self
                .tokens
                .get(&id)
                .ok_or(ScheduleError::UnknownToken { token: id })?
                .iteration;
            if token_iter <= bound {
                self.stb_push(bucket, level, id)?;
            } else {
                still_pending.push_back((id, bucket));
            }
        }
        self.levels[level].pending = still_pending;
        self.release_due_roots();
        Ok(())
    }

    fn generate_token(
        &mut self,
        level: usize,
        iteration: u64,
        deps: Vec<TokenId>,
        reporter: usize,
    ) -> Result<(), ScheduleError> {
        let lp = self.plan.levels[level];
        let seq = self.levels[level]
            .generated
            .get(&iteration)
            .copied()
            .unwrap_or(0);
        if seq >= lp.tokens_per_iteration {
            return Err(ScheduleError::OverGeneration { level, iteration });
        }
        *self.levels[level].generated.entry(iteration).or_insert(0) += 1;
        let id = TokenId(self.next_token_id);
        self.next_token_id += 1;
        let token = Token {
            id,
            level,
            iteration,
            seq,
            batch: lp.batch_per_token,
            deps,
            sample_owner: None,
        };
        self.tokens.insert(id, token);
        // Placement: the reporter's STB (it holds ≥ 1/ratio of the deps —
        // Principle 1's locality argument); conditional tokens go to a subset
        // member instead (the one with the fewest queued conditional tokens).
        let bucket = if !self.cfg.hf {
            0
        } else if self.is_cond_level(level) && !self.in_ctd_subset(reporter) {
            self.ctd_participants(level)?
                .into_iter()
                .min_by_key(|&w| (self.stbs[w][level].len(), w))
                .ok_or(ScheduleError::EmptyCtdSubset { level })?
        } else {
            reporter
        };
        // Gate on this level's sync/staleness bound.
        if iteration <= self.levels[level].release_bound(self.cfg.staleness) {
            self.stb_push(bucket, level, id)?;
        } else {
            self.levels[level].pending.push_back((id, bucket));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::TokenPlan;
    use fela_model::{bin_partition, zoo, PartitionOptions, ThresholdProfile};

    const N: usize = 8;

    fn meta_from_vgg() -> (TokenPlan, Vec<LevelMeta>) {
        let p = bin_partition(
            &zoo::vgg19(),
            &ThresholdProfile::k40c(),
            PartitionOptions::default(),
        );
        let cfg = FelaConfig::new(3).with_weights(vec![1, 2, 4]);
        let plan = TokenPlan::build(&p, &cfg, 128, N).unwrap();
        let meta = p
            .sub_models()
            .iter()
            .map(|s| LevelMeta {
                param_bytes: s.param_bytes,
                output_bytes_per_sample: s.output_bytes_per_sample,
                input_bytes_per_sample: s.input_bytes_per_sample,
                comm_intensive: s.comm_intensive,
            })
            .collect();
        (plan, meta)
    }

    fn server(cfg_mod: impl FnOnce(FelaConfig) -> FelaConfig) -> TokenServer {
        let (plan, meta) = meta_from_vgg();
        let cfg = cfg_mod(FelaConfig::new(3).with_weights(vec![1, 2, 4]));
        TokenServer::new(plan, cfg, meta, N, 100)
    }

    fn t(us: u64) -> SimTime {
        SimTime::from_nanos(us * 1000)
    }

    /// White-box STB surgery must go through `stb_push`/`stb_remove` so the
    /// distribution indices stay in sync with the queues.
    fn push_token(ts: &mut TokenServer, bucket: usize, level: usize, id: TokenId) {
        ts.stb_push(bucket, level, id).unwrap();
    }

    fn drain_level(ts: &mut TokenServer, bucket: usize, level: usize) -> Vec<TokenId> {
        let ids: Vec<TokenId> = ts.stbs[bucket][level].iter().copied().collect();
        for &id in &ids {
            ts.stb_remove(bucket, level, id).unwrap();
        }
        ids
    }

    /// Runs synchronously until `target` iterations have fully completed: every
    /// granted token completes immediately; emitted syncs finish immediately.
    /// Granted-but-unreported tokens are always drained before returning, so the
    /// helper can be called repeatedly. Returns emitted sync specs.
    fn drain_until(ts: &mut TokenServer, clock: &mut u64, target: u64) -> Vec<SyncSpec> {
        let mut all_syncs = Vec::new();
        let mut active: VecDeque<(usize, Grant)> = VecDeque::new();
        loop {
            let done = ts.completed_iterations() >= target;
            if done && active.is_empty() {
                return all_syncs;
            }
            if active.is_empty() {
                // Kick every worker once; at least one grant must emerge.
                for w in 0..N {
                    *clock += 500;
                    if let Some(g) = ts.request(w, t(*clock)).unwrap() {
                        active.push_back((w, g));
                    }
                }
                assert!(!active.is_empty(), "drain stalled with no grantable work");
                continue;
            }
            let (w, g) = active.pop_front().expect("non-empty");
            *clock += 500;
            let syncs = ts.report(w, g.token.id).unwrap();
            for s in &syncs {
                ts.sync_finished(s.level, s.iteration).unwrap();
            }
            all_syncs.extend(syncs);
            if ts.completed_iterations() < target {
                if let Some(g2) = ts.request(w, t(*clock)).unwrap() {
                    active.push_back((w, g2));
                }
                while let Some((w2, g2)) = ts.pop_ready_grant(t(*clock)).unwrap() {
                    active.push_back((w2, g2));
                }
            }
        }
    }

    #[test]
    fn roots_are_spread_across_stbs() {
        let ts = server(|c| c);
        for w in 0..N {
            assert_eq!(ts.stbs[w][0].len(), 1, "worker {w} STB");
        }
        assert_eq!(ts.released_root_iterations(), 1);
    }

    #[test]
    fn own_stb_grant_is_local_and_conflict_free() {
        let mut ts = server(|c| c);
        let g = ts.request(3, t(0)).unwrap().expect("token available");
        assert_eq!(g.token.level, 0);
        assert_eq!(g.token.sample_owner, Some(3));
        assert!(g.fetches.is_empty(), "own shard → no sample fetch");
        assert!(!g.conflict);
        assert_eq!(ts.stats().local_grants, 1);
    }

    #[test]
    fn generation_follows_figure3_ratios() {
        let mut ts = server(|c| c);
        let g0 = ts.request(0, t(0)).unwrap().unwrap();
        let g1 = ts.request(1, t(1)).unwrap().unwrap();
        assert!(ts.report(0, g0.token.id).unwrap().is_empty());
        let lvl1_before: usize = ts.stbs.iter().map(|s| s[1].len()).sum();
        assert_eq!(lvl1_before, 0);
        ts.report(1, g1.token.id).unwrap();
        let lvl1_after: usize = ts.stbs.iter().map(|s| s[1].len()).sum();
        assert_eq!(lvl1_after, 1, "2 T-1 completions generate 1 T-2 token");
        let id = ts
            .stbs
            .iter()
            .flat_map(|s| s[1].iter())
            .next()
            .copied()
            .unwrap();
        assert_eq!(ts.tokens[&id].deps, vec![g0.token.id, g1.token.id]);
        assert_eq!(ts.stbs[1][1].len(), 1, "token placed in the reporter's STB");
    }

    #[test]
    fn ads_prefers_highest_level() {
        let mut ts = server(|c| c);
        let g0 = ts.request(0, t(0)).unwrap().unwrap();
        ts.report(0, g0.token.id).unwrap();
        let g1 = ts.request(0, t(10_000)).unwrap().unwrap(); // steals from worker 1's STB
        assert_eq!(g1.token.sample_owner, Some(1));
        ts.report(0, g1.token.id).unwrap();
        let g2 = ts.request(0, t(20_000)).unwrap().unwrap();
        assert_eq!(g2.token.level, 1, "ADS grants the deeper token first");
        assert!(g2.fetches.is_empty(), "reporter holds both deps");
    }

    #[test]
    fn ads_off_prefers_lowest_level() {
        let mut ts = server(|c| c.with_ads(false).with_hf(false));
        let g0 = ts.request(0, t(0)).unwrap().unwrap();
        ts.report(0, g0.token.id).unwrap();
        let g1 = ts.request(0, t(10_000)).unwrap().unwrap();
        ts.report(0, g1.token.id).unwrap();
        let g2 = ts.request(0, t(20_000)).unwrap().unwrap();
        assert_eq!(g2.token.level, 0, "ADS-off picks remaining T-1 first");
    }

    /// White-box construction of the §III-D Principle-2 example: two same-level
    /// tokens in one bucket with different/equal locality towards the requester.
    #[test]
    fn principle2_locality_and_tie_break() {
        let mut ts = server(|c| c);
        let mk = |id: u64, level: usize, deps: Vec<TokenId>| Token {
            id: TokenId(id),
            level,
            iteration: 0,
            seq: 0,
            batch: 32,
            deps,
            sample_owner: if level == 0 { Some(0) } else { None },
        };
        for id in [20u64, 21, 22, 23] {
            ts.tokens.insert(TokenId(id), mk(id, 0, vec![]));
        }
        ts.holder.insert(TokenId(20), 0);
        ts.holder.insert(TokenId(21), 0);
        ts.holder.insert(TokenId(22), 4);
        ts.holder.insert(TokenId(23), 4);
        let t9 = mk(29, 1, vec![TokenId(20), TokenId(21)]);
        let t10 = mk(30, 1, vec![TokenId(22), TokenId(23)]);
        ts.tokens.insert(TokenId(29), t9);
        ts.tokens.insert(TokenId(30), t10);
        drain_level(&mut ts, 0, 0);
        push_token(&mut ts, 0, 1, TokenId(30)); // deliberately out of id order
        push_token(&mut ts, 0, 1, TokenId(29));
        assert_eq!(ts.locality_score(0, TokenId(29)).unwrap(), 1.0);
        assert_eq!(ts.locality_score(0, TokenId(30)).unwrap(), 0.0);
        let g = ts.request(0, t(0)).unwrap().unwrap();
        assert_eq!(g.token.id, TokenId(29));
        assert!(g.fetches.is_empty(), "all deps local");
        for w in 0..N {
            drain_level(&mut ts, w, 0);
        }
        let g3 = ts.request(4, t(2_000_000)).unwrap().unwrap();
        assert_eq!(g3.token.id, TokenId(30), "score 1 beats score 0");
        assert!(g3.fetches.is_empty());
        push_token(&mut ts, 0, 1, TokenId(29));
        push_token(&mut ts, 0, 1, TokenId(30));
        let g4 = ts.request(6, t(3_000_000)).unwrap().unwrap();
        assert_eq!(
            g4.token.id,
            TokenId(29),
            "equal scores tie-break to the smallest token id"
        );
        assert_eq!(g4.fetches.len(), 2);
        assert!(
            g4.fetches.iter().all(|&(h, _)| h == 0),
            "deps held by worker 0"
        );
    }

    #[test]
    fn helper_steals_when_own_stb_empty() {
        let mut ts = server(|c| c);
        let g = ts.request(0, t(0)).unwrap().unwrap();
        ts.report(0, g.token.id).unwrap();
        let g2 = ts.request(0, t(1_000_000)).unwrap().unwrap();
        assert_eq!(g2.token.sample_owner, Some(1));
        assert_eq!(ts.stats().steals, 1);
        assert_eq!(g2.fetches.len(), 1);
        assert_eq!(g2.fetches[0].0, 1);
        assert!(g2.fetches[0].1 > 0, "stolen roots fetch their samples");
    }

    #[test]
    fn helper_prioritizes_least_helped_then_slowest_stb() {
        let mut ts = server(|c| c);
        let mut all_roots: Vec<TokenId> = Vec::new();
        for w in 0..N {
            all_roots.extend(drain_level(&mut ts, w, 0));
        }
        for &id in &[all_roots[0], all_roots[1]] {
            push_token(&mut ts, 1, 0, id);
        }
        push_token(&mut ts, 2, 0, all_roots[2]);
        for &id in &[all_roots[3], all_roots[4], all_roots[5]] {
            push_token(&mut ts, 3, 0, id);
        }
        ts.helpers[1] = 1;
        let g = ts.request(0, t(0)).unwrap().unwrap();
        assert!(ts.stbs[3][0].len() == 2, "token stolen from STB 3: {g:?}");
        let g2 = ts.request(4, t(1_000_000)).unwrap().unwrap();
        assert!(ts.stbs[2][0].is_empty(), "second steal hits STB 2: {g2:?}");
    }

    #[test]
    fn conflicts_detected_within_lock_window() {
        let mut ts = server(|c| c.with_hf(false));
        let g1 = ts.request(0, t(0)).unwrap().unwrap();
        assert!(!g1.conflict, "first grant cannot conflict");
        let g2 = ts.request(1, t(10)).unwrap().unwrap();
        assert!(g2.conflict);
        let g3 = ts.request(2, t(10_000)).unwrap().unwrap();
        assert!(!g3.conflict);
        assert_eq!(ts.stats().conflicts, 1);
    }

    #[test]
    fn hf_owners_never_conflict() {
        let mut ts = server(|c| c);
        let g1 = ts.request(0, t(0)).unwrap().unwrap();
        let g2 = ts.request(1, t(1)).unwrap().unwrap();
        assert!(!g1.conflict && !g2.conflict);
        assert_eq!(ts.stats().conflicts, 0);
    }

    #[test]
    fn global_bucket_ignores_sample_affinity() {
        let mut ts = server(|c| c.with_hf(false));
        let g = ts.request(5, t(0)).unwrap().unwrap();
        assert_eq!(g.token.sample_owner, Some(0));
        assert_eq!(g.fetches.len(), 1);
        assert_eq!(g.fetches[0].0, 0);
    }

    #[test]
    fn starved_request_queues_and_pops_later() {
        let mut ts = server(|c| c);
        let mut granted = Vec::new();
        for w in 0..N {
            granted.push(ts.request(w, t(w as u64 * 1000)).unwrap().unwrap());
        }
        assert!(ts.request(0, t(9_000)).unwrap().is_none());
        assert_eq!(ts.stats().starved_requests, 1);
        assert!(ts.pop_ready_grant(t(10_000)).unwrap().is_none());
        ts.report(0, granted[0].token.id).unwrap();
        ts.report(1, granted[1].token.id).unwrap();
        let (w, g) = ts
            .pop_ready_grant(t(11_000))
            .unwrap()
            .expect("worker served");
        assert_eq!(w, 0);
        assert_eq!(g.token.level, 1);
    }

    #[test]
    fn sync_emitted_when_level_completes() {
        let mut ts = server(|c| c);
        let mut syncs = Vec::new();
        for w in 0..N {
            let g = ts.request(w, t(w as u64)).unwrap().unwrap();
            syncs.extend(ts.report(w, g.token.id).unwrap());
        }
        assert_eq!(syncs.len(), 1);
        assert_eq!(syncs[0].level, 0);
        assert_eq!(syncs[0].iteration, 0);
        assert_eq!(syncs[0].participants.len(), N);
        assert!(syncs[0].bytes > 0);
        assert!(!syncs[0].is_degenerate());
        assert_eq!(ts.completed_iterations(), 0);
    }

    #[test]
    fn level0_sync_releases_next_iterations_roots() {
        let mut ts = server(|c| c);
        let mut grants = Vec::new();
        for w in 0..N {
            grants.push(ts.request(w, t(w as u64)).unwrap().unwrap());
        }
        let mut syncs = Vec::new();
        for (w, g) in grants.iter().enumerate() {
            syncs.extend(ts.report(w, g.token.id).unwrap());
        }
        assert_eq!(ts.released_root_iterations(), 1, "gated until sync");
        ts.sync_finished(0, 0).unwrap();
        assert_eq!(
            ts.released_root_iterations(),
            2,
            "iteration 1 roots flow while deeper levels of iteration 0 still train"
        );
        // The new roots are distributable right away (worker 2's STB holds only
        // its fresh root; odd-numbered workers also hold generated T-2 tokens,
        // which ADS would prefer).
        let g = ts.request(2, t(1_000_000)).unwrap().unwrap();
        assert_eq!((g.token.level, g.token.iteration), (0, 1));
    }

    #[test]
    fn deeper_levels_gate_on_their_own_sync() {
        let mut ts = server(|c| c);
        let mut clock = 0u64;
        // Drain iteration 0 fully (all syncs finish instantly in the helper).
        drain_until(&mut ts, &mut clock, 1);
        assert_eq!(ts.completed_iterations(), 1);
        // Iteration 1 roots already released by the level-0 sync.
        assert!(ts.released_root_iterations() >= 2);
    }

    #[test]
    fn run_completes_after_max_iterations() {
        let (plan, meta) = meta_from_vgg();
        let cfg = FelaConfig::new(3).with_weights(vec![1, 2, 4]);
        let mut ts = TokenServer::new(plan, cfg, meta, N, 3);
        let mut clock = 0u64;
        for k in 1..=3u64 {
            drain_until(&mut ts, &mut clock, k);
            assert_eq!(ts.completed_iterations(), k);
        }
        assert!(ts.run_complete());
        // No further tokens exist.
        assert!(ts
            .request(0, t(clock * 1000 + 1_000_000))
            .unwrap()
            .is_none());
        // Token conservation across the run.
        let total: u64 = ts.trained_per_worker().iter().sum();
        assert_eq!(total, ts.plan().tokens_per_iteration() * 3);
    }

    #[test]
    fn ctd_restricts_cond_level_to_subset() {
        let mut ts = server(|c| c.with_ctd(2));
        let mut inflight: VecDeque<Grant> = VecDeque::new();
        for w in 0..N {
            inflight.push_back(ts.request(w, t(w as u64)).unwrap().unwrap());
        }
        let mut clock = 1000u64;
        while let Some(g) = inflight.pop_front() {
            for s in ts.report(7, g.token.id).unwrap() {
                ts.sync_finished(s.level, s.iteration).unwrap();
            }
            clock += 1000;
            if let Some(g2) = ts.request(7, t(clock)).unwrap() {
                assert_ne!(g2.token.level, 2, "non-member granted conditional token");
                // Stop chasing into iteration 1 — we only care about iteration 0.
                if g2.token.iteration == 0 {
                    inflight.push_back(g2);
                }
            }
        }
        let cond_tokens: usize = (0..2).map(|w| ts.stbs[w][2].len()).sum();
        let cond_elsewhere: usize = (2..N).map(|w| ts.stbs[w][2].len()).sum();
        assert_eq!(cond_elsewhere, 0);
        assert!(cond_tokens > 0);
        let g = ts.request(0, t(clock + 1000)).unwrap().unwrap();
        assert_eq!(
            g.token.level, 2,
            "subset member takes conditional tokens first"
        );
    }

    #[test]
    fn ctd_sync_participants_are_subset() {
        let mut ts = server(|c| c.with_ctd(2));
        let mut clock = 0u64;
        let syncs = drain_until(&mut ts, &mut clock, 1);
        let fc_sync = syncs.iter().find(|s| s.level == 2).expect("FC sync");
        assert_eq!(
            fc_sync.participants,
            vec![0, 1],
            "CTD shrinks the sync group"
        );
        let conv_sync = syncs.iter().find(|s| s.level == 0).unwrap();
        assert_eq!(conv_sync.participants.len(), N);
        assert_eq!(ts.completed_iterations(), 1);
    }

    #[test]
    fn barrier_mode_holds_next_iteration_until_full_completion() {
        let (plan, meta) = meta_from_vgg();
        let cfg = FelaConfig::new(3)
            .with_weights(vec![1, 2, 4])
            .with_pipelining(false);
        let mut ts = TokenServer::new(plan, cfg, meta, N, 10);
        // Complete all 8 root tokens and finish the level-0 sync.
        let mut grants = Vec::new();
        for w in 0..N {
            grants.push(ts.request(w, t(w as u64)).unwrap().unwrap());
        }
        let mut syncs = Vec::new();
        for (w, g) in grants.iter().enumerate() {
            syncs.extend(ts.report(w, g.token.id).unwrap());
        }
        for sp in &syncs {
            ts.sync_finished(sp.level, sp.iteration).unwrap();
        }
        // Pipelining would release iteration 1 here; the barrier must not.
        assert_eq!(
            ts.released_root_iterations(),
            1,
            "barrier mode gates iteration 1 on the whole of iteration 0"
        );
        let mut clock = 1_000_000u64;
        drain_until(&mut ts, &mut clock, 1);
        assert!(
            ts.released_root_iterations() >= 2,
            "released after the barrier"
        );
    }

    #[test]
    fn staleness_releases_iterations_ahead() {
        let (plan, meta) = meta_from_vgg();
        let cfg = FelaConfig::new(3)
            .with_weights(vec![1, 2, 4])
            .with_staleness(2);
        let ts = TokenServer::new(plan, cfg, meta, N, 10);
        // With staleness 2, iterations 0..=2 are released before any sync.
        assert_eq!(ts.released_root_iterations(), 3);
        // Every worker's STB holds 3 root tokens (one per released iteration).
        for w in 0..N {
            assert_eq!(ts.stbs[w][0].len(), 3, "worker {w}");
        }
    }

    #[test]
    fn staleness_zero_is_bsp() {
        let (plan, meta) = meta_from_vgg();
        let cfg = FelaConfig::new(3)
            .with_weights(vec![1, 2, 4])
            .with_staleness(0);
        let ts = TokenServer::new(plan, cfg, meta, N, 10);
        assert_eq!(ts.released_root_iterations(), 1);
    }

    #[test]
    fn out_of_order_syncs_reconcile() {
        let (plan, meta) = meta_from_vgg();
        let cfg = FelaConfig::new(3)
            .with_weights(vec![1, 2, 4])
            .with_staleness(1);
        let mut ts = TokenServer::new(plan, cfg, meta, N, 10);
        // Drive two iterations' worth of work; syncs may interleave. The helper
        // finishes syncs immediately, so just check the contiguity accounting by
        // feeding sync_finished out of order on level 0 state directly.
        ts.levels[0].synced_out_of_order.clear();
        ts.sync_finished(0, 1).unwrap(); // iteration 1 first
        assert_eq!(ts.levels[0].synced_upto, 0, "gap at 0 blocks advancement");
        ts.sync_finished(0, 0).unwrap();
        assert_eq!(ts.levels[0].synced_upto, 2, "both reconcile once 0 lands");
    }

    #[test]
    fn ctd_subset_one_sync_is_degenerate() {
        let mut ts = server(|c| c.with_ctd(1));
        let mut clock = 0u64;
        let syncs = drain_until(&mut ts, &mut clock, 1);
        let fc_syncs: Vec<_> = syncs.iter().filter(|s| s.level == 2).collect();
        assert!(
            !fc_syncs.is_empty(),
            "the update commit is still observable"
        );
        assert!(
            fc_syncs.iter().all(|s| s.is_degenerate()),
            "single-member subset syncs degenerately (for free)"
        );
    }

    #[test]
    fn duplicate_report_is_typed_error() {
        let mut ts = server(|c| c);
        let g = ts.request(0, t(0)).unwrap().unwrap();
        ts.report(0, g.token.id).unwrap();
        let err = ts.report(0, g.token.id).unwrap_err();
        assert_eq!(err, ScheduleError::DuplicateReport { token: g.token.id });
    }

    #[test]
    fn unknown_token_report_is_typed_error() {
        let mut ts = server(|c| c);
        let err = ts.report(0, TokenId(999)).unwrap_err();
        assert_eq!(
            err,
            ScheduleError::UnknownToken {
                token: TokenId(999)
            }
        );
    }

    #[test]
    fn invalid_worker_is_typed_error() {
        let mut ts = server(|c| c);
        let err = ts.request(N + 3, t(0)).unwrap_err();
        assert!(matches!(err, ScheduleError::InvalidWorker { .. }), "{err}");
    }

    #[test]
    fn duplicate_sync_is_typed_error() {
        let mut ts = server(|c| c);
        let mut grants = Vec::new();
        for w in 0..N {
            grants.push(ts.request(w, t(w as u64)).unwrap().unwrap());
        }
        for (w, g) in grants.iter().enumerate() {
            ts.report(w, g.token.id).unwrap();
        }
        ts.sync_finished(0, 0).unwrap();
        let err = ts.sync_finished(0, 0).unwrap_err();
        assert_eq!(
            err,
            ScheduleError::DuplicateSync {
                level: 0,
                iteration: 0
            }
        );
        let err = ts.sync_finished(9, 0).unwrap_err();
        assert!(
            matches!(err, ScheduleError::LevelOutOfRange { .. }),
            "{err}"
        );
    }

    #[test]
    fn cloned_server_replays_identically() {
        let mut a = server(|c| c);
        let g = a.request(0, t(0)).unwrap().unwrap();
        a.report(0, g.token.id).unwrap();
        let mut b = a.clone();
        assert_eq!(a.snapshot(), b.snapshot());
        let ga = a.request(1, t(1000)).unwrap().unwrap();
        let gb = b.request(1, t(1000)).unwrap().unwrap();
        assert_eq!(ga.token.id, gb.token.id);
        assert_eq!(a.snapshot(), b.snapshot());
    }

    #[test]
    fn snapshot_reflects_progress() {
        let mut ts = server(|c| c);
        let before = ts.snapshot();
        let g = ts.request(0, t(0)).unwrap().unwrap();
        let after_grant = ts.snapshot();
        assert_ne!(before, after_grant, "grant drains an STB");
        ts.report(0, g.token.id).unwrap();
        let after_report = ts.snapshot();
        assert_eq!(after_report.holder, vec![(g.token.id.0, 0)]);
    }
}
