//! The sharded control plane: a thin [`Coordinator`] over per-level-range
//! [`TokenShard`]s, plus the [`ControlPlane`] seam the runtime holds.
//!
//! ## Why sharding, and why it stays byte-identical
//!
//! The monolithic [`TokenServer`](crate::TokenServer) makes every scheduling
//! decision in one sequential loop, and its steal path (`pick_bucket`) scans
//! every bucket's every level — O(workers × levels) per starved request,
//! which is the control-plane wall at thousand-worker scale. The coordinator
//! splits the levels into contiguous ranges, one [`TokenShard`] per range,
//! and keeps only the *cross-shard* state: the token table and Info Mapping,
//! liveness/quarantine, the lease ledger (token-block delegation), helper
//! counts, the waiting queue, and two per-bucket occupancy indices that
//! replace the steal scan with an O(log workers) ordered-set lookup.
//!
//! The decision *procedures* are copied from the oracle unchanged — same
//! level preference orders, same Principle-2 picks, same tie-breaks, same
//! lease/recovery transitions — so for any input sequence the coordinator
//! emits bit-identical grants, traces and [`ServerSnapshot`]s. That claim is
//! not aspirational: the shard-conformance suite property-tests sharded vs.
//! oracle under random churn (including crash/restart faults) to `to_bits()`
//! equality, the same way `IncrementalMaxMin` was proved against
//! `max_min_rates`.
//!
//! ## The occupancy indices
//!
//! `pick_bucket`'s steal order is `(fewest helpers, most remaining tokens,
//! smallest bucket id)`, where "remaining" is the bucket's *total* queued
//! tokens across all levels regardless of the requester's CTD class — only
//! *eligibility* differs by class (a non-member needs a non-conditional token
//! to exist). The coordinator therefore keeps two counters per bucket —
//! `queued_all` and `queued_noncond` — and two mirror `BTreeSet`s keyed
//! `(helpers, !queued_all, bucket)`: `steal_any` holds buckets with any
//! queued token, `steal_noncond` those with a non-conditional one. A steal is
//! `first()` on the class's set; both sets are maintained on every push,
//! remove and helper-count change.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use fela_sim::SimTime;

use crate::config::FelaConfig;
use crate::error::ScheduleError;
use crate::lease::{ExpiredLease, LeaseInfo, LeaseTable};
use crate::oplog::{self, CoordOp, OpKind, OpOutcome};
use crate::plan::TokenPlan;
use crate::server::{Grant, LevelMeta, ServerStats, SyncSpec, TokenServer};
use crate::shard::{level_ranges, score_key, LevelState, TokenShard};
use crate::snapshot::ServerSnapshot;
use crate::token::{Token, TokenId};
use crate::wal::WalWriter;

/// The sharded Token Server: cross-shard coordination over per-level-range
/// [`TokenShard`]s. Public API mirrors [`TokenServer`] exactly; schedules are
/// byte-identical to the monolithic oracle (see the module docs).
#[derive(Clone)]
pub struct Coordinator {
    plan: TokenPlan,
    cfg: FelaConfig,
    meta: Vec<LevelMeta>,
    n_workers: usize,
    max_iterations: u64,
    /// Iterations whose root tokens have been released (0..count).
    released_roots: u64,
    /// Global token-id allocator — ids must match the oracle's bit for bit,
    /// so generation is never delegated to a shard.
    next_token_id: u64,
    /// All generated tokens (cross-shard: dependencies span level boundaries).
    tokens: BTreeMap<TokenId, Token>,
    /// Completed-token outputs: token → holding worker (Info Mapping).
    holder: BTreeMap<TokenId, usize>,
    /// The shards, each owning a contiguous level range.
    shards: Vec<TokenShard>,
    /// Level → owning shard index.
    shard_of: Vec<usize>,
    /// Static per-level CTD flag (`ctd` on and the level is comm-intensive).
    cond_level: Vec<bool>,
    /// Static level preference order for CTD-subset members (and everyone
    /// when CTD is off): conditional levels ascending, then the rest by ADS.
    member_order: Vec<usize>,
    /// Static level preference order for non-members: non-conditional levels
    /// by ADS only.
    nonmember_order: Vec<usize>,
    /// Per-bucket queued tokens across all levels (the steal "remaining" key).
    queued_all: Vec<usize>,
    /// Per-bucket queued tokens at non-conditional levels (non-member
    /// eligibility).
    queued_noncond: Vec<usize>,
    /// Steal index for CTD members: `(helpers, !queued_all, bucket)` for every
    /// bucket with `queued_all > 0`. `first()` is the steal pick.
    steal_any: BTreeSet<(u64, u64, usize)>,
    /// Steal index for non-members: same key, membership gated on
    /// `queued_noncond > 0`.
    steal_noncond: BTreeSet<(u64, u64, usize)>,
    /// Last grant instant per bucket, for lock-conflict detection.
    last_grant_at: Vec<Option<SimTime>>,
    /// Helpers currently assisting each STB (decayed on root release).
    helpers: Vec<u64>,
    waiting: VecDeque<usize>,
    stats: ServerStats,
    trained_per_worker: Vec<u64>,
    alive: Vec<bool>,
    quarantined: Vec<bool>,
    /// Token-block delegation ledger: active leases, revocation counts,
    /// expiry history.
    leases: LeaseTable,
    /// Where each worker's durable data currently lives (see the oracle).
    data_home: Vec<usize>,
    /// Tokens with no eligible bucket (fully dark cluster), in revocation
    /// order.
    parked: Vec<(usize, TokenId)>,
}

impl Coordinator {
    /// Creates a sharded control plane and releases iteration 0's root tokens.
    ///
    /// # Panics
    /// Panics if `meta` length differs from the plan's level count or the
    /// config is invalid for the cluster size (including `shards` outside
    /// `1..=levels`).
    pub fn new(
        plan: TokenPlan,
        cfg: FelaConfig,
        meta: Vec<LevelMeta>,
        n_workers: usize,
        max_iterations: u64,
    ) -> Self {
        let mut c = Self::empty(plan, cfg, meta, n_workers, max_iterations);
        c.release_due_roots();
        c
    }

    /// An initialised coordinator with no tokens released (shared by `new`
    /// and `restore`).
    fn empty(
        plan: TokenPlan,
        cfg: FelaConfig,
        meta: Vec<LevelMeta>,
        n_workers: usize,
        max_iterations: u64,
    ) -> Self {
        assert_eq!(
            meta.len(),
            plan.num_levels(),
            "level metadata must match plan levels"
        );
        assert!(max_iterations > 0, "need at least one iteration");
        cfg.validate(n_workers);
        let m = plan.num_levels();
        let buckets = if cfg.hf { n_workers } else { 1 };
        let use_index = cfg.ads && cfg.hf;
        let mut shard_of = vec![0usize; m];
        let shards: Vec<TokenShard> = level_ranges(m, cfg.shards.min(m))
            .into_iter()
            .enumerate()
            .map(|(s, (lo, n))| {
                for entry in shard_of.iter_mut().skip(lo).take(n) {
                    *entry = s;
                }
                TokenShard::new(lo, n, buckets, n_workers, use_index)
            })
            .collect();
        let cond_level: Vec<bool> = (0..m)
            .map(|l| cfg.ctd.is_some() && meta[l].comm_intensive)
            .collect();
        // Level preference orders, fixed at construction (the oracle rebuilds
        // them per pick; they depend only on static config): members see
        // conditional levels first (ascending), then the rest by ADS;
        // non-members skip conditional levels entirely.
        let mut member_order: Vec<usize> = Vec::with_capacity(m);
        if cfg.ctd.is_some() {
            member_order.extend((0..m).filter(|&l| cond_level[l]));
        }
        let mut rest: Vec<usize> = (0..m).filter(|l| !member_order.contains(l)).collect();
        if cfg.ads {
            rest.sort_unstable_by(|a, b| b.cmp(a)); // highest level first
        } else {
            rest.sort_unstable(); // ablation: lowest level first
        }
        member_order.extend(rest);
        let mut nonmember_order: Vec<usize> = (0..m).filter(|&l| !cond_level[l]).collect();
        if cfg.ads {
            nonmember_order.sort_unstable_by(|a, b| b.cmp(a));
        } else {
            nonmember_order.sort_unstable();
        }
        Coordinator {
            plan,
            cfg,
            meta,
            n_workers,
            max_iterations,
            released_roots: 0,
            next_token_id: 0,
            tokens: BTreeMap::new(),
            holder: BTreeMap::new(),
            shards,
            shard_of,
            cond_level,
            member_order,
            nonmember_order,
            queued_all: vec![0; buckets],
            queued_noncond: vec![0; buckets],
            steal_any: BTreeSet::new(),
            steal_noncond: BTreeSet::new(),
            last_grant_at: vec![None; buckets],
            helpers: vec![0; buckets],
            waiting: VecDeque::new(),
            stats: ServerStats::default(),
            trained_per_worker: vec![0; n_workers],
            alive: vec![true; n_workers],
            quarantined: vec![false; n_workers],
            leases: LeaseTable::new(n_workers),
            data_home: (0..n_workers).collect(),
            parked: Vec::new(),
        }
    }

    /// Restores a coordinator from a snapshot plus the token table it refers
    /// to. The result snapshots back bit-identically and continues exactly as
    /// a server that reached the snapshot live (timing-only state — conflict
    /// instants and counters — restarts empty, as documented on
    /// [`ServerSnapshot`]).
    pub fn restore(
        plan: TokenPlan,
        cfg: FelaConfig,
        meta: Vec<LevelMeta>,
        n_workers: usize,
        max_iterations: u64,
        tokens: BTreeMap<TokenId, Token>,
        snap: &ServerSnapshot,
    ) -> Result<Self, ScheduleError> {
        let mut c = Self::empty(plan, cfg, meta, n_workers, max_iterations);
        c.released_roots = snap.released_roots;
        c.next_token_id = snap.next_token_id;
        c.tokens = tokens;
        c.holder = snap.holder.iter().map(|&(t, w)| (TokenId(t), w)).collect();
        let m = c.plan.num_levels();
        for level in 0..m {
            let sh = c.shard_of[level];
            let st = c.shards[sh].state_mut(level);
            st.synced_upto = snap.synced_upto[level];
            st.synced_out_of_order = snap.synced_out_of_order[level].iter().copied().collect();
            st.completed = snap.completed[level].iter().copied().collect();
            st.gen_buffer = snap.gen_buffers[level]
                .iter()
                .map(|(k, v)| (*k, v.iter().map(|&i| TokenId(i)).collect()))
                .collect();
            st.pending = snap.pending[level]
                .iter()
                .map(|&(id, b)| (TokenId(id), b))
                .collect();
        }
        // `generated` is derivable: level ≥ 1 tokens are created only by the
        // generator and never dropped from the token table.
        let gen_pairs: Vec<(usize, u64)> = c
            .tokens
            .values()
            .filter(|t| t.level >= 1)
            .map(|t| (t.level, t.iteration))
            .collect();
        for (level, iteration) in gen_pairs {
            let sh = c.shard_of[level];
            *c.shards[sh]
                .state_mut(level)
                .generated
                .entry(iteration)
                .or_insert(0) += 1;
        }
        // Queues repopulate in snapshot order; scores recompute against the
        // restored Info Mapping, which equals the insertion-time index (dep
        // holders never change except re-homing, which rebuilds the index).
        for (bucket, rows) in snap.stbs.iter().enumerate() {
            for (level, row) in rows.iter().enumerate() {
                for &id in row {
                    c.stb_push(bucket, level, TokenId(id))?;
                }
            }
        }
        c.waiting = snap.waiting.iter().copied().collect();
        c.alive = snap.alive.clone();
        c.quarantined = snap.quarantined.clone();
        c.leases = LeaseTable::restore(&snap.leases, &snap.attempts, &snap.expiry_counts);
        c.data_home = snap.data_home.clone();
        c.parked = snap
            .parked
            .iter()
            .map(|&(level, id)| (level, TokenId(id)))
            .collect();
        // Helper counts arrive last: rebuild the steal indices with the final
        // (helpers, occupancy) keys.
        c.helpers = snap.helpers.clone();
        c.steal_any.clear();
        c.steal_noncond.clear();
        for b in 0..c.queued_all.len() {
            c.index_bucket(b);
        }
        Ok(c)
    }

    /// Run configuration (read access).
    pub fn config(&self) -> &FelaConfig {
        &self.cfg
    }

    /// The token plan (read access).
    pub fn plan(&self) -> &TokenPlan {
        &self.plan
    }

    /// Cluster size the coordinator schedules for.
    pub fn n_workers(&self) -> usize {
        self.n_workers
    }

    /// Total iterations this run trains.
    pub fn max_iterations(&self) -> u64 {
        self.max_iterations
    }

    /// Number of shards the control plane runs.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shards (read access, for introspection and benches).
    pub fn shards(&self) -> &[TokenShard] {
        &self.shards
    }

    /// A generated token by id (introspection for checkers).
    pub fn token(&self, id: TokenId) -> Option<&Token> {
        self.tokens.get(&id)
    }

    /// The full token table (pair with [`Self::snapshot`] for restore).
    pub fn tokens(&self) -> &BTreeMap<TokenId, Token> {
        &self.tokens
    }

    /// Accumulated counters.
    pub fn stats(&self) -> &ServerStats {
        &self.stats
    }

    /// Tokens trained per worker so far.
    pub fn trained_per_worker(&self) -> &[u64] {
        &self.trained_per_worker
    }

    /// Iterations whose root tokens have been released.
    pub fn released_root_iterations(&self) -> u64 {
        self.released_roots
    }

    /// Iterations fully finished: every level's sync for that iteration
    /// drained.
    pub fn completed_iterations(&self) -> u64 {
        (0..self.plan.num_levels())
            .map(|l| self.level_state(l).synced_upto)
            .min()
            .unwrap_or(0)
    }

    /// True once all `max_iterations` iterations are fully synced.
    pub fn run_complete(&self) -> bool {
        self.completed_iterations() == self.max_iterations
    }

    /// Whether `worker` belongs to the CTD subset `S` (with the lapse rule —
    /// see the oracle).
    pub fn in_ctd_subset(&self, worker: usize) -> bool {
        match self.cfg.ctd {
            Some(ctd) => worker < ctd.subset_size || !self.ctd_subset_alive(),
            None => true,
        }
    }

    fn ctd_subset_alive(&self) -> bool {
        match self.cfg.ctd {
            Some(ctd) => (0..ctd.subset_size).any(|w| self.eligible(w)),
            None => true,
        }
    }

    fn ctd_participants(&self, level: usize) -> Result<Vec<usize>, ScheduleError> {
        let ctd = self
            .cfg
            .ctd
            .ok_or(ScheduleError::CtdConfigMissing { level })?;
        let members: Vec<usize> = (0..ctd.subset_size).filter(|&w| self.eligible(w)).collect();
        if !members.is_empty() {
            return Ok(members);
        }
        let alive: Vec<usize> = (0..self.n_workers).filter(|&w| self.eligible(w)).collect();
        if alive.is_empty() {
            return Err(ScheduleError::NoAliveWorkers);
        }
        Ok(alive)
    }

    /// Whether lease-based recovery is enabled.
    pub fn recovery_on(&self) -> bool {
        self.cfg.recovery.is_some()
    }

    /// Whether the coordinator considers `worker` alive.
    pub fn is_alive(&self, worker: usize) -> bool {
        self.alive[worker]
    }

    /// Whether `worker` is quarantined (alive but barred from grants).
    pub fn is_quarantined(&self, worker: usize) -> bool {
        self.quarantined[worker]
    }

    fn eligible(&self, worker: usize) -> bool {
        self.alive[worker] && !self.quarantined[worker]
    }

    /// The active lease on `token`, if any (recovery mode only).
    pub fn lease_of(&self, token: TokenId) -> Option<LeaseInfo> {
        self.leases.lease_of(token)
    }

    /// How many times `token`'s lease has been revoked so far.
    pub fn attempt_of(&self, token: TokenId) -> u64 {
        self.leases.attempt_of(token)
    }

    /// Where `worker`'s durable data currently lives.
    pub fn data_home_of(&self, worker: usize) -> usize {
        self.data_home[worker]
    }

    fn fallback_worker(&self) -> Result<usize, ScheduleError> {
        (0..self.n_workers)
            .find(|&w| self.eligible(w))
            .ok_or(ScheduleError::NoAliveWorkers)
    }

    fn check_worker(&self, worker: usize) -> Result<(), ScheduleError> {
        if worker >= self.n_workers {
            return Err(ScheduleError::InvalidWorker {
                worker,
                n_workers: self.n_workers,
            });
        }
        Ok(())
    }

    fn level_state(&self, level: usize) -> &LevelState {
        self.shards[self.shard_of[level]].state(level)
    }

    /// Equation 1: fraction of a token's dependencies whose outputs `worker`
    /// already holds.
    pub fn locality_score(&self, worker: usize, token: TokenId) -> Result<f64, ScheduleError> {
        let t = self
            .tokens
            .get(&token)
            .ok_or(ScheduleError::UnknownToken { token })?;
        if t.deps.is_empty() {
            return Ok(0.0);
        }
        let held = t
            .deps
            .iter()
            .filter(|d| self.holder.get(d) == Some(&worker))
            .count();
        Ok(held as f64 / t.deps.len() as f64)
    }

    // ---- occupancy / steal-index maintenance -------------------------------

    fn steal_key(&self, bucket: usize) -> (u64, u64, usize) {
        (
            self.helpers[bucket],
            u64::MAX - self.queued_all[bucket] as u64,
            bucket,
        )
    }

    /// Drops `bucket`'s current steal-index entries (call *before* mutating
    /// its helpers or queued counters).
    fn unindex_bucket(&mut self, bucket: usize) {
        let key = self.steal_key(bucket);
        if self.queued_all[bucket] > 0 {
            self.steal_any.remove(&key);
        }
        if self.queued_noncond[bucket] > 0 {
            self.steal_noncond.remove(&key);
        }
    }

    /// Re-inserts `bucket`'s steal-index entries from its current counters.
    fn index_bucket(&mut self, bucket: usize) {
        let key = self.steal_key(bucket);
        if self.queued_all[bucket] > 0 {
            self.steal_any.insert(key);
        }
        if self.queued_noncond[bucket] > 0 {
            self.steal_noncond.insert(key);
        }
    }

    fn set_helpers(&mut self, bucket: usize, value: u64) {
        self.unindex_bucket(bucket);
        self.helpers[bucket] = value;
        self.index_bucket(bucket);
    }

    /// Inserts a token into its level's shard and bumps the occupancy indices.
    fn stb_push(&mut self, bucket: usize, level: usize, id: TokenId) -> Result<(), ScheduleError> {
        let sh = self.shard_of[level];
        let token = self
            .tokens
            .get(&id)
            .ok_or(ScheduleError::UnknownToken { token: id })?;
        self.shards[sh].push(bucket, level, token, &self.holder);
        self.unindex_bucket(bucket);
        self.queued_all[bucket] += 1;
        if !self.cond_level[level] {
            self.queued_noncond[bucket] += 1;
        }
        self.index_bucket(bucket);
        Ok(())
    }

    /// [`Self::stb_push`] for root tokens (no score entries; infallible).
    fn stb_push_root(&mut self, bucket: usize, id: TokenId) {
        let sh = self.shard_of[0];
        self.shards[sh].push_root(bucket, 0, id);
        self.unindex_bucket(bucket);
        self.queued_all[bucket] += 1;
        if !self.cond_level[0] {
            self.queued_noncond[bucket] += 1;
        }
        self.index_bucket(bucket);
    }

    /// Removes a token from its level's shard and decays the occupancy
    /// indices.
    fn stb_remove(
        &mut self,
        bucket: usize,
        level: usize,
        id: TokenId,
    ) -> Result<(), ScheduleError> {
        let sh = self.shard_of[level];
        self.shards[sh].remove(bucket, level, id)?;
        self.unindex_bucket(bucket);
        self.queued_all[bucket] -= 1;
        if !self.cond_level[level] {
            self.queued_noncond[bucket] -= 1;
        }
        self.index_bucket(bucket);
        Ok(())
    }

    fn rebuild_score_index(&mut self) -> Result<(), ScheduleError> {
        for shard in &mut self.shards {
            shard.rebuild_scores(&self.tokens, &self.holder)?;
        }
        Ok(())
    }

    // ---- distribution ------------------------------------------------------

    /// A worker asks for a token at `now`. Identical contract to
    /// [`TokenServer::request`].
    pub fn request(&mut self, worker: usize, now: SimTime) -> Result<Option<Grant>, ScheduleError> {
        self.check_worker(worker)?;
        if !self.eligible(worker) {
            return Err(ScheduleError::WorkerUnavailable { worker });
        }
        match self.try_grant(worker, now)? {
            Some(grant) => Ok(Some(grant)),
            None => {
                self.stats.starved_requests += 1;
                if !self.waiting.contains(&worker) {
                    self.waiting.push_back(worker);
                }
                Ok(None)
            }
        }
    }

    /// Serves the longest-waiting worker that can now be granted. Call in a
    /// loop until `Ok(None)`.
    pub fn pop_ready_grant(
        &mut self,
        now: SimTime,
    ) -> Result<Option<(usize, Grant)>, ScheduleError> {
        for idx in 0..self.waiting.len() {
            let worker = self.waiting[idx];
            if let Some(grant) = self.try_grant(worker, now)? {
                self.waiting.remove(idx);
                return Ok(Some((worker, grant)));
            }
        }
        Ok(None)
    }

    /// Drains every currently servable waiting worker into `out`. Identical
    /// contract to [`TokenServer::drain_ready_grants`].
    pub fn drain_ready_grants(
        &mut self,
        now: SimTime,
        out: &mut Vec<(usize, Grant)>,
    ) -> Result<(), ScheduleError> {
        while let Some(pair) = self.pop_ready_grant(now)? {
            out.push(pair);
        }
        Ok(())
    }

    fn try_grant(&mut self, worker: usize, now: SimTime) -> Result<Option<Grant>, ScheduleError> {
        let Some((bucket, stolen)) = self.pick_bucket(worker) else {
            return Ok(None);
        };
        let Some((level, id)) = self.pick_token(bucket, worker) else {
            return Ok(None);
        };
        self.stb_remove(bucket, level, id)?;
        let contends = stolen || !self.cfg.hf;
        let mut conflict = false;
        if contends {
            if let Some(last) = self.last_grant_at[bucket] {
                if now.saturating_since(last) < self.cfg.lock_window {
                    conflict = true;
                    self.stats.conflicts += 1;
                }
            }
            self.last_grant_at[bucket] = Some(now);
        }
        if stolen {
            self.stats.steals += 1;
            self.set_helpers(bucket, self.helpers[bucket] + 1);
        } else {
            self.stats.local_grants += 1;
        }
        self.stats.grants += 1;
        let token = self
            .tokens
            .get(&id)
            .ok_or(ScheduleError::UnknownToken { token: id })?
            .clone();
        let fetches = self.fetches_for(&token, worker)?;
        for &(_, bytes) in &fetches {
            self.stats.remote_fetch_bytes += bytes;
        }
        let attempt = self.leases.attempt_of(id);
        if self.recovery_on() {
            self.leases.grant(id, worker, attempt);
        }
        Ok(Some(Grant {
            token,
            fetches,
            conflict,
            attempt,
        }))
    }

    /// Chooses which bucket to draw from — the oracle's decision served from
    /// the occupancy indices: own STB if it has anything grantable, else the
    /// steal sets' `first()`.
    fn pick_bucket(&self, worker: usize) -> Option<(usize, bool)> {
        let member = self.in_ctd_subset(worker);
        if !self.cfg.hf {
            let has = if member {
                self.queued_all[0] > 0
            } else {
                self.queued_noncond[0] > 0
            };
            return has.then_some((0, false));
        }
        let own = if member {
            self.queued_all[worker]
        } else {
            self.queued_noncond[worker]
        };
        if own > 0 {
            return Some((worker, false));
        }
        // The requester's own bucket cannot be in its class's index here (its
        // class count is 0), so `first()` modulo that invariant — the `find`
        // keeps the skip explicit and costs one extra probe at most.
        let index = if member {
            &self.steal_any
        } else {
            &self.steal_noncond
        };
        index
            .iter()
            .map(|&(_, _, b)| b)
            .find(|&b| b != worker)
            .map(|b| (b, true))
    }

    /// Picks `(level, token)` inside a bucket per ADS/CTD, walking the static
    /// preference order for the requester's CTD class.
    fn pick_token(&self, bucket: usize, worker: usize) -> Option<(usize, TokenId)> {
        let order = if self.in_ctd_subset(worker) {
            &self.member_order
        } else {
            &self.nonmember_order
        };
        for &level in order {
            if let Some(id) = self.shards[self.shard_of[level]].pick(bucket, level, worker) {
                return Some((level, id));
            }
        }
        None
    }

    fn fetches_for(
        &self,
        token: &Token,
        worker: usize,
    ) -> Result<Vec<(usize, u64)>, ScheduleError> {
        if token.level == 0 {
            let owner = token
                .sample_owner
                .ok_or(ScheduleError::MissingSampleOwner { token: token.id })?;
            let home = self.data_home[owner];
            if home != worker {
                let bytes = token.batch * self.meta[0].input_bytes_per_sample;
                return Ok(vec![(home, bytes)]);
            }
            return Ok(vec![]);
        }
        let per_sample = self.meta[token.level].input_bytes_per_sample;
        let mut fetches = Vec::new();
        for dep in &token.deps {
            let holder = *self
                .holder
                .get(dep)
                .ok_or(ScheduleError::MissingDependencyHolder {
                    token: token.id,
                    dep: *dep,
                })?;
            if holder != worker {
                let dep_batch = self
                    .tokens
                    .get(dep)
                    .ok_or(ScheduleError::UnknownToken { token: *dep })?
                    .batch;
                fetches.push((holder, dep_batch * per_sample));
            }
        }
        Ok(fetches)
    }

    // ---- generation / sync -------------------------------------------------

    /// A worker reports a completed token. Identical contract to
    /// [`TokenServer::report`].
    pub fn report(
        &mut self,
        worker: usize,
        token: TokenId,
    ) -> Result<Vec<SyncSpec>, ScheduleError> {
        self.check_worker(worker)?;
        let (level, iteration) = {
            let t = self
                .tokens
                .get(&token)
                .ok_or(ScheduleError::UnknownToken { token })?;
            (t.level, t.iteration)
        };
        if self.recovery_on() {
            match self.leases.lease_of(token) {
                Some(l) if l.worker == worker => {
                    self.leases.release(token);
                }
                _ => return Err(ScheduleError::StaleReport { worker, token }),
            }
        }
        if self.holder.contains_key(&token) {
            return Err(ScheduleError::DuplicateReport { token });
        }
        self.holder.insert(token, worker);
        self.trained_per_worker[worker] += 1;
        if level + 1 < self.plan.num_levels() {
            let ratio = self.plan.levels[level + 1].gen_ratio as usize;
            let sh = self.shard_of[level];
            let deps = {
                let st = self.shards[sh].state_mut(level);
                let buffer = st.gen_buffer.entry(iteration).or_default();
                buffer.push(token);
                if buffer.len() >= ratio {
                    st.gen_buffer.remove(&iteration)
                } else {
                    None
                }
            };
            if let Some(deps) = deps {
                self.generate_token(level + 1, iteration, deps, worker)?;
            }
        }
        let mut syncs = Vec::new();
        let lp = self.plan.levels[level];
        let count = {
            let sh = self.shard_of[level];
            let st = self.shards[sh].state_mut(level);
            let c = st.completed.entry(iteration).or_insert(0);
            *c += 1;
            *c
        };
        if count == lp.tokens_per_iteration {
            let sh = self.shard_of[level];
            self.shards[sh]
                .state_mut(level)
                .completed
                .remove(&iteration);
            let participants: Vec<usize> = if self.cond_level[level] {
                self.ctd_participants(level)?
            } else {
                let alive: Vec<usize> = (0..self.n_workers).filter(|&w| self.eligible(w)).collect();
                if alive.is_empty() {
                    return Err(ScheduleError::NoAliveWorkers);
                }
                alive
            };
            syncs.push(SyncSpec {
                level,
                iteration,
                participants,
                bytes: self.meta[level].param_bytes,
            });
        }
        Ok(syncs)
    }

    /// Marks a level's parameter sync for `iteration` finished. Identical
    /// contract to [`TokenServer::sync_finished`] — the cross-shard event:
    /// the owning shard reconciles its sync watermark, then the coordinator
    /// releases gated tokens and due root iterations.
    pub fn sync_finished(&mut self, level: usize, iteration: u64) -> Result<(), ScheduleError> {
        let m = self.plan.num_levels();
        if level >= m {
            return Err(ScheduleError::LevelOutOfRange { level, levels: m });
        }
        let sh = self.shard_of[level];
        {
            let ls = self.shards[sh].state_mut(level);
            if iteration < ls.synced_upto || ls.synced_out_of_order.contains(&iteration) {
                return Err(ScheduleError::DuplicateSync { level, iteration });
            }
            ls.synced_out_of_order.insert(iteration);
            while ls.synced_out_of_order.remove(&ls.synced_upto) {
                ls.synced_upto += 1;
            }
        }
        let bound = self.level_state(level).release_bound(self.cfg.staleness);
        let mut still_pending = VecDeque::new();
        while let Some((id, bucket)) = self.shards[sh].state_mut(level).pending.pop_front() {
            let token_iter = self
                .tokens
                .get(&id)
                .ok_or(ScheduleError::UnknownToken { token: id })?
                .iteration;
            if token_iter <= bound {
                self.stb_push(bucket, level, id)?;
            } else {
                still_pending.push_back((id, bucket));
            }
        }
        self.shards[sh].state_mut(level).pending = still_pending;
        self.release_due_roots();
        Ok(())
    }

    fn generate_token(
        &mut self,
        level: usize,
        iteration: u64,
        deps: Vec<TokenId>,
        reporter: usize,
    ) -> Result<(), ScheduleError> {
        let lp = self.plan.levels[level];
        let sh = self.shard_of[level];
        let seq = self
            .level_state(level)
            .generated
            .get(&iteration)
            .copied()
            .unwrap_or(0);
        if seq >= lp.tokens_per_iteration {
            return Err(ScheduleError::OverGeneration { level, iteration });
        }
        *self.shards[sh]
            .state_mut(level)
            .generated
            .entry(iteration)
            .or_insert(0) += 1;
        let id = TokenId(self.next_token_id);
        self.next_token_id += 1;
        let token = Token {
            id,
            level,
            iteration,
            seq,
            batch: lp.batch_per_token,
            deps,
            sample_owner: None,
        };
        self.tokens.insert(id, token);
        let bucket = if !self.cfg.hf {
            0
        } else if self.cond_level[level] && !self.in_ctd_subset(reporter) {
            self.ctd_participants(level)?
                .into_iter()
                .min_by_key(|&w| (self.shards[sh].queue_len(w, level), w))
                .ok_or(ScheduleError::EmptyCtdSubset { level })?
        } else {
            reporter
        };
        if iteration <= self.level_state(level).release_bound(self.cfg.staleness) {
            self.stb_push(bucket, level, id)?;
        } else {
            self.shards[sh]
                .state_mut(level)
                .pending
                .push_back((id, bucket));
        }
        Ok(())
    }

    fn release_due_roots(&mut self) {
        loop {
            let bound = if self.cfg.pipelining {
                self.level_state(0).release_bound(self.cfg.staleness)
            } else {
                self.completed_iterations() + self.cfg.staleness
            };
            if self.released_roots >= self.max_iterations || self.released_roots > bound {
                return;
            }
            self.release_one_root_iteration();
        }
    }

    fn release_one_root_iteration(&mut self) {
        let iter = self.released_roots;
        self.released_roots += 1;
        // A fresh wave of local work arrived for everyone: helper counts from
        // the previous wave no longer describe the new contention picture.
        for b in 0..self.helpers.len() {
            if self.helpers[b] != 0 {
                self.set_helpers(b, 0);
            }
        }
        let n0 = self.plan.levels[0].tokens_per_iteration;
        let batch = self.plan.levels[0].batch_per_token;
        for seq in 0..n0 {
            let owner = (seq % self.n_workers as u64) as usize;
            let id = TokenId(self.next_token_id);
            self.next_token_id += 1;
            let token = Token {
                id,
                level: 0,
                iteration: iter,
                seq,
                batch,
                deps: vec![],
                sample_owner: Some(owner),
            };
            self.tokens.insert(id, token);
            let home = self.data_home[owner];
            let bucket = if !self.cfg.hf {
                0
            } else if self.eligible(home) {
                home
            } else {
                (0..self.n_workers)
                    .find(|&w| self.eligible(w))
                    .unwrap_or(home)
            };
            self.stb_push_root(bucket, id);
        }
    }

    // ---- liveness / recovery -----------------------------------------------

    /// Handles a crash notification. Identical contract to
    /// [`TokenServer::worker_crashed`] — the cross-shard re-homing event.
    pub fn worker_crashed(&mut self, worker: usize) -> Result<Vec<TokenId>, ScheduleError> {
        self.check_worker(worker)?;
        if !self.alive[worker] {
            return Err(ScheduleError::BadLivenessTransition {
                worker,
                alive: false,
            });
        }
        self.alive[worker] = false;
        self.waiting.retain(|&w| w != worker);
        let fallback = self.fallback_worker().ok();
        if let Some(fb) = fallback {
            for home in &mut self.data_home {
                if *home == worker {
                    *home = fb;
                }
            }
            for holder in self.holder.values_mut() {
                if *holder == worker {
                    *holder = fb;
                }
            }
        }
        let held = self.leases.held_by(worker);
        for &t in &held {
            self.revoke_lease(t)?;
        }
        if self.cfg.hf {
            for level in 0..self.plan.num_levels() {
                let ids = self.shards[self.shard_of[level]].queue_ids(worker, level);
                for id in ids {
                    self.stb_remove(worker, level, id)?;
                    self.place_token(level, id)?;
                }
            }
            if let Some(fb) = fallback {
                for level in 0..self.plan.num_levels() {
                    let sh = self.shard_of[level];
                    for (_, bucket) in self.shards[sh].state_mut(level).pending.iter_mut() {
                        if *bucket == worker {
                            *bucket = fb;
                        }
                    }
                }
            }
        }
        self.rebuild_score_index()?;
        Ok(held)
    }

    /// Handles a restart notification. Identical contract to
    /// [`TokenServer::worker_restarted`].
    pub fn worker_restarted(&mut self, worker: usize) -> Result<(), ScheduleError> {
        self.check_worker(worker)?;
        if self.alive[worker] {
            return Err(ScheduleError::BadLivenessTransition {
                worker,
                alive: true,
            });
        }
        self.alive[worker] = true;
        self.quarantined[worker] = false;
        self.leases.clear_expiries(worker);
        let orphaned = !self.parked.is_empty()
            || self.data_home.iter().any(|&h| !self.alive[h])
            || self.holder.values().any(|&h| !self.alive[h]);
        if orphaned {
            let fb = self.fallback_worker()?; // the rejoining worker at worst
            for home in &mut self.data_home {
                if !self.alive[*home] {
                    *home = fb;
                }
            }
            let alive = &self.alive;
            for holder in self.holder.values_mut() {
                if !alive[*holder] {
                    *holder = fb;
                }
            }
            if self.cfg.hf {
                for level in 0..self.plan.num_levels() {
                    let sh = self.shard_of[level];
                    let alive = &self.alive;
                    for (_, bucket) in self.shards[sh].state_mut(level).pending.iter_mut() {
                        if !alive[*bucket] {
                            *bucket = fb;
                        }
                    }
                }
            }
            let parked = std::mem::take(&mut self.parked);
            for (level, id) in parked {
                self.place_token(level, id)?;
            }
            self.rebuild_score_index()?;
        }
        Ok(())
    }

    /// Handles a lease-deadline expiry. Identical contract to
    /// [`TokenServer::lease_expired`].
    pub fn lease_expired(
        &mut self,
        token: TokenId,
        attempt: u64,
    ) -> Result<Option<ExpiredLease>, ScheduleError> {
        let Some(lease) = self.leases.lease_of(token) else {
            return Ok(None);
        };
        if lease.attempt != attempt {
            return Ok(None);
        }
        let worker = lease.worker;
        self.revoke_lease(token)?;
        let mut revoked = vec![token];
        let expiries = self.leases.count_expiry(worker);
        let threshold = self
            .cfg
            .recovery
            .map(|r| r.quarantine_after)
            .unwrap_or(u64::MAX);
        let mut newly_quarantined = false;
        if expiries >= threshold && !self.quarantined[worker] {
            // Check a survivor remains before shrinking the membership.
            if (0..self.n_workers).any(|w| w != worker && self.eligible(w)) {
                self.quarantined[worker] = true;
                newly_quarantined = true;
                self.waiting.retain(|&w| w != worker);
                let held = self.leases.held_by(worker);
                for &t in &held {
                    self.revoke_lease(t)?;
                }
                revoked.extend(held);
            }
        }
        Ok(Some(ExpiredLease {
            worker,
            revoked,
            quarantined: newly_quarantined,
        }))
    }

    fn revoke_lease(&mut self, token: TokenId) -> Result<(), ScheduleError> {
        if !self.leases.revoke(token) {
            return Err(ScheduleError::UnknownToken { token });
        }
        let level = self
            .tokens
            .get(&token)
            .ok_or(ScheduleError::UnknownToken { token })?
            .level;
        self.place_token(level, token)
    }

    fn place_token(&mut self, level: usize, id: TokenId) -> Result<(), ScheduleError> {
        if !self.cfg.hf {
            return self.stb_push(0, level, id);
        }
        let candidates: Vec<usize> = if self.cond_level[level] {
            match self.ctd_participants(level) {
                Ok(c) => c,
                Err(ScheduleError::NoAliveWorkers) => {
                    self.parked.push((level, id));
                    return Ok(());
                }
                Err(e) => return Err(e),
            }
        } else {
            let alive: Vec<usize> = (0..self.n_workers).filter(|&w| self.eligible(w)).collect();
            if alive.is_empty() {
                self.parked.push((level, id));
                return Ok(());
            }
            alive
        };
        let mut best: Option<(u64, usize, usize)> = None; // (score key, queue, id)
        let mut bucket = candidates[0];
        for &w in &candidates {
            let score = self.locality_score(w, id)?;
            // `queued_all` is exactly the oracle's per-bucket queue-length sum.
            let key = (score_key(score), self.queued_all[w], w);
            if best.map_or(true, |b| key < b) {
                best = Some(key);
                bucket = w;
            }
        }
        self.stb_push(bucket, level, id)
    }

    // ---- snapshot ----------------------------------------------------------

    /// A canonical snapshot of the scheduling state — bit-identical to the
    /// oracle's for equal histories (see [`ServerSnapshot`]).
    pub fn snapshot(&self) -> ServerSnapshot {
        let m = self.plan.num_levels();
        let buckets = self.queued_all.len();
        ServerSnapshot {
            released_roots: self.released_roots,
            next_token_id: self.next_token_id,
            stbs: (0..buckets)
                .map(|b| {
                    (0..m)
                        .map(|l| self.shards[self.shard_of[l]].queue_row(b, l))
                        .collect()
                })
                .collect(),
            pending: (0..m)
                .map(|l| {
                    self.level_state(l)
                        .pending
                        .iter()
                        .map(|&(id, b)| (id.0, b))
                        .collect()
                })
                .collect(),
            synced_upto: (0..m).map(|l| self.level_state(l).synced_upto).collect(),
            synced_out_of_order: (0..m)
                .map(|l| {
                    self.level_state(l)
                        .synced_out_of_order
                        .iter()
                        .copied()
                        .collect()
                })
                .collect(),
            completed: (0..m)
                .map(|l| {
                    self.level_state(l)
                        .completed
                        .iter()
                        .map(|(&k, &v)| (k, v))
                        .collect()
                })
                .collect(),
            gen_buffers: (0..m)
                .map(|l| {
                    self.level_state(l)
                        .gen_buffer
                        .iter()
                        .map(|(&k, v)| (k, v.iter().map(|id| id.0).collect()))
                        .collect()
                })
                .collect(),
            holder: self.holder.iter().map(|(&t, &w)| (t.0, w)).collect(),
            waiting: self.waiting.iter().copied().collect(),
            helpers: self.helpers.clone(),
            alive: self.alive.clone(),
            quarantined: self.quarantined.clone(),
            leases: self.leases.lease_triples(),
            attempts: self.leases.attempt_pairs(),
            expiry_counts: self.leases.expiry_counts().to_vec(),
            data_home: self.data_home.clone(),
            parked: self.parked.iter().map(|&(l, id)| (l, id.0)).collect(),
        }
    }
}

/// The control-plane seam every layer holds: the monolithic oracle when
/// `cfg.shards == 1` (the default), the sharded coordinator otherwise. Both
/// variants expose the same API and produce byte-identical schedules.
///
/// With [`ControlPlane::enable_op_log`] the plane additionally records every
/// mutating call as a [`CoordOp`] — inputs plus outcome digest — which
/// `fela-check` replays against a fresh monolithic oracle to prove a history
/// linearizable (see [`crate::oplog`]).
pub struct ControlPlane {
    inner: Plane,
    log: Option<Vec<CoordOp>>,
    wal: Option<WalWriter>,
}

impl Clone for ControlPlane {
    /// A clone is a *logical copy* of the scheduling state, not a second log
    /// writer: exploratory clones (what-if probes, checkers) must not
    /// double-append to the durable log, so the clone's WAL is detached.
    fn clone(&self) -> Self {
        ControlPlane {
            inner: self.inner.clone(),
            log: self.log.clone(),
            wal: None,
        }
    }
}

#[derive(Clone)]
enum Plane {
    /// The monolithic [`TokenServer`] — the conformance oracle.
    Single(TokenServer),
    /// The sharded [`Coordinator`].
    Sharded(Coordinator),
}

/// Forwards a method call to whichever plane is active.
macro_rules! either {
    ($plane:expr, $s:ident => $e:expr) => {
        match $plane {
            Plane::Single($s) => $e,
            Plane::Sharded($s) => $e,
        }
    };
}

impl ControlPlane {
    /// Builds the plane `cfg.shards` selects and releases iteration 0's roots.
    pub fn new(
        plan: TokenPlan,
        cfg: FelaConfig,
        meta: Vec<LevelMeta>,
        n_workers: usize,
        max_iterations: u64,
    ) -> Self {
        let inner = if cfg.shards <= 1 {
            Plane::Single(TokenServer::new(plan, cfg, meta, n_workers, max_iterations))
        } else {
            Plane::Sharded(Coordinator::new(plan, cfg, meta, n_workers, max_iterations))
        };
        ControlPlane {
            inner,
            log: None,
            wal: None,
        }
    }

    /// Rebuilds a plane from a snapshot + token table (the WAL recovery
    /// path): the monolithic oracle when `cfg.shards <= 1`, the sharded
    /// coordinator otherwise — mirroring [`ControlPlane::new`]'s selection.
    #[allow(clippy::too_many_arguments)]
    pub fn restore(
        plan: TokenPlan,
        cfg: FelaConfig,
        meta: Vec<LevelMeta>,
        n_workers: usize,
        max_iterations: u64,
        tokens: BTreeMap<TokenId, Token>,
        snap: &ServerSnapshot,
    ) -> Result<Self, ScheduleError> {
        let inner = if cfg.shards <= 1 {
            Plane::Single(TokenServer::restore(
                plan,
                cfg,
                meta,
                n_workers,
                max_iterations,
                tokens,
                snap,
            )?)
        } else {
            Plane::Sharded(Coordinator::restore(
                plan,
                cfg,
                meta,
                n_workers,
                max_iterations,
                tokens,
                snap,
            )?)
        };
        Ok(ControlPlane {
            inner,
            log: None,
            wal: None,
        })
    }

    /// Turns on operation recording: every subsequent mutating call appends
    /// one [`CoordOp`] to the log. Off by default (zero overhead).
    pub fn enable_op_log(&mut self) {
        if self.log.is_none() {
            self.log = Some(Vec::new());
        }
    }

    /// Whether operation recording is on.
    pub fn op_log_enabled(&self) -> bool {
        self.log.is_some()
    }

    /// Drains and returns the recorded operations (empty if recording is
    /// off). Recording stays enabled.
    pub fn take_op_log(&mut self) -> Vec<CoordOp> {
        match &mut self.log {
            Some(log) => std::mem::take(log),
            None => Vec::new(),
        }
    }

    /// Attaches a write-ahead log: writes the opening `Begin` record and
    /// makes every subsequent mutating call append (and sync) one op record
    /// before its result is returned to the caller.
    pub fn attach_wal(&mut self, sink: Box<dyn crate::wal::WalSink>) -> std::io::Result<()> {
        let mut writer = WalWriter::new(sink);
        writer.append_begin(
            self.shard_count() as u32,
            self.n_workers() as u32,
            self.max_iterations(),
        );
        writer.commit()?;
        self.wal = Some(writer);
        Ok(())
    }

    /// Re-attaches a log after recovery, continuing the op sequence at
    /// `next_seq` ([`crate::wal::Recovered::next_seq`]). Writes nothing.
    pub fn resume_wal(&mut self, sink: Box<dyn crate::wal::WalSink>, next_seq: u64) {
        self.wal = Some(WalWriter::resume(sink, next_seq));
    }

    /// Whether a write-ahead log is attached.
    pub fn wal_attached(&self) -> bool {
        self.wal.is_some()
    }

    /// Appends a full-state checkpoint (snapshot + token table + the opaque
    /// runtime `payload`) to the attached log and syncs it. No-op when no
    /// log is attached.
    pub fn checkpoint_wal(&mut self, payload: &[u8]) -> std::io::Result<()> {
        if self.wal.is_none() {
            return Ok(());
        }
        let snapshot = self.snapshot();
        let tokens = self.tokens().clone();
        if let Some(wal) = &mut self.wal {
            wal.append_checkpoint(payload, &tokens, &snapshot);
            wal.commit()
        } else {
            Ok(())
        }
    }

    /// True when a mutating call must compute its [`CoordOp`] digest (either
    /// sink is attached).
    fn recording(&self) -> bool {
        self.log.is_some() || self.wal.is_some()
    }

    fn record(&mut self, kind: OpKind, outcome: OpOutcome) {
        let op = CoordOp { kind, outcome };
        if let Some(wal) = &mut self.wal {
            wal.append_op(&op);
            if let Err(e) = wal.commit() {
                // A durable plane that cannot persist its decisions must not
                // keep handing them out: failing loudly here is the contract.
                panic!("WAL append failed — cannot guarantee durability: {e}");
            }
        }
        if let Some(log) = &mut self.log {
            log.push(op);
        }
    }

    /// Number of shards (1 for the monolithic plane).
    pub fn shard_count(&self) -> usize {
        match &self.inner {
            Plane::Single(_) => 1,
            Plane::Sharded(c) => c.shard_count(),
        }
    }

    /// Run configuration (read access).
    pub fn config(&self) -> &FelaConfig {
        either!(&self.inner, s => s.config())
    }

    /// The token plan (read access).
    pub fn plan(&self) -> &TokenPlan {
        either!(&self.inner, s => s.plan())
    }

    /// Cluster size the plane schedules for.
    pub fn n_workers(&self) -> usize {
        either!(&self.inner, s => s.n_workers())
    }

    /// Total iterations this run trains.
    pub fn max_iterations(&self) -> u64 {
        either!(&self.inner, s => s.max_iterations())
    }

    /// A generated token by id (introspection for checkers).
    pub fn token(&self, id: TokenId) -> Option<&Token> {
        either!(&self.inner, s => s.token(id))
    }

    /// The full token table (pair with [`Self::snapshot`] for restore).
    pub fn tokens(&self) -> &BTreeMap<TokenId, Token> {
        either!(&self.inner, s => s.tokens())
    }

    /// Accumulated counters.
    pub fn stats(&self) -> &ServerStats {
        either!(&self.inner, s => s.stats())
    }

    /// Tokens trained per worker so far.
    pub fn trained_per_worker(&self) -> &[u64] {
        either!(&self.inner, s => s.trained_per_worker())
    }

    /// Iterations whose root tokens have been released.
    pub fn released_root_iterations(&self) -> u64 {
        either!(&self.inner, s => s.released_root_iterations())
    }

    /// Iterations fully finished.
    pub fn completed_iterations(&self) -> u64 {
        either!(&self.inner, s => s.completed_iterations())
    }

    /// True once all iterations are fully synced.
    pub fn run_complete(&self) -> bool {
        either!(&self.inner, s => s.run_complete())
    }

    /// Whether `worker` belongs to the CTD subset `S`.
    pub fn in_ctd_subset(&self, worker: usize) -> bool {
        either!(&self.inner, s => s.in_ctd_subset(worker))
    }

    /// Whether lease-based recovery is enabled.
    pub fn recovery_on(&self) -> bool {
        either!(&self.inner, s => s.recovery_on())
    }

    /// Whether the plane considers `worker` alive.
    pub fn is_alive(&self, worker: usize) -> bool {
        either!(&self.inner, s => s.is_alive(worker))
    }

    /// Whether `worker` is quarantined.
    pub fn is_quarantined(&self, worker: usize) -> bool {
        either!(&self.inner, s => s.is_quarantined(worker))
    }

    /// The active lease on `token`, if any (recovery mode only).
    pub fn lease_of(&self, token: TokenId) -> Option<LeaseInfo> {
        either!(&self.inner, s => s.lease_of(token))
    }

    /// How many times `token`'s lease has been revoked so far.
    pub fn attempt_of(&self, token: TokenId) -> u64 {
        either!(&self.inner, s => s.attempt_of(token))
    }

    /// Where `worker`'s durable data currently lives.
    pub fn data_home_of(&self, worker: usize) -> usize {
        either!(&self.inner, s => s.data_home_of(worker))
    }

    /// Equation 1 locality score of `token` towards `worker`.
    pub fn locality_score(&self, worker: usize, token: TokenId) -> Result<f64, ScheduleError> {
        either!(&self.inner, s => s.locality_score(worker, token))
    }

    /// A worker asks for a token at `now`.
    pub fn request(&mut self, worker: usize, now: SimTime) -> Result<Option<Grant>, ScheduleError> {
        let result = either!(&mut self.inner, s => s.request(worker, now));
        if self.recording() {
            let outcome = oplog::outcome_of_request(worker, &result);
            self.record(OpKind::Request { worker, now }, outcome);
        }
        result
    }

    /// Serves the longest-waiting worker that can now be granted.
    pub fn pop_ready_grant(
        &mut self,
        now: SimTime,
    ) -> Result<Option<(usize, Grant)>, ScheduleError> {
        let result = either!(&mut self.inner, s => s.pop_ready_grant(now));
        if self.recording() {
            let outcome = oplog::outcome_of_pop(&result);
            self.record(OpKind::PopReadyGrant { now }, outcome);
        }
        result
    }

    /// Drains every currently servable waiting worker into `out` — the
    /// batched grant path. Implemented as the repeated-pop loop so the op-log
    /// (and therefore lockstep byte-identity against the oracle) records
    /// exactly the same [`OpKind::PopReadyGrant`] sequence a one-at-a-time
    /// caller would have produced.
    pub fn drain_ready_grants(
        &mut self,
        now: SimTime,
        out: &mut Vec<(usize, Grant)>,
    ) -> Result<(), ScheduleError> {
        while let Some(pair) = self.pop_ready_grant(now)? {
            out.push(pair);
        }
        Ok(())
    }

    /// A worker reports a completed token.
    pub fn report(
        &mut self,
        worker: usize,
        token: TokenId,
    ) -> Result<Vec<SyncSpec>, ScheduleError> {
        let result = either!(&mut self.inner, s => s.report(worker, token));
        if self.recording() {
            let outcome = oplog::outcome_of_report(&result);
            self.record(
                OpKind::Report {
                    worker,
                    token: token.0,
                },
                outcome,
            );
        }
        result
    }

    /// Marks a level's parameter sync for `iteration` finished.
    pub fn sync_finished(&mut self, level: usize, iteration: u64) -> Result<(), ScheduleError> {
        let result = either!(&mut self.inner, s => s.sync_finished(level, iteration));
        if self.recording() {
            let outcome = oplog::outcome_of_unit(&result);
            self.record(OpKind::SyncFinished { level, iteration }, outcome);
        }
        result
    }

    /// Handles a crash notification for `worker`.
    pub fn worker_crashed(&mut self, worker: usize) -> Result<Vec<TokenId>, ScheduleError> {
        let result = either!(&mut self.inner, s => s.worker_crashed(worker));
        if self.recording() {
            let outcome = oplog::outcome_of_crash(&result);
            self.record(OpKind::WorkerCrashed { worker }, outcome);
        }
        result
    }

    /// Handles a restart notification for `worker`.
    pub fn worker_restarted(&mut self, worker: usize) -> Result<(), ScheduleError> {
        let result = either!(&mut self.inner, s => s.worker_restarted(worker));
        if self.recording() {
            let outcome = oplog::outcome_of_unit(&result);
            self.record(OpKind::WorkerRestarted { worker }, outcome);
        }
        result
    }

    /// Handles a lease-deadline expiry for `(token, attempt)`.
    pub fn lease_expired(
        &mut self,
        token: TokenId,
        attempt: u64,
    ) -> Result<Option<ExpiredLease>, ScheduleError> {
        let result = either!(&mut self.inner, s => s.lease_expired(token, attempt));
        if self.recording() {
            let outcome = oplog::outcome_of_expiry(&result);
            self.record(
                OpKind::LeaseExpired {
                    token: token.0,
                    attempt,
                },
                outcome,
            );
        }
        result
    }

    /// A canonical snapshot of the scheduling state.
    pub fn snapshot(&self) -> ServerSnapshot {
        either!(&self.inner, s => s.snapshot())
    }
}
