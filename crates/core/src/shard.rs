//! Per-shard token state: a [`TokenShard`] owns a contiguous range of levels
//! — each level's sync/generation bookkeeping ([`LevelState`]) plus its slice
//! of every bucket's STB queue and distribution indices.
//!
//! Shards are deliberately dumb: they answer O(log) pick/push/remove queries
//! in their level range and never see the cluster-wide picture (liveness,
//! leases, helper counts, the token table). All cross-shard decisions —
//! which bucket to steal from, where a revoked token re-homes, when a sync
//! barrier closes — live in the [`Coordinator`](crate::Coordinator), which is
//! what keeps the sharded schedule byte-identical to the monolithic
//! [`TokenServer`](crate::TokenServer) oracle.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use crate::error::ScheduleError;
use crate::token::{Token, TokenId};

/// One `(encoded score, token id)` index: ascending set order is descending
/// locality score, ties to the smallest id (Principle 2).
pub(crate) type ScoreSet = BTreeSet<(u64, TokenId)>;

/// Per-level sync, completion and generation bookkeeping.
#[derive(Clone)]
pub(crate) struct LevelState {
    /// Contiguous iterations synced from 0 (`synced_upto = k` ⇒ iterations
    /// `0..k` are fully synced at this level).
    pub(crate) synced_upto: u64,
    /// Syncs finished out of contiguous order (possible under SSP staleness,
    /// where two iterations of one level may be in flight at once).
    pub(crate) synced_out_of_order: BTreeSet<u64>,
    /// Completions counted per in-flight iteration.
    pub(crate) completed: BTreeMap<u64, u64>,
    /// Generation groups accumulating per iteration (completion order within an
    /// iteration, as in Figure 3).
    pub(crate) gen_buffer: BTreeMap<u64, Vec<TokenId>>,
    /// Generated tokens gated on this level's sync/staleness bound: `(token id,
    /// preferred bucket)`.
    pub(crate) pending: VecDeque<(TokenId, usize)>,
    /// Tokens generated so far per iteration at this level (levels ≥ 1 only).
    /// Replaces the O(all tokens) scan the generator used for `seq` assignment:
    /// level ≥ 1 tokens are created nowhere else, so the counter equals the scan.
    pub(crate) generated: BTreeMap<u64, u64>,
}

impl LevelState {
    pub(crate) fn new() -> Self {
        LevelState {
            synced_upto: 0,
            synced_out_of_order: BTreeSet::new(),
            completed: BTreeMap::new(),
            gen_buffer: BTreeMap::new(),
            pending: VecDeque::new(),
            generated: BTreeMap::new(),
        }
    }

    /// Highest iteration whose tokens may currently run at this level.
    pub(crate) fn release_bound(&self, staleness: u64) -> u64 {
        self.synced_upto + staleness
    }
}

/// Encodes a locality score so ascending `u64` order equals descending score
/// order. Sound because scores are finite and non-negative (Equation 1 yields
/// values in `[0, 1]`), where IEEE-754 bit patterns are monotone in value.
pub(crate) fn score_key(score: f64) -> u64 {
    !score.to_bits()
}

/// The distributable-token state of one level: its slice of every bucket's
/// STB queue plus the id-order and Principle-2 pick indices.
#[derive(Clone)]
struct LevelSlot {
    state: LevelState,
    /// `stbs[bucket]` — this level's queue segment of each bucket's STB.
    stbs: Vec<VecDeque<TokenId>>,
    /// Id-ordered mirror of each queue (smallest-id picks in O(log)).
    grantable: Vec<BTreeSet<TokenId>>,
    /// Principle-2 index: `by_score[bucket][worker]` → this level's tokens
    /// with strictly positive locality score towards `worker`, keyed
    /// `(descending score, ascending id)`. See the monolith's field docs for
    /// why zero-score tokens are deliberately absent.
    by_score: Vec<Vec<ScoreSet>>,
}

/// One control-plane shard: owns the token state of a contiguous level range
/// `first_level .. first_level + n_levels`.
///
/// All level arguments are *global* level indices; callers never see the
/// internal offset. Pushes take the token and the Info Mapping by reference
/// so the shard can maintain its score index without owning either.
#[derive(Clone)]
pub struct TokenShard {
    first_level: usize,
    n_levels: usize,
    use_score_index: bool,
    n_workers: usize,
    levels: Vec<LevelSlot>,
    /// Sparse `(worker, score key)` index entries of every STB-resident token,
    /// kept so `remove` can drop them without recomputing scores.
    score_keys: BTreeMap<TokenId, Vec<(usize, u64)>>,
}

impl TokenShard {
    /// Creates an empty shard owning levels `first_level .. first_level + n_levels`
    /// across `buckets` STBs.
    pub(crate) fn new(
        first_level: usize,
        n_levels: usize,
        buckets: usize,
        n_workers: usize,
        use_score_index: bool,
    ) -> Self {
        TokenShard {
            first_level,
            n_levels,
            use_score_index,
            n_workers,
            levels: (0..n_levels)
                .map(|_| LevelSlot {
                    state: LevelState::new(),
                    stbs: vec![VecDeque::new(); buckets],
                    grantable: vec![BTreeSet::new(); buckets],
                    by_score: vec![vec![BTreeSet::new(); n_workers]; buckets],
                })
                .collect(),
            score_keys: BTreeMap::new(),
        }
    }

    /// First global level this shard owns.
    pub fn first_level(&self) -> usize {
        self.first_level
    }

    /// Number of contiguous levels this shard owns.
    pub fn level_count(&self) -> usize {
        self.n_levels
    }

    /// Whether `level` (global index) belongs to this shard.
    pub fn owns(&self, level: usize) -> bool {
        (self.first_level..self.first_level + self.n_levels).contains(&level)
    }

    fn slot(&self, level: usize) -> &LevelSlot {
        &self.levels[level - self.first_level]
    }

    fn slot_mut(&mut self, level: usize) -> &mut LevelSlot {
        &mut self.levels[level - self.first_level]
    }

    pub(crate) fn state(&self, level: usize) -> &LevelState {
        &self.slot(level).state
    }

    pub(crate) fn state_mut(&mut self, level: usize) -> &mut LevelState {
        &mut self.slot_mut(level).state
    }

    /// Queue length of `bucket`'s STB segment at `level`.
    pub fn queue_len(&self, bucket: usize, level: usize) -> usize {
        self.slot(level).stbs[bucket].len()
    }

    /// Token ids queued in `bucket` at `level`, in queue order.
    pub fn queue_ids(&self, bucket: usize, level: usize) -> Vec<TokenId> {
        self.slot(level).stbs[bucket].iter().copied().collect()
    }

    /// Snapshot export: the queue as raw ids.
    pub(crate) fn queue_row(&self, bucket: usize, level: usize) -> Vec<u64> {
        self.slot(level).stbs[bucket]
            .iter()
            .map(|id| id.0)
            .collect()
    }

    /// The level's pick for `worker` in `bucket`: highest locality score, ties
    /// to the smallest id (Principle 2) when the score index is on; smallest
    /// id otherwise (the ablation and global-bucket paths).
    pub(crate) fn pick(&self, bucket: usize, level: usize, worker: usize) -> Option<TokenId> {
        let slot = self.slot(level);
        if self.use_score_index {
            slot.by_score[bucket][worker]
                .first()
                .map(|&(_, id)| id)
                .or_else(|| slot.grantable[bucket].first().copied())
        } else {
            slot.grantable[bucket].first().copied()
        }
    }

    /// Inserts a token into `bucket`'s queue at `level` and all distribution
    /// indices. A single walk over the token's dependency holders yields every
    /// worker's held count; only workers with a positive count get an index
    /// entry (Equation 1's `held / len`).
    pub(crate) fn push(
        &mut self,
        bucket: usize,
        level: usize,
        token: &Token,
        holder: &BTreeMap<TokenId, usize>,
    ) {
        let id = token.id;
        let use_index = self.use_score_index;
        let n_workers = self.n_workers;
        let slot = self.slot_mut(level);
        slot.stbs[bucket].push_back(id);
        slot.grantable[bucket].insert(id);
        if use_index {
            let mut counts = vec![0usize; n_workers];
            for d in &token.deps {
                if let Some(&w) = holder.get(d) {
                    counts[w] += 1;
                }
            }
            let len = token.deps.len();
            let mut keys: Vec<(usize, u64)> = Vec::new();
            for (w, &c) in counts.iter().enumerate() {
                if c > 0 {
                    let k = score_key(c as f64 / len as f64);
                    slot.by_score[bucket][w].insert((k, id));
                    keys.push((w, k));
                }
            }
            if !keys.is_empty() {
                self.score_keys.insert(id, keys);
            }
        }
    }

    /// [`Self::push`] for root tokens, whose dependency set is empty and whose
    /// score is therefore 0 towards everyone (no index entries).
    pub(crate) fn push_root(&mut self, bucket: usize, level: usize, id: TokenId) {
        let slot = self.slot_mut(level);
        slot.stbs[bucket].push_back(id);
        slot.grantable[bucket].insert(id);
    }

    /// Removes a granted token from its queue and all distribution indices.
    pub(crate) fn remove(
        &mut self,
        bucket: usize,
        level: usize,
        id: TokenId,
    ) -> Result<(), ScheduleError> {
        let keys = self.score_keys.remove(&id);
        let slot = self.slot_mut(level);
        let q = &mut slot.stbs[bucket];
        let Some(pos) = q.iter().position(|&x| x == id) else {
            // The index pointed at a token the queue does not hold.
            return Err(ScheduleError::CorruptBucket {
                bucket,
                level,
                position: 0,
            });
        };
        q.remove(pos);
        slot.grantable[bucket].remove(&id);
        if let Some(keys) = keys {
            for (w, k) in keys {
                slot.by_score[bucket][w].remove(&(k, id));
            }
        }
        Ok(())
    }

    /// Recomputes the Principle-2 score index for every STB-resident token in
    /// this shard (crash re-homing moved holder entries, invalidating scores
    /// fixed at insertion time). Crash-path only.
    pub(crate) fn rebuild_scores(
        &mut self,
        tokens: &BTreeMap<TokenId, Token>,
        holder: &BTreeMap<TokenId, usize>,
    ) -> Result<(), ScheduleError> {
        if !self.use_score_index {
            return Ok(());
        }
        let n_workers = self.n_workers;
        let score_keys = &mut self.score_keys;
        for slot in &mut self.levels {
            for bucket in 0..slot.stbs.len() {
                let ids: Vec<TokenId> = slot.stbs[bucket].iter().copied().collect();
                for id in ids {
                    if let Some(keys) = score_keys.remove(&id) {
                        for (w, k) in keys {
                            slot.by_score[bucket][w].remove(&(k, id));
                        }
                    }
                    let t = tokens
                        .get(&id)
                        .ok_or(ScheduleError::UnknownToken { token: id })?;
                    let mut counts = vec![0usize; n_workers];
                    for d in &t.deps {
                        if let Some(&w) = holder.get(d) {
                            counts[w] += 1;
                        }
                    }
                    let len = t.deps.len();
                    let mut keys: Vec<(usize, u64)> = Vec::new();
                    for (w, &c) in counts.iter().enumerate() {
                        if c > 0 {
                            let k = score_key(c as f64 / len as f64);
                            slot.by_score[bucket][w].insert((k, id));
                            keys.push((w, k));
                        }
                    }
                    if !keys.is_empty() {
                        score_keys.insert(id, keys);
                    }
                }
            }
        }
        Ok(())
    }
}

/// Splits `m` levels into `shards` contiguous, balanced ranges:
/// shard `s` owns levels `⌊s·m/shards⌋ .. ⌊(s+1)·m/shards⌋`.
pub(crate) fn level_ranges(m: usize, shards: usize) -> Vec<(usize, usize)> {
    (0..shards)
        .map(|s| {
            let lo = s * m / shards;
            let hi = (s + 1) * m / shards;
            (lo, hi - lo)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_ranges_are_contiguous_and_exhaustive() {
        for m in 1..=8 {
            for s in 1..=m {
                let ranges = level_ranges(m, s);
                assert_eq!(ranges.len(), s);
                let mut next = 0;
                for &(lo, n) in &ranges {
                    assert_eq!(lo, next, "m={m} s={s}");
                    assert!(n >= 1, "every shard owns at least one level");
                    next = lo + n;
                }
                assert_eq!(next, m);
            }
        }
    }

    #[test]
    fn shard_push_pick_remove_round_trip() {
        let mut shard = TokenShard::new(1, 2, 4, 4, true);
        assert!(shard.owns(1) && shard.owns(2) && !shard.owns(0) && !shard.owns(3));
        let holder: BTreeMap<TokenId, usize> =
            [(TokenId(10), 2), (TokenId(11), 0)].into_iter().collect();
        let t = Token {
            id: TokenId(42),
            level: 2,
            iteration: 0,
            seq: 0,
            batch: 8,
            deps: vec![TokenId(10), TokenId(11)],
            sample_owner: None,
        };
        shard.push(3, 2, &t, &holder);
        assert_eq!(shard.queue_len(3, 2), 1);
        // Worker 2 holds half the deps → positive score; worker 1 holds none.
        assert_eq!(shard.pick(3, 2, 2), Some(TokenId(42)));
        assert_eq!(
            shard.pick(3, 2, 1),
            Some(TokenId(42)),
            "zero-score fallback"
        );
        shard.remove(3, 2, TokenId(42)).expect("queued");
        assert_eq!(shard.queue_len(3, 2), 0);
        assert_eq!(shard.pick(3, 2, 2), None);
        assert!(shard.remove(3, 2, TokenId(42)).is_err(), "double remove");
    }
}
