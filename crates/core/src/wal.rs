//! Durable control plane: write-ahead log + checkpointed recovery (§V).
//!
//! Worker death became survivable with leases; this module makes the **Token
//! Server itself** survivable. Every mutating control-plane call — grants,
//! reports, sync watermarks, lease fires, fault/restart events — appends one
//! [`CoordOp`] record to a write-ahead log *before* the result becomes
//! externally visible, and periodic [checkpoints](WalRecord::Checkpoint)
//! serialize the [`ServerSnapshot`] (the byte-exact conformance currency)
//! together with the token table and an opaque runtime payload. A crashed
//! server [recovers](recover) by restoring the latest checkpoint and replaying
//! the log suffix through [`apply_op`], verifying the recorded outcome digest
//! at every step — so a restarted plane is provably snapshot-equal to the one
//! that died, and resumes mid-iteration with exactly-once token application.
//!
//! ## Log format
//!
//! The framing reuses the `wire.rs` idioms: one record is
//!
//! ```text
//! [body_len: u32 LE] [crc32: u32 LE] [tag: u8] [fields, LE, declaration order]
//! ```
//!
//! with the CRC taken over the body (tag + fields). Decoding **never
//! panics** on arbitrary bytes: element counts are range-guarded before any
//! allocation, unknown tags and short bodies are structured [`WalError`]s,
//! and a *torn tail* — a final record cut short by a crash mid-write — is
//! dropped cleanly ([`ReadLog::torn_bytes`]) rather than erroring the whole
//! replay. A full-length record with a bad checksum is *corruption* (torn
//! writes only truncate, they do not scribble), and does fail the replay.
//!
//! ## Fsync discipline
//!
//! Appends stage into the writer's buffer; [`WalWriter::commit`] writes the
//! staged bytes to the [`WalSink`] and syncs it in one step. The control
//! plane commits after **every** logged operation before returning the
//! result to the caller — the `no-unflushed-wal` lint rule enforces that an
//! `append_op`/`append_checkpoint` on the grant/report path is always
//! followed by the `commit` call.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fs;
use std::io::{self, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::rc::Rc;

use fela_sim::SimTime;

use crate::oplog::{apply_op, CoordOp, OpKind, OpOutcome};
use crate::server::LevelMeta;
use crate::snapshot::ServerSnapshot;
use crate::token::{Token, TokenId};
use crate::{ControlPlane, FelaConfig, ScheduleError, TokenPlan};

/// Maximum accepted record body, a defensive bound against corrupt length
/// prefixes. Checkpoints carry the whole token table and snapshot, so the
/// bound is far more generous than a wire frame's.
pub const MAX_RECORD: u32 = 256 * 1024 * 1024;

/// File name of the log inside a `--wal-dir` directory.
pub fn wal_path(dir: &Path) -> PathBuf {
    dir.join("fela.wal")
}

// ---- CRC32 (IEEE 802.3, table-driven) -----------------------------------

const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// The checksum every record body is verified against on replay.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

// ---- errors --------------------------------------------------------------

/// Replay failure: the log bytes are not a valid record stream, or the
/// stream does not reproduce the plane that wrote it.
///
/// Structured (not a bare `io::Error`) so `fela-check`'s WAL rule can give
/// each corruption mode a distinct diagnostic.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum WalError {
    /// The body ended before a field could be read.
    Truncated {
        /// Bytes the field needed.
        wanted: usize,
        /// Offset the read started at.
        offset: usize,
        /// Total body length.
        body: usize,
    },
    /// Bytes remained after the record's last field.
    Trailing {
        /// Number of unconsumed bytes.
        extra: usize,
    },
    /// A tag byte (record, op, outcome or error tag) is not part of the
    /// format.
    UnknownTag(u8),
    /// An embedded element count is impossible for the bytes that follow it
    /// (guards `Vec::with_capacity` against corrupt counts).
    BadCount {
        /// Which field carried the count.
        what: &'static str,
        /// The claimed element count.
        count: usize,
        /// Bytes actually remaining in the body.
        remaining: usize,
    },
    /// A length prefix exceeded [`MAX_RECORD`].
    Oversized {
        /// The claimed body length.
        len: u64,
        /// The format bound.
        max: u32,
    },
    /// A full-length record's checksum does not match its body — corruption,
    /// not a torn write (torn writes only truncate).
    BadChecksum {
        /// Byte offset of the record's length prefix.
        offset: usize,
        /// The checksum stored in the record.
        stored: u32,
        /// The checksum of the bytes actually present.
        computed: u32,
    },
    /// A field held a value outside its domain (bad bool byte, duplicate
    /// `Begin`, out-of-range integer).
    Malformed {
        /// What was malformed.
        what: &'static str,
    },
    /// The log does not open with a `Begin` record.
    MissingBegin,
    /// The `Begin` record disagrees with the plane configuration the caller
    /// is recovering into.
    BeginMismatch,
    /// An op record broke the dense sequence chain (dropped, duplicated or
    /// reordered record).
    SeqBroken {
        /// The sequence number the chain required next.
        expected: u64,
        /// The sequence number found.
        found: u64,
    },
    /// Replaying a logged op against the restored plane produced a different
    /// outcome than the one recorded — the log does not describe this plane.
    Diverged {
        /// Sequence number of the diverging op.
        seq: u64,
    },
    /// Restoring the checkpoint snapshot failed.
    Restore(ScheduleError),
    /// An elastic log describes more epochs than the caller provided shapes
    /// for.
    EpochOutOfRange {
        /// Epoch index the log's live segment belongs to.
        epoch: usize,
        /// Number of epoch shapes the caller supplied.
        epochs: usize,
    },
    /// The underlying log store failed.
    Io(io::ErrorKind),
}

impl std::fmt::Display for WalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WalError::Truncated {
                wanted,
                offset,
                body,
            } => write!(
                f,
                "record truncated: wanted {wanted} bytes at offset {offset}, body is {body}"
            ),
            WalError::Trailing { extra } => {
                write!(f, "{extra} trailing byte(s) after record body")
            }
            WalError::UnknownTag(tag) => write!(f, "unknown record tag {tag}"),
            WalError::BadCount {
                what,
                count,
                remaining,
            } => write!(
                f,
                "{what} count {count} is impossible with {remaining} body byte(s) remaining"
            ),
            WalError::Oversized { len, max } => {
                write!(f, "record of {len} bytes exceeds the {max}-byte bound")
            }
            WalError::BadChecksum {
                offset,
                stored,
                computed,
            } => write!(
                f,
                "checksum mismatch at offset {offset}: stored {stored:#010x}, computed {computed:#010x}"
            ),
            WalError::Malformed { what } => write!(f, "malformed field: {what}"),
            WalError::MissingBegin => write!(f, "log does not open with a Begin record"),
            WalError::BeginMismatch => {
                write!(f, "Begin record disagrees with the recovering plane's config")
            }
            WalError::SeqBroken { expected, found } => write!(
                f,
                "op sequence broken: expected seq {expected}, found {found}"
            ),
            WalError::Diverged { seq } => write!(
                f,
                "replayed op {seq} produced a different outcome than recorded"
            ),
            WalError::Restore(e) => write!(f, "checkpoint restore failed: {e}"),
            WalError::EpochOutOfRange { epoch, epochs } => write!(
                f,
                "log's live segment is epoch {epoch} but only {epochs} epoch shape(s) were given"
            ),
            WalError::Io(kind) => write!(f, "log store failed: {kind}"),
        }
    }
}

impl std::error::Error for WalError {}

impl From<io::Error> for WalError {
    fn from(e: io::Error) -> WalError {
        WalError::Io(e.kind())
    }
}

// ---- primitive codec -----------------------------------------------------

fn put_u8(out: &mut Vec<u8>, v: u8) {
    out.push(v);
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_usize(out: &mut Vec<u8>, v: usize) {
    put_u64(out, v as u64);
}

fn put_bool(out: &mut Vec<u8>, v: bool) {
    put_u8(out, v as u8);
}

fn put_count(out: &mut Vec<u8>, n: usize) {
    put_u32(out, n as u32);
}

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WalError> {
        if n > self.buf.len() - self.pos {
            return Err(WalError::Truncated {
                wanted: n,
                offset: self.pos,
                body: self.buf.len(),
            });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn u8(&mut self) -> Result<u8, WalError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, WalError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, WalError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    fn usize(&mut self) -> Result<usize, WalError> {
        usize::try_from(self.u64()?).map_err(|_| WalError::Malformed {
            what: "usize out of range",
        })
    }

    fn boolean(&mut self) -> Result<bool, WalError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(WalError::Malformed { what: "bool byte" }),
        }
    }

    /// Reads an element count and guards it against the bytes remaining
    /// (`min_elem` = smallest possible encoded element).
    fn count(&mut self, what: &'static str, min_elem: usize) -> Result<usize, WalError> {
        let n = self.u32()? as usize;
        if n.saturating_mul(min_elem) > self.remaining() {
            return Err(WalError::BadCount {
                what,
                count: n,
                remaining: self.remaining(),
            });
        }
        Ok(n)
    }

    fn done(&self) -> Result<(), WalError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(WalError::Trailing {
                extra: self.buf.len() - self.pos,
            })
        }
    }
}

// ---- list codecs ---------------------------------------------------------

fn put_u64_list(out: &mut Vec<u8>, list: &[u64]) {
    put_count(out, list.len());
    for &v in list {
        put_u64(out, v);
    }
}

fn get_u64_list(c: &mut Cursor<'_>, what: &'static str) -> Result<Vec<u64>, WalError> {
    let n = c.count(what, 8)?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(c.u64()?);
    }
    Ok(out)
}

fn put_usize_list(out: &mut Vec<u8>, list: &[usize]) {
    put_count(out, list.len());
    for &v in list {
        put_usize(out, v);
    }
}

fn get_usize_list(c: &mut Cursor<'_>, what: &'static str) -> Result<Vec<usize>, WalError> {
    let n = c.count(what, 8)?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(c.usize()?);
    }
    Ok(out)
}

fn put_bool_list(out: &mut Vec<u8>, list: &[bool]) {
    put_count(out, list.len());
    for &v in list {
        put_bool(out, v);
    }
}

fn get_bool_list(c: &mut Cursor<'_>, what: &'static str) -> Result<Vec<bool>, WalError> {
    let n = c.count(what, 1)?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(c.boolean()?);
    }
    Ok(out)
}

fn put_u64_usize_pairs(out: &mut Vec<u8>, list: &[(u64, usize)]) {
    put_count(out, list.len());
    for &(a, b) in list {
        put_u64(out, a);
        put_usize(out, b);
    }
}

fn get_u64_usize_pairs(
    c: &mut Cursor<'_>,
    what: &'static str,
) -> Result<Vec<(u64, usize)>, WalError> {
    let n = c.count(what, 16)?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push((c.u64()?, c.usize()?));
    }
    Ok(out)
}

fn put_usize_u64_pairs(out: &mut Vec<u8>, list: &[(usize, u64)]) {
    put_count(out, list.len());
    for &(a, b) in list {
        put_usize(out, a);
        put_u64(out, b);
    }
}

fn get_usize_u64_pairs(
    c: &mut Cursor<'_>,
    what: &'static str,
) -> Result<Vec<(usize, u64)>, WalError> {
    let n = c.count(what, 16)?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push((c.usize()?, c.u64()?));
    }
    Ok(out)
}

fn put_u64_u64_pairs(out: &mut Vec<u8>, list: &[(u64, u64)]) {
    put_count(out, list.len());
    for &(a, b) in list {
        put_u64(out, a);
        put_u64(out, b);
    }
}

fn get_u64_u64_pairs(c: &mut Cursor<'_>, what: &'static str) -> Result<Vec<(u64, u64)>, WalError> {
    let n = c.count(what, 16)?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push((c.u64()?, c.u64()?));
    }
    Ok(out)
}

// ---- ScheduleError codec -------------------------------------------------

const ERR_INVALID_WORKER: u8 = 1;
const ERR_UNKNOWN_TOKEN: u8 = 2;
const ERR_DUPLICATE_REPORT: u8 = 3;
const ERR_CORRUPT_BUCKET: u8 = 4;
const ERR_MISSING_SAMPLE_OWNER: u8 = 5;
const ERR_MISSING_DEP_HOLDER: u8 = 6;
const ERR_CTD_CONFIG_MISSING: u8 = 7;
const ERR_EMPTY_CTD_SUBSET: u8 = 8;
const ERR_LEVEL_OUT_OF_RANGE: u8 = 9;
const ERR_DUPLICATE_SYNC: u8 = 10;
const ERR_OVER_GENERATION: u8 = 11;
const ERR_STALE_REPORT: u8 = 12;
const ERR_WORKER_UNAVAILABLE: u8 = 13;
const ERR_BAD_LIVENESS: u8 = 14;
const ERR_NO_ALIVE_WORKERS: u8 = 15;

fn put_schedule_error(out: &mut Vec<u8>, e: &ScheduleError) {
    match e {
        ScheduleError::InvalidWorker { worker, n_workers } => {
            put_u8(out, ERR_INVALID_WORKER);
            put_usize(out, *worker);
            put_usize(out, *n_workers);
        }
        ScheduleError::UnknownToken { token } => {
            put_u8(out, ERR_UNKNOWN_TOKEN);
            put_u64(out, token.0);
        }
        ScheduleError::DuplicateReport { token } => {
            put_u8(out, ERR_DUPLICATE_REPORT);
            put_u64(out, token.0);
        }
        ScheduleError::CorruptBucket {
            bucket,
            level,
            position,
        } => {
            put_u8(out, ERR_CORRUPT_BUCKET);
            put_usize(out, *bucket);
            put_usize(out, *level);
            put_usize(out, *position);
        }
        ScheduleError::MissingSampleOwner { token } => {
            put_u8(out, ERR_MISSING_SAMPLE_OWNER);
            put_u64(out, token.0);
        }
        ScheduleError::MissingDependencyHolder { token, dep } => {
            put_u8(out, ERR_MISSING_DEP_HOLDER);
            put_u64(out, token.0);
            put_u64(out, dep.0);
        }
        ScheduleError::CtdConfigMissing { level } => {
            put_u8(out, ERR_CTD_CONFIG_MISSING);
            put_usize(out, *level);
        }
        ScheduleError::EmptyCtdSubset { level } => {
            put_u8(out, ERR_EMPTY_CTD_SUBSET);
            put_usize(out, *level);
        }
        ScheduleError::LevelOutOfRange { level, levels } => {
            put_u8(out, ERR_LEVEL_OUT_OF_RANGE);
            put_usize(out, *level);
            put_usize(out, *levels);
        }
        ScheduleError::DuplicateSync { level, iteration } => {
            put_u8(out, ERR_DUPLICATE_SYNC);
            put_usize(out, *level);
            put_u64(out, *iteration);
        }
        ScheduleError::OverGeneration { level, iteration } => {
            put_u8(out, ERR_OVER_GENERATION);
            put_usize(out, *level);
            put_u64(out, *iteration);
        }
        ScheduleError::StaleReport { worker, token } => {
            put_u8(out, ERR_STALE_REPORT);
            put_usize(out, *worker);
            put_u64(out, token.0);
        }
        ScheduleError::WorkerUnavailable { worker } => {
            put_u8(out, ERR_WORKER_UNAVAILABLE);
            put_usize(out, *worker);
        }
        ScheduleError::BadLivenessTransition { worker, alive } => {
            put_u8(out, ERR_BAD_LIVENESS);
            put_usize(out, *worker);
            put_bool(out, *alive);
        }
        ScheduleError::NoAliveWorkers => put_u8(out, ERR_NO_ALIVE_WORKERS),
    }
}

fn get_schedule_error(c: &mut Cursor<'_>) -> Result<ScheduleError, WalError> {
    Ok(match c.u8()? {
        ERR_INVALID_WORKER => ScheduleError::InvalidWorker {
            worker: c.usize()?,
            n_workers: c.usize()?,
        },
        ERR_UNKNOWN_TOKEN => ScheduleError::UnknownToken {
            token: TokenId(c.u64()?),
        },
        ERR_DUPLICATE_REPORT => ScheduleError::DuplicateReport {
            token: TokenId(c.u64()?),
        },
        ERR_CORRUPT_BUCKET => ScheduleError::CorruptBucket {
            bucket: c.usize()?,
            level: c.usize()?,
            position: c.usize()?,
        },
        ERR_MISSING_SAMPLE_OWNER => ScheduleError::MissingSampleOwner {
            token: TokenId(c.u64()?),
        },
        ERR_MISSING_DEP_HOLDER => ScheduleError::MissingDependencyHolder {
            token: TokenId(c.u64()?),
            dep: TokenId(c.u64()?),
        },
        ERR_CTD_CONFIG_MISSING => ScheduleError::CtdConfigMissing { level: c.usize()? },
        ERR_EMPTY_CTD_SUBSET => ScheduleError::EmptyCtdSubset { level: c.usize()? },
        ERR_LEVEL_OUT_OF_RANGE => ScheduleError::LevelOutOfRange {
            level: c.usize()?,
            levels: c.usize()?,
        },
        ERR_DUPLICATE_SYNC => ScheduleError::DuplicateSync {
            level: c.usize()?,
            iteration: c.u64()?,
        },
        ERR_OVER_GENERATION => ScheduleError::OverGeneration {
            level: c.usize()?,
            iteration: c.u64()?,
        },
        ERR_STALE_REPORT => ScheduleError::StaleReport {
            worker: c.usize()?,
            token: TokenId(c.u64()?),
        },
        ERR_WORKER_UNAVAILABLE => ScheduleError::WorkerUnavailable { worker: c.usize()? },
        ERR_BAD_LIVENESS => ScheduleError::BadLivenessTransition {
            worker: c.usize()?,
            alive: c.boolean()?,
        },
        ERR_NO_ALIVE_WORKERS => ScheduleError::NoAliveWorkers,
        tag => return Err(WalError::UnknownTag(tag)),
    })
}

// ---- CoordOp codec -------------------------------------------------------

const KIND_REQUEST: u8 = 1;
const KIND_POP: u8 = 2;
const KIND_REPORT: u8 = 3;
const KIND_SYNC_FINISHED: u8 = 4;
const KIND_WORKER_CRASHED: u8 = 5;
const KIND_WORKER_RESTARTED: u8 = 6;
const KIND_LEASE_EXPIRED: u8 = 7;

fn put_op_kind(out: &mut Vec<u8>, kind: &OpKind) {
    match kind {
        OpKind::Request { worker, now } => {
            put_u8(out, KIND_REQUEST);
            put_usize(out, *worker);
            put_u64(out, now.as_nanos());
        }
        OpKind::PopReadyGrant { now } => {
            put_u8(out, KIND_POP);
            put_u64(out, now.as_nanos());
        }
        OpKind::Report { worker, token } => {
            put_u8(out, KIND_REPORT);
            put_usize(out, *worker);
            put_u64(out, *token);
        }
        OpKind::SyncFinished { level, iteration } => {
            put_u8(out, KIND_SYNC_FINISHED);
            put_usize(out, *level);
            put_u64(out, *iteration);
        }
        OpKind::WorkerCrashed { worker } => {
            put_u8(out, KIND_WORKER_CRASHED);
            put_usize(out, *worker);
        }
        OpKind::WorkerRestarted { worker } => {
            put_u8(out, KIND_WORKER_RESTARTED);
            put_usize(out, *worker);
        }
        OpKind::LeaseExpired { token, attempt } => {
            put_u8(out, KIND_LEASE_EXPIRED);
            put_u64(out, *token);
            put_u64(out, *attempt);
        }
    }
}

fn get_op_kind(c: &mut Cursor<'_>) -> Result<OpKind, WalError> {
    Ok(match c.u8()? {
        KIND_REQUEST => OpKind::Request {
            worker: c.usize()?,
            now: SimTime::from_nanos(c.u64()?),
        },
        KIND_POP => OpKind::PopReadyGrant {
            now: SimTime::from_nanos(c.u64()?),
        },
        KIND_REPORT => OpKind::Report {
            worker: c.usize()?,
            token: c.u64()?,
        },
        KIND_SYNC_FINISHED => OpKind::SyncFinished {
            level: c.usize()?,
            iteration: c.u64()?,
        },
        KIND_WORKER_CRASHED => OpKind::WorkerCrashed { worker: c.usize()? },
        KIND_WORKER_RESTARTED => OpKind::WorkerRestarted { worker: c.usize()? },
        KIND_LEASE_EXPIRED => OpKind::LeaseExpired {
            token: c.u64()?,
            attempt: c.u64()?,
        },
        tag => return Err(WalError::UnknownTag(tag)),
    })
}

const OUT_GRANTED: u8 = 1;
const OUT_NO_GRANT: u8 = 2;
const OUT_SYNCED: u8 = 3;
const OUT_REVOKED: u8 = 4;
const OUT_EXPIRED: u8 = 5;
const OUT_NO_LEASE: u8 = 6;
const OUT_DONE: u8 = 7;
const OUT_FAILED: u8 = 8;

fn put_op_outcome(out: &mut Vec<u8>, outcome: &OpOutcome) {
    match outcome {
        OpOutcome::Granted {
            worker,
            token,
            attempt,
            conflict,
            fetches,
        } => {
            put_u8(out, OUT_GRANTED);
            put_usize(out, *worker);
            put_u64(out, *token);
            put_u64(out, *attempt);
            put_bool(out, *conflict);
            put_usize_u64_pairs(out, fetches);
        }
        OpOutcome::NoGrant => put_u8(out, OUT_NO_GRANT),
        OpOutcome::Synced { syncs } => {
            put_u8(out, OUT_SYNCED);
            put_usize_u64_pairs(out, syncs);
        }
        OpOutcome::Revoked { tokens } => {
            put_u8(out, OUT_REVOKED);
            put_u64_list(out, tokens);
        }
        OpOutcome::Expired {
            worker,
            revoked,
            quarantined,
        } => {
            put_u8(out, OUT_EXPIRED);
            put_usize(out, *worker);
            put_u64_list(out, revoked);
            put_bool(out, *quarantined);
        }
        OpOutcome::NoLease => put_u8(out, OUT_NO_LEASE),
        OpOutcome::Done => put_u8(out, OUT_DONE),
        OpOutcome::Failed(e) => {
            put_u8(out, OUT_FAILED);
            put_schedule_error(out, e);
        }
    }
}

fn get_op_outcome(c: &mut Cursor<'_>) -> Result<OpOutcome, WalError> {
    Ok(match c.u8()? {
        OUT_GRANTED => OpOutcome::Granted {
            worker: c.usize()?,
            token: c.u64()?,
            attempt: c.u64()?,
            conflict: c.boolean()?,
            fetches: get_usize_u64_pairs(c, "fetches")?,
        },
        OUT_NO_GRANT => OpOutcome::NoGrant,
        OUT_SYNCED => OpOutcome::Synced {
            syncs: get_usize_u64_pairs(c, "syncs")?,
        },
        OUT_REVOKED => OpOutcome::Revoked {
            tokens: get_u64_list(c, "revoked tokens")?,
        },
        OUT_EXPIRED => OpOutcome::Expired {
            worker: c.usize()?,
            revoked: get_u64_list(c, "expired revocations")?,
            quarantined: c.boolean()?,
        },
        OUT_NO_LEASE => OpOutcome::NoLease,
        OUT_DONE => OpOutcome::Done,
        OUT_FAILED => OpOutcome::Failed(get_schedule_error(c)?),
        tag => return Err(WalError::UnknownTag(tag)),
    })
}

fn put_coord_op(out: &mut Vec<u8>, op: &CoordOp) {
    put_op_kind(out, &op.kind);
    put_op_outcome(out, &op.outcome);
}

fn get_coord_op(c: &mut Cursor<'_>) -> Result<CoordOp, WalError> {
    Ok(CoordOp {
        kind: get_op_kind(c)?,
        outcome: get_op_outcome(c)?,
    })
}

// ---- Token codec ---------------------------------------------------------

fn put_token(out: &mut Vec<u8>, t: &Token) {
    put_u64(out, t.id.0);
    put_usize(out, t.level);
    put_u64(out, t.iteration);
    put_u64(out, t.seq);
    put_u64(out, t.batch);
    put_count(out, t.deps.len());
    for d in &t.deps {
        put_u64(out, d.0);
    }
    match t.sample_owner {
        Some(w) => {
            put_u8(out, 1);
            put_usize(out, w);
        }
        None => put_u8(out, 0),
    }
}

fn get_token(c: &mut Cursor<'_>) -> Result<Token, WalError> {
    let id = TokenId(c.u64()?);
    let level = c.usize()?;
    let iteration = c.u64()?;
    let seq = c.u64()?;
    let batch = c.u64()?;
    let n_deps = c.count("token deps", 8)?;
    let mut deps = Vec::with_capacity(n_deps);
    for _ in 0..n_deps {
        deps.push(TokenId(c.u64()?));
    }
    let sample_owner = match c.u8()? {
        0 => None,
        1 => Some(c.usize()?),
        _ => {
            return Err(WalError::Malformed {
                what: "sample_owner flag",
            })
        }
    };
    Ok(Token {
        id,
        level,
        iteration,
        seq,
        batch,
        deps,
        sample_owner,
    })
}

// ---- ServerSnapshot codec ------------------------------------------------

fn put_snapshot(out: &mut Vec<u8>, s: &ServerSnapshot) {
    put_u64(out, s.released_roots);
    put_u64(out, s.next_token_id);
    put_count(out, s.stbs.len());
    for bucket in &s.stbs {
        put_count(out, bucket.len());
        for level in bucket {
            put_u64_list(out, level);
        }
    }
    put_count(out, s.pending.len());
    for level in &s.pending {
        put_u64_usize_pairs(out, level);
    }
    put_u64_list(out, &s.synced_upto);
    put_count(out, s.synced_out_of_order.len());
    for level in &s.synced_out_of_order {
        put_u64_list(out, level);
    }
    put_count(out, s.completed.len());
    for level in &s.completed {
        put_u64_u64_pairs(out, level);
    }
    put_count(out, s.gen_buffers.len());
    for level in &s.gen_buffers {
        put_count(out, level.len());
        for (iteration, ids) in level {
            put_u64(out, *iteration);
            put_u64_list(out, ids);
        }
    }
    put_u64_usize_pairs(out, &s.holder);
    put_usize_list(out, &s.waiting);
    put_u64_list(out, &s.helpers);
    put_bool_list(out, &s.alive);
    put_bool_list(out, &s.quarantined);
    put_count(out, s.leases.len());
    for &(token, worker, attempt) in &s.leases {
        put_u64(out, token);
        put_usize(out, worker);
        put_u64(out, attempt);
    }
    put_u64_u64_pairs(out, &s.attempts);
    put_u64_list(out, &s.expiry_counts);
    put_usize_list(out, &s.data_home);
    put_usize_u64_pairs(out, &s.parked);
}

fn get_snapshot(c: &mut Cursor<'_>) -> Result<ServerSnapshot, WalError> {
    let released_roots = c.u64()?;
    let next_token_id = c.u64()?;
    let n_buckets = c.count("stb buckets", 4)?;
    let mut stbs = Vec::with_capacity(n_buckets);
    for _ in 0..n_buckets {
        let n_levels = c.count("stb levels", 4)?;
        let mut bucket = Vec::with_capacity(n_levels);
        for _ in 0..n_levels {
            bucket.push(get_u64_list(c, "stb queue")?);
        }
        stbs.push(bucket);
    }
    let n_pending = c.count("pending levels", 4)?;
    let mut pending = Vec::with_capacity(n_pending);
    for _ in 0..n_pending {
        pending.push(get_u64_usize_pairs(c, "pending tokens")?);
    }
    let synced_upto = get_u64_list(c, "synced_upto")?;
    let n_ooo = c.count("out-of-order levels", 4)?;
    let mut synced_out_of_order = Vec::with_capacity(n_ooo);
    for _ in 0..n_ooo {
        synced_out_of_order.push(get_u64_list(c, "out-of-order syncs")?);
    }
    let n_completed = c.count("completed levels", 4)?;
    let mut completed = Vec::with_capacity(n_completed);
    for _ in 0..n_completed {
        completed.push(get_u64_u64_pairs(c, "completion counts")?);
    }
    let n_gen = c.count("gen-buffer levels", 4)?;
    let mut gen_buffers = Vec::with_capacity(n_gen);
    for _ in 0..n_gen {
        let n_iters = c.count("gen-buffer iterations", 12)?;
        let mut level = Vec::with_capacity(n_iters);
        for _ in 0..n_iters {
            let iteration = c.u64()?;
            level.push((iteration, get_u64_list(c, "gen-buffer tokens")?));
        }
        gen_buffers.push(level);
    }
    let holder = get_u64_usize_pairs(c, "holders")?;
    let waiting = get_usize_list(c, "waiting workers")?;
    let helpers = get_u64_list(c, "helpers")?;
    let alive = get_bool_list(c, "alive flags")?;
    let quarantined = get_bool_list(c, "quarantine flags")?;
    let n_leases = c.count("leases", 24)?;
    let mut leases = Vec::with_capacity(n_leases);
    for _ in 0..n_leases {
        leases.push((c.u64()?, c.usize()?, c.u64()?));
    }
    let attempts = get_u64_u64_pairs(c, "attempts")?;
    let expiry_counts = get_u64_list(c, "expiry counts")?;
    let data_home = get_usize_list(c, "data homes")?;
    let parked = get_usize_u64_pairs(c, "parked tokens")?;
    Ok(ServerSnapshot {
        released_roots,
        next_token_id,
        stbs,
        pending,
        synced_upto,
        synced_out_of_order,
        completed,
        gen_buffers,
        holder,
        waiting,
        helpers,
        alive,
        quarantined,
        leases,
        attempts,
        expiry_counts,
        data_home,
        parked,
    })
}

// ---- records -------------------------------------------------------------

const TAG_BEGIN: u8 = 1;
const TAG_OP: u8 = 2;
const TAG_CHECKPOINT: u8 = 3;
const TAG_RESIZE: u8 = 4;

/// One log record.
#[derive(Clone, PartialEq, Debug)]
pub enum WalRecord {
    /// Opens the log: the plane shape the records describe. Recovery refuses
    /// a log whose `Begin` disagrees with the plane being rebuilt.
    Begin {
        /// Shard count of the writing plane.
        shards: u32,
        /// Cluster size.
        n_workers: u32,
        /// Total iterations of the run.
        max_iterations: u64,
    },
    /// One logged control-plane operation: inputs plus outcome digest.
    Op {
        /// Dense, zero-based sequence number (gap/duplicate detection).
        seq: u64,
        /// The operation.
        op: CoordOp,
    },
    /// An epoch boundary in an elastic log: the cluster resized at
    /// `iteration` to `n_workers` workers. The next `Begin` record opens the
    /// new epoch's segment (its writer restarts op sequencing at 0).
    /// Fixed-membership recovery ([`recover`]) rejects these; elastic
    /// recovery ([`recover_elastic`]) uses them to locate the live segment.
    Resize {
        /// Global iteration the resize took effect at.
        iteration: u64,
        /// Cluster size *after* the resize.
        n_workers: u32,
    },
    /// A full-state checkpoint; replay resumes from the latest one.
    Checkpoint {
        /// Sequence number of the *next* op after this checkpoint.
        seq: u64,
        /// Opaque runtime payload (e.g. the live server's committed
        /// completion schedule) restored verbatim on recovery.
        payload: Vec<u8>,
        /// The token table, in id order.
        tokens: Vec<Token>,
        /// The scheduling state (boxed: a snapshot dwarfs the other
        /// variants, and records travel through `Vec<WalRecord>`).
        snapshot: Box<ServerSnapshot>,
    },
}

fn encode_body(rec: &WalRecord) -> Vec<u8> {
    let mut body = Vec::new();
    match rec {
        WalRecord::Begin {
            shards,
            n_workers,
            max_iterations,
        } => {
            put_u8(&mut body, TAG_BEGIN);
            put_u32(&mut body, *shards);
            put_u32(&mut body, *n_workers);
            put_u64(&mut body, *max_iterations);
        }
        WalRecord::Op { seq, op } => {
            put_u8(&mut body, TAG_OP);
            put_u64(&mut body, *seq);
            put_coord_op(&mut body, op);
        }
        WalRecord::Resize {
            iteration,
            n_workers,
        } => {
            put_u8(&mut body, TAG_RESIZE);
            put_u64(&mut body, *iteration);
            put_u32(&mut body, *n_workers);
        }
        WalRecord::Checkpoint {
            seq,
            payload,
            tokens,
            snapshot,
        } => {
            put_u8(&mut body, TAG_CHECKPOINT);
            put_u64(&mut body, *seq);
            put_count(&mut body, payload.len());
            body.extend_from_slice(payload);
            put_count(&mut body, tokens.len());
            for t in tokens {
                put_token(&mut body, t);
            }
            put_snapshot(&mut body, snapshot);
        }
    }
    body
}

fn decode_body(body: &[u8]) -> Result<WalRecord, WalError> {
    let mut c = Cursor::new(body);
    let rec = match c.u8()? {
        TAG_BEGIN => WalRecord::Begin {
            shards: c.u32()?,
            n_workers: c.u32()?,
            max_iterations: c.u64()?,
        },
        TAG_OP => WalRecord::Op {
            seq: c.u64()?,
            op: get_coord_op(&mut c)?,
        },
        TAG_RESIZE => WalRecord::Resize {
            iteration: c.u64()?,
            n_workers: c.u32()?,
        },
        TAG_CHECKPOINT => {
            let seq = c.u64()?;
            let n_payload = c.count("checkpoint payload", 1)?;
            let payload = c.take(n_payload)?.to_vec();
            let n_tokens = c.count("checkpoint tokens", 41)?;
            let mut tokens = Vec::with_capacity(n_tokens);
            for _ in 0..n_tokens {
                tokens.push(get_token(&mut c)?);
            }
            let snapshot = Box::new(get_snapshot(&mut c)?);
            WalRecord::Checkpoint {
                seq,
                payload,
                tokens,
                snapshot,
            }
        }
        tag => return Err(WalError::UnknownTag(tag)),
    };
    c.done()?;
    Ok(rec)
}

/// Encodes one record with its length prefix and checksum.
pub fn encode_record(rec: &WalRecord) -> Vec<u8> {
    let body = encode_body(rec);
    let mut out = Vec::with_capacity(8 + body.len());
    put_u32(&mut out, body.len() as u32);
    put_u32(&mut out, crc32(&body));
    out.extend_from_slice(&body);
    out
}

/// A decoded log: every complete record, plus the length of the torn tail
/// (0 when the log ends on a record boundary).
#[derive(Clone, PartialEq, Debug)]
pub struct ReadLog {
    /// The complete records, in log order.
    pub records: Vec<WalRecord>,
    /// Bytes of a final record cut short by a crash mid-write, dropped
    /// cleanly (a resumed writer truncates them away).
    pub torn_bytes: usize,
}

impl ReadLog {
    /// Byte length of the valid log prefix (everything before the torn tail).
    pub fn valid_len(&self, total: usize) -> usize {
        total - self.torn_bytes
    }
}

/// Decodes a whole log. Never panics: a torn tail is dropped cleanly, while
/// a checksum mismatch or malformed complete record is an error (corruption,
/// not a crash artifact).
pub fn read_log(bytes: &[u8]) -> Result<ReadLog, WalError> {
    let mut records = Vec::new();
    let mut pos = 0usize;
    while pos < bytes.len() {
        let remaining = bytes.len() - pos;
        if remaining < 8 {
            // Crash landed inside the prefix or checksum of the last record.
            return Ok(ReadLog {
                records,
                torn_bytes: remaining,
            });
        }
        let len = u32::from_le_bytes([bytes[pos], bytes[pos + 1], bytes[pos + 2], bytes[pos + 3]]);
        if len > MAX_RECORD {
            return Err(WalError::Oversized {
                len: len as u64,
                max: MAX_RECORD,
            });
        }
        let len = len as usize;
        if remaining - 8 < len {
            // Crash landed inside the body of the last record.
            return Ok(ReadLog {
                records,
                torn_bytes: remaining,
            });
        }
        let stored = u32::from_le_bytes([
            bytes[pos + 4],
            bytes[pos + 5],
            bytes[pos + 6],
            bytes[pos + 7],
        ]);
        let body = &bytes[pos + 8..pos + 8 + len];
        let computed = crc32(body);
        if stored != computed {
            return Err(WalError::BadChecksum {
                offset: pos,
                stored,
                computed,
            });
        }
        records.push(decode_body(body)?);
        pos += 8 + len;
    }
    Ok(ReadLog {
        records,
        torn_bytes: 0,
    })
}

// ---- sinks ---------------------------------------------------------------

/// Where committed log bytes go. `append` stages bytes at the end of the
/// log; `sync` makes everything appended so far durable. The control plane
/// calls them as a pair via [`WalWriter::commit`] before any logged result
/// becomes externally visible.
pub trait WalSink {
    /// Appends bytes at the end of the log.
    fn append(&mut self, bytes: &[u8]) -> io::Result<()>;
    /// Makes every appended byte durable (fsync or equivalent).
    fn sync(&mut self) -> io::Result<()>;
}

/// An in-memory log, shared by handle: the simulator's stand-in for a file.
/// Clones share the same buffer, so the crash injector can read (and
/// truncate) exactly what the plane had committed. Deliberately
/// single-threaded (`Rc`) — the plane and the injector live on one thread.
#[derive(Clone, Debug, Default)]
pub struct MemWal {
    buf: Rc<RefCell<Vec<u8>>>,
}

impl MemWal {
    /// An empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// A copy of the committed bytes.
    pub fn bytes(&self) -> Vec<u8> {
        self.buf.borrow().clone()
    }

    /// Committed length in bytes.
    pub fn len(&self) -> usize {
        self.buf.borrow().len()
    }

    /// True when nothing has been committed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops everything after `len` (discarding a torn tail on resume).
    pub fn truncate(&self, len: usize) {
        self.buf.borrow_mut().truncate(len);
    }
}

impl WalSink for MemWal {
    fn append(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.buf.borrow_mut().extend_from_slice(bytes);
        Ok(())
    }

    fn sync(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// A file-backed log. `sync` is `File::sync_data` — the real fsync
/// discipline the in-memory sink only models.
#[derive(Debug)]
pub struct FileWal {
    file: fs::File,
}

impl FileWal {
    /// Creates (or truncates) the log file.
    pub fn create(path: &Path) -> io::Result<FileWal> {
        let file = fs::OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(path)?;
        Ok(FileWal { file })
    }

    /// Reopens an existing log for appending, truncating a torn tail first:
    /// `valid_len` is [`ReadLog::valid_len`] of the bytes recovery read.
    pub fn resume(path: &Path, valid_len: u64) -> io::Result<FileWal> {
        let mut file = fs::OpenOptions::new().write(true).open(path)?;
        file.set_len(valid_len)?;
        file.seek(SeekFrom::End(0))?;
        Ok(FileWal { file })
    }
}

impl WalSink for FileWal {
    fn append(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.file.write_all(bytes)
    }

    fn sync(&mut self) -> io::Result<()> {
        self.file.sync_data()
    }
}

// ---- writer --------------------------------------------------------------

/// Appends records to a [`WalSink`] with dense op sequence numbers.
///
/// Appends *stage*; [`commit`](Self::commit) writes and syncs. The staging
/// split exists so the fsync discipline is a visible call site the
/// `no-unflushed-wal` lint rule can check.
pub struct WalWriter {
    sink: Box<dyn WalSink>,
    seq: u64,
    staged: Vec<u8>,
}

impl std::fmt::Debug for WalWriter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WalWriter")
            .field("seq", &self.seq)
            .field("staged", &self.staged.len())
            .finish()
    }
}

impl WalWriter {
    /// A writer over a fresh log (first op gets seq 0).
    pub fn new(sink: Box<dyn WalSink>) -> WalWriter {
        WalWriter {
            sink,
            seq: 0,
            staged: Vec::new(),
        }
    }

    /// A writer resuming an existing log: `next_seq` is
    /// [`Recovered::next_seq`] from the recovery that read it.
    pub fn resume(sink: Box<dyn WalSink>, next_seq: u64) -> WalWriter {
        WalWriter {
            sink,
            seq: next_seq,
            staged: Vec::new(),
        }
    }

    /// Sequence number the next [`append_op`](Self::append_op) will stamp.
    pub fn next_seq(&self) -> u64 {
        self.seq
    }

    /// Stages the opening `Begin` record.
    pub fn append_begin(&mut self, shards: u32, n_workers: u32, max_iterations: u64) {
        self.staged
            .extend_from_slice(&encode_record(&WalRecord::Begin {
                shards,
                n_workers,
                max_iterations,
            }));
    }

    /// Stages one op record, stamping and advancing the sequence number.
    pub fn append_op(&mut self, op: &CoordOp) {
        let seq = self.seq;
        self.seq += 1;
        self.staged
            .extend_from_slice(&encode_record(&WalRecord::Op {
                seq,
                op: op.clone(),
            }));
    }

    /// Stages a `Resize` epoch-boundary marker. The elastic driver appends
    /// one *between* epochs: after the old epoch's plane detaches and before
    /// the new epoch's plane stages its `Begin`.
    pub fn append_resize(&mut self, iteration: u64, n_workers: u32) {
        self.staged
            .extend_from_slice(&encode_record(&WalRecord::Resize {
                iteration,
                n_workers,
            }));
    }

    /// Stages a checkpoint of the given state at the current sequence point.
    pub fn append_checkpoint(
        &mut self,
        payload: &[u8],
        tokens: &BTreeMap<TokenId, Token>,
        snapshot: &ServerSnapshot,
    ) {
        self.staged
            .extend_from_slice(&encode_record(&WalRecord::Checkpoint {
                seq: self.seq,
                payload: payload.to_vec(),
                tokens: tokens.values().cloned().collect(),
                snapshot: Box::new(snapshot.clone()),
            }));
    }

    /// Writes and syncs everything staged — the fsync-discipline call that
    /// must land before a logged result becomes externally visible.
    pub fn commit(&mut self) -> io::Result<()> {
        self.sink.append(&self.staged)?;
        self.sink.sync()?;
        self.staged.clear();
        Ok(())
    }
}

// ---- recovery ------------------------------------------------------------

/// The result of replaying a log: a plane snapshot-equal to the one that
/// wrote it, plus everything a runtime needs to resume.
pub struct Recovered {
    /// The rebuilt control plane (WAL not yet attached — call
    /// [`ControlPlane::resume_wal`] with [`Recovered::next_seq`]).
    pub plane: ControlPlane,
    /// The latest checkpoint's opaque payload (empty if no checkpoint).
    pub payload: Vec<u8>,
    /// The op suffix replayed after the latest checkpoint.
    pub ops: Vec<CoordOp>,
    /// Bytes of the torn tail the reader dropped (truncate them before
    /// resuming a file-backed log).
    pub torn_bytes: usize,
    /// Sequence number the resumed writer must continue from.
    pub next_seq: u64,
}

/// Rebuilds the control plane a log describes: restore the latest
/// checkpoint (or a fresh plane), then replay the op suffix through
/// [`apply_op`], verifying every recorded outcome digest. Strict: a broken
/// sequence chain or a diverging outcome is an error — `fela-check`'s WAL
/// rule is the lenient, multi-diagnostic counterpart.
///
/// Recovery cost is bounded by the checkpoint interval, not the run length:
/// every frame's checksum and tag/sequence header is verified, but only the
/// latest checkpoint and the ops after it are fully decoded. Superseded
/// checkpoints — each carrying a whole token table — are checksummed and
/// skipped. ([`read_log`] remains the full-decode reader; `fela-check` uses
/// it to audit every record body.)
pub fn recover(
    bytes: &[u8],
    plan: &TokenPlan,
    cfg: &FelaConfig,
    meta: &[LevelMeta],
    n_workers: usize,
    max_iterations: u64,
) -> Result<Recovered, WalError> {
    // Pass 1: frame scan. Validates framing and checksums exactly as
    // `read_log` does, but only peeks the fixed-offset tag/seq header of
    // each body, locating the latest checkpoint without decoding the
    // superseded ones.
    let mut frames: Vec<&[u8]> = Vec::new();
    let mut torn_bytes = 0usize;
    let mut pos = 0usize;
    while pos < bytes.len() {
        let remaining = bytes.len() - pos;
        if remaining < 8 {
            torn_bytes = remaining;
            break;
        }
        let len = u32::from_le_bytes([bytes[pos], bytes[pos + 1], bytes[pos + 2], bytes[pos + 3]]);
        if len > MAX_RECORD {
            return Err(WalError::Oversized {
                len: len as u64,
                max: MAX_RECORD,
            });
        }
        let len = len as usize;
        if remaining - 8 < len {
            torn_bytes = remaining;
            break;
        }
        let stored = u32::from_le_bytes([
            bytes[pos + 4],
            bytes[pos + 5],
            bytes[pos + 6],
            bytes[pos + 7],
        ]);
        let body = &bytes[pos + 8..pos + 8 + len];
        let computed = crc32(body);
        if stored != computed {
            return Err(WalError::BadChecksum {
                offset: pos,
                stored,
                computed,
            });
        }
        frames.push(body);
        pos += 8 + len;
    }
    let first = match frames.first() {
        Some(body) => *body,
        None => return Err(WalError::MissingBegin),
    };
    match decode_body(first)? {
        WalRecord::Begin {
            shards,
            n_workers: nw,
            max_iterations: mi,
        } => {
            let want_shards = cfg.shards.max(1) as u32;
            if shards != want_shards || nw as usize != n_workers || mi != max_iterations {
                return Err(WalError::BeginMismatch);
            }
        }
        _ => return Err(WalError::MissingBegin),
    }
    let mut expected_seq = 0u64;
    let mut checkpoint_at: Option<usize> = None;
    for (i, body) in frames.iter().enumerate().skip(1) {
        match body.first().copied() {
            Some(tag @ (TAG_OP | TAG_CHECKPOINT)) if body.len() >= 9 => {
                let seq = u64::from_le_bytes([
                    body[1], body[2], body[3], body[4], body[5], body[6], body[7], body[8],
                ]);
                if seq != expected_seq {
                    return Err(WalError::SeqBroken {
                        expected: expected_seq,
                        found: seq,
                    });
                }
                if tag == TAG_OP {
                    expected_seq += 1;
                } else {
                    checkpoint_at = Some(i);
                }
            }
            Some(TAG_BEGIN) => {
                return Err(WalError::Malformed {
                    what: "duplicate Begin record",
                })
            }
            Some(TAG_RESIZE) => {
                return Err(WalError::Malformed {
                    what: "Resize record inside a fixed-membership segment (use recover_elastic)",
                })
            }
            Some(TAG_OP) | Some(TAG_CHECKPOINT) | None => {
                // Too short for its seq header (or empty) — decode for the
                // precise malformed-record error.
                decode_body(body)?;
                return Err(WalError::Malformed {
                    what: "truncated record header",
                });
            }
            Some(tag) => return Err(WalError::UnknownTag(tag)),
        }
    }
    // Pass 2: decode only what recovery needs — the latest checkpoint and
    // the op suffix after it.
    let suffix_start = checkpoint_at.map_or(1, |i| i + 1);
    let checkpoint: Option<(Vec<u8>, Vec<Token>, Box<ServerSnapshot>)> = match checkpoint_at {
        Some(i) => match decode_body(frames[i])? {
            WalRecord::Checkpoint {
                payload,
                tokens,
                snapshot,
                ..
            } => Some((payload, tokens, snapshot)),
            _ => {
                return Err(WalError::Malformed {
                    what: "checkpoint header on a non-checkpoint body",
                })
            }
        },
        None => None,
    };
    let mut suffix: Vec<CoordOp> = Vec::with_capacity(frames.len() - suffix_start);
    for body in &frames[suffix_start..] {
        match decode_body(body)? {
            WalRecord::Op { op, .. } => suffix.push(op),
            _ => {
                return Err(WalError::Malformed {
                    what: "op header on a non-op body",
                })
            }
        }
    }
    let (payload, mut plane) = match checkpoint {
        Some((payload, tokens, snapshot)) => {
            let table: BTreeMap<TokenId, Token> = tokens.into_iter().map(|t| (t.id, t)).collect();
            let plane = ControlPlane::restore(
                plan.clone(),
                cfg.clone(),
                meta.to_vec(),
                n_workers,
                max_iterations,
                table,
                &snapshot,
            )
            .map_err(WalError::Restore)?;
            (payload, plane)
        }
        None => (
            Vec::new(),
            ControlPlane::new(
                plan.clone(),
                cfg.clone(),
                meta.to_vec(),
                n_workers,
                max_iterations,
            ),
        ),
    };
    let first_seq = expected_seq - suffix.len() as u64;
    for (i, op) in suffix.iter().enumerate() {
        let outcome = apply_op(&mut plane, &op.kind);
        if outcome != op.outcome {
            return Err(WalError::Diverged {
                seq: first_seq + i as u64,
            });
        }
    }
    Ok(Recovered {
        plane,
        payload,
        ops: suffix,
        torn_bytes,
        next_seq: expected_seq,
    })
}

// ---- elastic recovery ----------------------------------------------------

/// One epoch's plane shape, for [`recover_elastic`]. The elastic controller
/// supplies one per planned epoch, in epoch order.
pub struct EpochShape<'a> {
    /// Token plan of the epoch.
    pub plan: &'a TokenPlan,
    /// Runtime configuration of the epoch.
    pub cfg: &'a FelaConfig,
    /// Per-level metadata of the epoch.
    pub meta: &'a [LevelMeta],
    /// Cluster size during the epoch.
    pub n_workers: usize,
    /// Iteration budget of the epoch's plane.
    pub max_iterations: u64,
}

/// Recovers the **live segment** of an elastic log.
///
/// An elastic log is a chain of fixed-membership segments separated by
/// [`WalRecord::Resize`] markers:
///
/// ```text
/// Begin₀ ops… [ckpt] Resize(it, n₁) Begin₁ ops… Resize(it, n₂) Begin₂ ops…
/// ```
///
/// Each epoch's plane logs exactly as in a fixed-membership run (its own
/// `Begin`, op sequencing restarting at 0), so a crash anywhere lands inside
/// the *last* segment: this scan locates the final `Begin`, matches it to
/// the corresponding [`EpochShape`], and hands the segment to the strict
/// fixed-membership [`recover`]. Returns the epoch index alongside the
/// recovered plane. A log whose final complete record is a `Resize` crashed
/// between the boundary marker and the next epoch's first commit — the new
/// epoch's log is empty, so it resumes from a fresh plane at seq 0.
///
/// # Errors
/// Fails on framing/checksum corruption, a missing `Begin`, a live segment
/// beyond the supplied shapes, and everything [`recover`] rejects within
/// the live segment.
pub fn recover_elastic(
    bytes: &[u8],
    epochs: &[EpochShape<'_>],
) -> Result<(usize, Recovered), WalError> {
    // Offset-tracking frame scan, tolerant of the multi-segment layout.
    // Only framing, checksums and record tags are validated here; `recover`
    // re-validates the live segment strictly (seq chain, digests, shape).
    let mut pos = 0usize;
    let mut begin_count = 0usize;
    let mut last_begin_offset: Option<usize> = None;
    let mut trailing_resize = false;
    while pos < bytes.len() {
        let remaining = bytes.len() - pos;
        if remaining < 8 {
            break;
        }
        let len = u32::from_le_bytes([bytes[pos], bytes[pos + 1], bytes[pos + 2], bytes[pos + 3]]);
        if len > MAX_RECORD {
            return Err(WalError::Oversized {
                len: len as u64,
                max: MAX_RECORD,
            });
        }
        let len = len as usize;
        if remaining - 8 < len {
            break;
        }
        let stored = u32::from_le_bytes([
            bytes[pos + 4],
            bytes[pos + 5],
            bytes[pos + 6],
            bytes[pos + 7],
        ]);
        let body = &bytes[pos + 8..pos + 8 + len];
        let computed = crc32(body);
        if stored != computed {
            return Err(WalError::BadChecksum {
                offset: pos,
                stored,
                computed,
            });
        }
        match body.first().copied() {
            Some(TAG_BEGIN) => {
                begin_count += 1;
                last_begin_offset = Some(pos);
                trailing_resize = false;
            }
            Some(TAG_RESIZE) => {
                // Fully decode the small marker so corruption is caught even
                // when the segment it closes is superseded.
                decode_body(body)?;
                if last_begin_offset.is_none() {
                    return Err(WalError::MissingBegin);
                }
                trailing_resize = true;
            }
            Some(TAG_OP) | Some(TAG_CHECKPOINT) => {}
            Some(tag) => return Err(WalError::UnknownTag(tag)),
            None => {
                return Err(WalError::Malformed {
                    what: "empty record body",
                })
            }
        }
        pos += 8 + len;
    }
    let torn_bytes = bytes.len() - pos;
    let offset = match last_begin_offset {
        Some(o) => o,
        None => return Err(WalError::MissingBegin),
    };
    if trailing_resize {
        // Crash between the Resize marker and the next epoch's Begin: the
        // new epoch has logged nothing yet.
        let epoch = begin_count;
        let shape = epochs.get(epoch).ok_or(WalError::EpochOutOfRange {
            epoch,
            epochs: epochs.len(),
        })?;
        let plane = ControlPlane::new(
            shape.plan.clone(),
            shape.cfg.clone(),
            shape.meta.to_vec(),
            shape.n_workers,
            shape.max_iterations,
        );
        return Ok((
            epoch,
            Recovered {
                plane,
                payload: Vec::new(),
                ops: Vec::new(),
                torn_bytes,
                next_seq: 0,
            },
        ));
    }
    let epoch = begin_count - 1;
    let shape = epochs.get(epoch).ok_or(WalError::EpochOutOfRange {
        epoch,
        epochs: epochs.len(),
    })?;
    let recovered = recover(
        &bytes[offset..],
        shape.plan,
        shape.cfg,
        shape.meta,
        shape.n_workers,
        shape.max_iterations,
    )?;
    Ok((epoch, recovered))
}

// ---- payload helpers -----------------------------------------------------

/// Encodes a list of `u64` pairs as an opaque checkpoint payload (the live
/// runtime stores its committed `(iteration, level)` completions this way).
pub fn encode_u64_pairs(pairs: &[(u64, u64)]) -> Vec<u8> {
    let mut out = Vec::with_capacity(4 + 16 * pairs.len());
    put_u64_u64_pairs(&mut out, pairs);
    out
}

/// Decodes a payload written by [`encode_u64_pairs`].
pub fn decode_u64_pairs(bytes: &[u8]) -> Result<Vec<(u64, u64)>, WalError> {
    let mut c = Cursor::new(bytes);
    let pairs = get_u64_u64_pairs(&mut c, "payload pairs")?;
    c.done()?;
    Ok(pairs)
}

// ---- options -------------------------------------------------------------

/// How a runtime persists its control plane.
#[derive(Clone, Debug)]
pub struct DurabilityOptions {
    /// Directory for the log file ([`wal_path`]). `None` = an in-memory
    /// [`MemWal`] (crash-restart still exercises the full recovery path; the
    /// bytes just never leave the process).
    pub wal_dir: Option<PathBuf>,
    /// Checkpoint after every N completed iterations (0 = never: replay
    /// starts from the `Begin` record).
    pub checkpoint_every: u64,
}

impl Default for DurabilityOptions {
    fn default() -> Self {
        DurabilityOptions {
            wal_dir: None,
            checkpoint_every: 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::LevelMeta;
    use crate::{FelaConfig, LevelPlan};
    use fela_sim::SimTime;

    fn small_plan() -> TokenPlan {
        TokenPlan {
            levels: vec![
                LevelPlan {
                    level: 0,
                    tokens_per_iteration: 2,
                    batch_per_token: 4,
                    gen_ratio: 1,
                },
                LevelPlan {
                    level: 1,
                    tokens_per_iteration: 1,
                    batch_per_token: 8,
                    gen_ratio: 2,
                },
            ],
            total_batch: 8,
        }
    }

    fn meta() -> Vec<LevelMeta> {
        vec![
            LevelMeta {
                param_bytes: 4096,
                output_bytes_per_sample: 64,
                input_bytes_per_sample: 64,
                comm_intensive: false,
            },
            LevelMeta {
                param_bytes: 8192,
                output_bytes_per_sample: 32,
                input_bytes_per_sample: 64,
                comm_intensive: false,
            },
        ]
    }

    fn cfg(shards: usize) -> FelaConfig {
        FelaConfig::new(2)
            .with_weights(vec![1, 2])
            .with_shards(shards)
    }

    fn plane(shards: usize) -> ControlPlane {
        ControlPlane::new(small_plan(), cfg(shards), meta(), 2, 2)
    }

    /// Drives a plane to completion (the oplog test loop), recording the
    /// committed-byte boundary after every plane call when a log is attached.
    fn drive(plane: &mut ControlPlane, mem: Option<&MemWal>, boundaries: &mut Vec<usize>) {
        let mark = |mem: Option<&MemWal>, boundaries: &mut Vec<usize>| {
            if let Some(m) = mem {
                boundaries.push(m.len());
            }
        };
        let now = SimTime::ZERO;
        while !plane.run_complete() {
            let mut progressed = false;
            for w in 0..2 {
                if let Ok(Some(grant)) = plane.request(w, now) {
                    mark(mem, boundaries);
                    let syncs = plane.report(w, grant.token.id).expect("report accepted");
                    mark(mem, boundaries);
                    for s in syncs {
                        plane.sync_finished(s.level, s.iteration).expect("sync");
                        mark(mem, boundaries);
                    }
                    progressed = true;
                } else {
                    mark(mem, boundaries);
                }
            }
            while let Ok(Some((w, grant))) = plane.pop_ready_grant(now) {
                mark(mem, boundaries);
                let syncs = plane.report(w, grant.token.id).expect("report accepted");
                mark(mem, boundaries);
                for s in syncs {
                    plane.sync_finished(s.level, s.iteration).expect("sync");
                    mark(mem, boundaries);
                }
                progressed = true;
            }
            mark(mem, boundaries);
            assert!(progressed, "run must make progress");
        }
    }

    fn sample_snapshot() -> ServerSnapshot {
        let mut p = plane(1);
        let _ = p.request(0, SimTime::ZERO);
        p.snapshot()
    }

    fn sample_records() -> Vec<WalRecord> {
        let sched_errors = vec![
            ScheduleError::InvalidWorker {
                worker: 9,
                n_workers: 2,
            },
            ScheduleError::UnknownToken { token: TokenId(7) },
            ScheduleError::DuplicateReport { token: TokenId(3) },
            ScheduleError::CorruptBucket {
                bucket: 1,
                level: 0,
                position: 4,
            },
            ScheduleError::MissingSampleOwner { token: TokenId(2) },
            ScheduleError::MissingDependencyHolder {
                token: TokenId(5),
                dep: TokenId(1),
            },
            ScheduleError::CtdConfigMissing { level: 1 },
            ScheduleError::EmptyCtdSubset { level: 2 },
            ScheduleError::LevelOutOfRange {
                level: 7,
                levels: 2,
            },
            ScheduleError::DuplicateSync {
                level: 0,
                iteration: 3,
            },
            ScheduleError::OverGeneration {
                level: 1,
                iteration: 2,
            },
            ScheduleError::StaleReport {
                worker: 1,
                token: TokenId(6),
            },
            ScheduleError::WorkerUnavailable { worker: 0 },
            ScheduleError::BadLivenessTransition {
                worker: 1,
                alive: true,
            },
            ScheduleError::NoAliveWorkers,
        ];
        let kinds = vec![
            OpKind::Request {
                worker: 0,
                now: SimTime::from_nanos(17),
            },
            OpKind::PopReadyGrant {
                now: SimTime::from_nanos(99),
            },
            OpKind::Report {
                worker: 1,
                token: 42,
            },
            OpKind::SyncFinished {
                level: 1,
                iteration: 3,
            },
            OpKind::WorkerCrashed { worker: 0 },
            OpKind::WorkerRestarted { worker: 1 },
            OpKind::LeaseExpired {
                token: 8,
                attempt: 2,
            },
        ];
        let mut outcomes = vec![
            OpOutcome::Granted {
                worker: 0,
                token: 11,
                attempt: 1,
                conflict: true,
                fetches: vec![(1, 4096), (0, 64)],
            },
            OpOutcome::NoGrant,
            OpOutcome::Synced {
                syncs: vec![(0, 1), (1, 0)],
            },
            OpOutcome::Revoked {
                tokens: vec![3, 4, 5],
            },
            OpOutcome::Expired {
                worker: 1,
                revoked: vec![9],
                quarantined: true,
            },
            OpOutcome::NoLease,
            OpOutcome::Done,
        ];
        outcomes.extend(sched_errors.into_iter().map(OpOutcome::Failed));
        let mut records = vec![WalRecord::Begin {
            shards: 1,
            n_workers: 2,
            max_iterations: 2,
        }];
        let mut seq = 0u64;
        for kind in &kinds {
            for outcome in &outcomes {
                records.push(WalRecord::Op {
                    seq,
                    op: CoordOp {
                        kind: kind.clone(),
                        outcome: outcome.clone(),
                    },
                });
                seq += 1;
            }
        }
        let token = Token {
            id: TokenId(5),
            level: 1,
            iteration: 0,
            seq: 0,
            batch: 8,
            deps: vec![TokenId(1), TokenId(2)],
            sample_owner: None,
        };
        let root = Token {
            id: TokenId(1),
            level: 0,
            iteration: 0,
            seq: 1,
            batch: 4,
            deps: vec![],
            sample_owner: Some(1),
        };
        records.push(WalRecord::Checkpoint {
            seq,
            payload: vec![1, 2, 3, 255],
            tokens: vec![root, token],
            snapshot: Box::new(sample_snapshot()),
        });
        records.push(WalRecord::Resize {
            iteration: 1,
            n_workers: 3,
        });
        records
    }

    #[test]
    fn crc32_matches_the_ieee_check_value() {
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn every_record_round_trips_bit_exactly() {
        for rec in sample_records() {
            let bytes = encode_record(&rec);
            let log = read_log(&bytes).expect("valid record");
            assert_eq!(log.torn_bytes, 0);
            assert_eq!(log.records, vec![rec.clone()]);
            // Re-encoding the decoded record reproduces the bytes.
            assert_eq!(encode_record(&log.records[0]), bytes);
        }
    }

    #[test]
    fn a_full_log_round_trips_in_order() {
        let records = sample_records();
        let mut bytes = Vec::new();
        for rec in &records {
            bytes.extend_from_slice(&encode_record(rec));
        }
        let log = read_log(&bytes).expect("valid log");
        assert_eq!(log.records, records);
        assert_eq!(log.torn_bytes, 0);
    }

    #[test]
    fn torn_tail_at_every_cut_point_is_dropped_cleanly() {
        let records = sample_records();
        let mut bytes = Vec::new();
        let mut boundaries = vec![0usize];
        for rec in &records {
            bytes.extend_from_slice(&encode_record(rec));
            boundaries.push(bytes.len());
        }
        for cut in 0..=bytes.len() {
            let log = read_log(&bytes[..cut]).expect("torn tails never error");
            let boundary = boundaries
                .iter()
                .rev()
                .find(|&&b| b <= cut)
                .copied()
                .expect("0 is a boundary");
            let complete = boundaries.iter().position(|&b| b == boundary).expect("idx");
            assert_eq!(log.records.len(), complete, "cut at {cut}");
            assert_eq!(log.torn_bytes, cut - boundary, "cut at {cut}");
            assert_eq!(log.valid_len(cut), boundary, "cut at {cut}");
            assert_eq!(log.records[..], records[..complete]);
        }
    }

    #[test]
    fn corrupt_body_is_a_checksum_error_not_a_torn_tail() {
        let mut bytes = encode_record(&sample_records()[1]);
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        match read_log(&bytes) {
            Err(WalError::BadChecksum { offset: 0, .. }) => {}
            other => panic!("expected BadChecksum, got {other:?}"),
        }
    }

    #[test]
    fn oversized_prefix_is_rejected() {
        let mut bytes = u32::MAX.to_le_bytes().to_vec();
        bytes.extend_from_slice(&[0; 12]);
        assert!(matches!(read_log(&bytes), Err(WalError::Oversized { .. })));
    }

    #[test]
    fn unknown_tags_error_without_panicking() {
        let body = vec![99u8, 1, 2, 3];
        let mut bytes = (body.len() as u32).to_le_bytes().to_vec();
        bytes.extend_from_slice(&crc32(&body).to_le_bytes());
        bytes.extend_from_slice(&body);
        assert_eq!(read_log(&bytes), Err(WalError::UnknownTag(99)));
    }

    fn attach(plane: &mut ControlPlane) -> MemWal {
        let mem = MemWal::new();
        plane
            .attach_wal(Box::new(mem.clone()))
            .expect("attach in-memory wal");
        mem
    }

    #[test]
    fn wal_records_the_drive_and_recovers_the_final_plane() {
        for shards in [1usize, 2] {
            let mut p = plane(shards);
            let mem = attach(&mut p);
            drive(&mut p, None, &mut Vec::new());
            let rec = recover(&mem.bytes(), p.plan(), p.config(), &meta(), 2, 2)
                .expect("clean log recovers");
            assert_eq!(rec.plane.snapshot(), p.snapshot(), "shards={shards}");
            assert_eq!(rec.plane.tokens(), p.tokens(), "shards={shards}");
            assert_eq!(rec.torn_bytes, 0);
            assert!(rec.plane.run_complete());
        }
    }

    #[test]
    fn checkpoint_skips_the_prefix_on_recovery() {
        let mut p = plane(1);
        let mem = attach(&mut p);
        // Run half the drive, checkpoint, then finish.
        let now = SimTime::ZERO;
        for w in 0..2 {
            if let Ok(Some(grant)) = p.request(w, now) {
                let syncs = p.report(w, grant.token.id).expect("report");
                for s in syncs {
                    p.sync_finished(s.level, s.iteration).expect("sync");
                }
            }
        }
        p.checkpoint_wal(&[7, 7, 7]).expect("checkpoint");
        drive(&mut p, None, &mut Vec::new());
        let rec = recover(&mem.bytes(), p.plan(), p.config(), &meta(), 2, 2).expect("recovers");
        assert_eq!(rec.plane.snapshot(), p.snapshot());
        assert_eq!(rec.payload, vec![7, 7, 7]);
        let log = read_log(&mem.bytes()).expect("read");
        let total_ops = log
            .records
            .iter()
            .filter(|r| matches!(r, WalRecord::Op { .. }))
            .count();
        assert!(
            rec.ops.len() < total_ops,
            "suffix replay ({}) must be shorter than the full log ({total_ops})",
            rec.ops.len()
        );
    }

    #[test]
    fn recovery_rejects_a_log_for_a_different_plane_shape() {
        let mut p = plane(1);
        let mem = attach(&mut p);
        drive(&mut p, None, &mut Vec::new());
        let bytes = mem.bytes();
        assert_eq!(
            recover(&bytes, p.plan(), p.config(), &meta(), 3, 2).map(|_| ()),
            Err(WalError::BeginMismatch),
            "wrong worker count"
        );
        assert_eq!(
            recover(&bytes, p.plan(), &cfg(2), &meta(), 2, 2).map(|_| ()),
            Err(WalError::BeginMismatch),
            "wrong shard count"
        );
        assert_eq!(
            recover(&[], p.plan(), p.config(), &meta(), 2, 2).map(|_| ()),
            Err(WalError::MissingBegin)
        );
    }

    #[test]
    fn broken_seq_chains_are_detected() {
        let mut p = plane(1);
        let mem = attach(&mut p);
        drive(&mut p, None, &mut Vec::new());
        let log = read_log(&mem.bytes()).expect("read");
        // Drop the second op record → gap.
        let mut dropped: Vec<WalRecord> = log.records.clone();
        let op_idx: Vec<usize> = dropped
            .iter()
            .enumerate()
            .filter(|(_, r)| matches!(r, WalRecord::Op { .. }))
            .map(|(i, _)| i)
            .collect();
        dropped.remove(op_idx[1]);
        let bytes: Vec<u8> = dropped.iter().flat_map(encode_record).collect();
        assert!(matches!(
            recover(&bytes, p.plan(), p.config(), &meta(), 2, 2).map(|_| ()),
            Err(WalError::SeqBroken {
                expected: 1,
                found: 2
            })
        ));
        // Duplicate an op record → stalled chain.
        let mut duped = log.records.clone();
        duped.insert(op_idx[1], duped[op_idx[1]].clone());
        let bytes: Vec<u8> = duped.iter().flat_map(encode_record).collect();
        assert!(matches!(
            recover(&bytes, p.plan(), p.config(), &meta(), 2, 2).map(|_| ()),
            Err(WalError::SeqBroken {
                expected: 2,
                found: 1
            })
        ));
    }

    #[test]
    fn recovery_at_every_commit_boundary_matches_a_fresh_replay() {
        // The core crash-consistency property as a deterministic sweep:
        // recovering the log prefix at *any* commit boundary yields the same
        // snapshot as replaying that prefix from scratch (and at the final
        // boundary, the live plane itself).
        for shards in [1usize, 2] {
            let mut p = plane(shards);
            let mem = attach(&mut p);
            let mut boundaries = vec![0usize];
            drive(&mut p, Some(&mem), &mut boundaries);
            let bytes = mem.bytes();
            for &b in &boundaries {
                if b == 0 {
                    continue;
                }
                let rec = recover(&bytes[..b], p.plan(), p.config(), &meta(), 2, 2)
                    .unwrap_or_else(|e| panic!("boundary {b}: {e}"));
                assert_eq!(rec.torn_bytes, 0);
            }
            let full = recover(&bytes, p.plan(), p.config(), &meta(), 2, 2).expect("full");
            assert_eq!(full.plane.snapshot(), p.snapshot(), "shards={shards}");
        }
    }

    // ---- elastic logs ----------------------------------------------------

    fn plane_n(n_workers: usize) -> ControlPlane {
        ControlPlane::new(small_plan(), cfg(1), meta(), n_workers, 2)
    }

    /// One request/report/sync round for every worker that gets a grant.
    fn step_workers(plane: &mut ControlPlane, n: usize) {
        let now = SimTime::ZERO;
        for w in 0..n {
            if let Ok(Some(grant)) = plane.request(w, now) {
                let syncs = plane.report(w, grant.token.id).expect("report");
                for s in syncs {
                    plane.sync_finished(s.level, s.iteration).expect("sync");
                }
            }
        }
    }

    #[test]
    fn recover_elastic_resumes_the_latest_epoch_after_a_join() {
        // Epoch 0: two workers run to completion, with a mid-run checkpoint
        // so the superseded segment also carries one.
        let mut p0 = plane(1);
        let mem = attach(&mut p0);
        step_workers(&mut p0, 2);
        p0.checkpoint_wal(&[9]).expect("checkpoint");
        drive(&mut p0, None, &mut Vec::new());

        // The cluster grows 2 → 3 at the boundary; the driver logs the
        // marker between the segments.
        let mut marker = WalWriter::new(Box::new(mem.clone()));
        marker.append_resize(2, 3);
        marker.commit().expect("commit marker");

        // Epoch 1: three workers, crash after a few committed ops plus a
        // torn record the fsync never finished.
        let mut p1 = plane_n(3);
        p1.attach_wal(Box::new(mem.clone())).expect("attach");
        step_workers(&mut p1, 3);
        let committed = p1.snapshot();
        let torn = encode_record(&WalRecord::Resize {
            iteration: 9,
            n_workers: 9,
        });
        let mut sink = mem.clone();
        WalSink::append(&mut sink, &torn[..5]).expect("tear");

        let bytes = mem.bytes();
        // The fixed-membership reader refuses to cross the resize — the
        // fixed-worker-set assumption recover_elastic exists to lift.
        assert!(matches!(
            recover(&bytes, p0.plan(), p0.config(), &meta(), 2, 2).map(|_| ()),
            Err(WalError::Malformed { .. })
        ));
        let plan = small_plan();
        let c = cfg(1);
        let m = meta();
        let shapes = [
            EpochShape {
                plan: &plan,
                cfg: &c,
                meta: &m,
                n_workers: 2,
                max_iterations: 2,
            },
            EpochShape {
                plan: &plan,
                cfg: &c,
                meta: &m,
                n_workers: 3,
                max_iterations: 2,
            },
        ];
        let (epoch, rec) = recover_elastic(&bytes, &shapes).expect("elastic recovery");
        assert_eq!(epoch, 1, "the live segment is the post-join epoch");
        assert_eq!(rec.torn_bytes, 5);
        assert_eq!(rec.plane.snapshot(), committed);
        assert!(rec.next_seq > 0, "epoch 1 logged ops before the crash");
    }

    #[test]
    fn crash_between_resize_and_next_begin_resumes_a_fresh_epoch() {
        let mut p0 = plane(1);
        let mem = attach(&mut p0);
        drive(&mut p0, None, &mut Vec::new());
        let mut marker = WalWriter::new(Box::new(mem.clone()));
        marker.append_resize(2, 3);
        marker.commit().expect("commit marker");
        let bytes = mem.bytes();
        let plan = small_plan();
        let c = cfg(1);
        let m = meta();
        let shapes = [
            EpochShape {
                plan: &plan,
                cfg: &c,
                meta: &m,
                n_workers: 2,
                max_iterations: 2,
            },
            EpochShape {
                plan: &plan,
                cfg: &c,
                meta: &m,
                n_workers: 3,
                max_iterations: 2,
            },
        ];
        let (epoch, rec) = recover_elastic(&bytes, &shapes).expect("recover");
        assert_eq!(epoch, 1);
        assert_eq!(rec.next_seq, 0);
        assert!(rec.ops.is_empty());
        assert_eq!(
            rec.plane.snapshot(),
            plane_n(3).snapshot(),
            "a trailing Resize resumes the next epoch from scratch"
        );
    }

    #[test]
    fn recover_elastic_on_a_single_segment_matches_recover() {
        let mut p = plane(1);
        let mem = attach(&mut p);
        drive(&mut p, None, &mut Vec::new());
        let bytes = mem.bytes();
        let plan = small_plan();
        let c = cfg(1);
        let m = meta();
        let shapes = [EpochShape {
            plan: &plan,
            cfg: &c,
            meta: &m,
            n_workers: 2,
            max_iterations: 2,
        }];
        let (epoch, rec) = recover_elastic(&bytes, &shapes).expect("recover");
        let fixed = recover(&bytes, p.plan(), p.config(), &meta(), 2, 2).expect("fixed");
        assert_eq!(epoch, 0);
        assert_eq!(rec.plane.snapshot(), fixed.plane.snapshot());
        assert_eq!(rec.next_seq, fixed.next_seq);
    }

    #[test]
    fn recover_elastic_rejects_more_segments_than_shapes() {
        let mut p0 = plane(1);
        let mem = attach(&mut p0);
        drive(&mut p0, None, &mut Vec::new());
        let mut marker = WalWriter::new(Box::new(mem.clone()));
        marker.append_resize(2, 3);
        marker.commit().expect("commit marker");
        let mut p1 = plane_n(3);
        p1.attach_wal(Box::new(mem.clone())).expect("attach");
        step_workers(&mut p1, 3);
        let plan = small_plan();
        let c = cfg(1);
        let m = meta();
        let shapes = [EpochShape {
            plan: &plan,
            cfg: &c,
            meta: &m,
            n_workers: 2,
            max_iterations: 2,
        }];
        assert!(matches!(
            recover_elastic(&mem.bytes(), &shapes).map(|_| ()),
            Err(WalError::EpochOutOfRange {
                epoch: 1,
                epochs: 1
            })
        ));
    }

    #[test]
    fn payload_pairs_round_trip() {
        let pairs = vec![(0u64, 1u64), (7, 2), (u64::MAX, 0)];
        let bytes = encode_u64_pairs(&pairs);
        assert_eq!(decode_u64_pairs(&bytes).expect("round trip"), pairs);
        assert_eq!(decode_u64_pairs(&[]).ok(), None, "empty buffer is torn");
        assert!(decode_u64_pairs(&encode_u64_pairs(&[])).is_ok());
    }

    #[test]
    fn file_wal_persists_and_resumes_with_truncation() {
        let dir = std::env::temp_dir().join(format!(
            "fela-wal-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        fs::create_dir_all(&dir).expect("mkdir");
        let path = wal_path(&dir);
        let mut p = plane(1);
        p.attach_wal(Box::new(FileWal::create(&path).expect("create")))
            .expect("attach");
        drive(&mut p, None, &mut Vec::new());
        // Tear the tail: append garbage that looks like a cut-off record.
        {
            let mut f = fs::OpenOptions::new()
                .append(true)
                .open(&path)
                .expect("open");
            f.write_all(&[42, 0, 0]).expect("tear");
        }
        let bytes = fs::read(&path).expect("read");
        let rec = recover(&bytes, p.plan(), p.config(), &meta(), 2, 2).expect("recover");
        assert_eq!(rec.torn_bytes, 3);
        assert_eq!(rec.plane.snapshot(), p.snapshot());
        let valid = (bytes.len() - rec.torn_bytes) as u64;
        drop(FileWal::resume(&path, valid).expect("resume"));
        assert_eq!(fs::metadata(&path).expect("meta").len(), valid);
        fs::remove_dir_all(&dir).ok();
    }

    // ---- property tests (wire.rs style) ---------------------------------

    use proptest::prelude::*;

    fn arb_token() -> impl Strategy<Value = Token> {
        (
            any::<u64>(),
            0usize..4,
            any::<u64>(),
            any::<u64>(),
            any::<u64>(),
            prop::collection::vec(any::<u64>(), 0..4),
            (any::<bool>(), 0usize..8),
        )
            .prop_map(
                |(id, level, iteration, seq, batch, deps, (own, owner))| Token {
                    id: TokenId(id),
                    level,
                    iteration,
                    seq,
                    batch,
                    deps: deps.into_iter().map(TokenId).collect(),
                    sample_owner: if own { Some(owner) } else { None },
                },
            )
    }

    fn arb_op() -> impl Strategy<Value = CoordOp> {
        let kinds = sample_records()
            .into_iter()
            .filter_map(|r| match r {
                WalRecord::Op { op, .. } => Some(op),
                _ => None,
            })
            .collect::<Vec<_>>();
        (0usize..kinds.len(), any::<u64>(), any::<u64>()).prop_map(move |(i, a, b)| {
            let mut op = kinds[i].clone();
            // Perturb the common numeric fields so cases vary beyond the
            // hand-built sample set.
            if let OpKind::Report { token, .. } = &mut op.kind {
                *token = a;
            }
            if let OpOutcome::Granted { token, attempt, .. } = &mut op.outcome {
                *token = a;
                *attempt = b;
            }
            op
        })
    }

    fn arb_record() -> impl Strategy<Value = WalRecord> {
        prop_oneof![
            (any::<u32>(), any::<u32>(), any::<u64>()).prop_map(|(shards, n_workers, mi)| {
                WalRecord::Begin {
                    shards,
                    n_workers,
                    max_iterations: mi,
                }
            }),
            (any::<u64>(), arb_op()).prop_map(|(seq, op)| WalRecord::Op { seq, op }),
            (any::<u64>(), any::<u32>()).prop_map(|(iteration, n_workers)| WalRecord::Resize {
                iteration,
                n_workers,
            }),
            (
                any::<u64>(),
                prop::collection::vec(any::<u8>(), 0..64),
                prop::collection::vec(arb_token(), 0..4),
            )
                .prop_map(|(seq, payload, tokens)| WalRecord::Checkpoint {
                    seq,
                    payload,
                    tokens,
                    snapshot: Box::new(sample_snapshot()),
                }),
        ]
    }

    proptest! {
        #[test]
        fn read_log_never_panics_on_arbitrary_bytes(
            bytes in prop::collection::vec(any::<u8>(), 0..512)
        ) {
            // Success or structured error — never a panic.
            let _ = read_log(&bytes);
        }

        #[test]
        fn recover_never_panics_on_arbitrary_bytes(
            bytes in prop::collection::vec(any::<u8>(), 0..512)
        ) {
            let p = plane(1);
            let _ = recover(&bytes, p.plan(), p.config(), &meta(), 2, 2);
        }

        #[test]
        fn recover_elastic_never_panics_on_arbitrary_bytes(
            bytes in prop::collection::vec(any::<u8>(), 0..512)
        ) {
            let plan = small_plan();
            let c = cfg(1);
            let m = meta();
            let shapes = [EpochShape {
                plan: &plan,
                cfg: &c,
                meta: &m,
                n_workers: 2,
                max_iterations: 2,
            }];
            let _ = recover_elastic(&bytes, &shapes);
        }

        #[test]
        fn arbitrary_records_round_trip_bit_exactly(rec in arb_record()) {
            let bytes = encode_record(&rec);
            let log = read_log(&bytes).expect("encoded records decode");
            prop_assert_eq!(&log.records[..], std::slice::from_ref(&rec));
            prop_assert_eq!(encode_record(&log.records[0]), bytes);
        }

        #[test]
        fn crash_at_random_offset_recovers_the_committed_prefix(
            pick in any::<u64>(),
            cut_back in 0usize..8,
            shards in 1usize..3,
            checkpoint_every in 0u64..3
        ) {
            // checkpoint → crash at a random log offset → replay must yield
            // a snapshot byte-equal to the uninterrupted plane at that
            // boundary — on both the monolithic and the sharded plane.
            let mut p = plane(shards);
            let mem = attach(&mut p);
            let mut boundaries = vec![mem.len()];
            let now = SimTime::ZERO;
            let mut done_iters = 0u64;
            while !p.run_complete() {
                let mut progressed = false;
                for w in 0..2 {
                    if let Ok(Some(grant)) = p.request(w, now) {
                        boundaries.push(mem.len());
                        let syncs = p.report(w, grant.token.id).expect("report");
                        boundaries.push(mem.len());
                        for s in syncs {
                            p.sync_finished(s.level, s.iteration).expect("sync");
                            boundaries.push(mem.len());
                        }
                        progressed = true;
                    }
                }
                while let Ok(Some((w, grant))) = p.pop_ready_grant(now) {
                    boundaries.push(mem.len());
                    let syncs = p.report(w, grant.token.id).expect("report");
                    boundaries.push(mem.len());
                    for s in syncs {
                        p.sync_finished(s.level, s.iteration).expect("sync");
                        boundaries.push(mem.len());
                    }
                    progressed = true;
                }
                prop_assert!(progressed);
                if checkpoint_every > 0 && p.completed_iterations() > done_iters {
                    done_iters = p.completed_iterations();
                    if done_iters % checkpoint_every == 0 {
                        p.checkpoint_wal(&[]).expect("checkpoint");
                        boundaries.push(mem.len());
                    }
                }
            }
            let bytes = mem.bytes();
            let boundary = boundaries[(pick as usize) % boundaries.len()];
            // A crash mid-record: cut a few bytes past the boundary into the
            // next record — the torn tail must drop cleanly.
            let cut = (boundary + cut_back).min(bytes.len());
            let torn = recover(&bytes[..cut], p.plan(), p.config(), &meta(), 2, 2)
                .expect("torn log recovers");
            // Recovering the *clean* prefix gives the same plane.
            let clean = recover(&bytes[..cut - torn.torn_bytes], p.plan(), p.config(), &meta(), 2, 2)
                .expect("clean prefix recovers");
            prop_assert_eq!(torn.plane.snapshot(), clean.plane.snapshot());
            prop_assert_eq!(torn.next_seq, clean.next_seq);
            // And the full log reproduces the uninterrupted plane exactly.
            let full = recover(&bytes, p.plan(), p.config(), &meta(), 2, 2).expect("full");
            prop_assert_eq!(full.plane.snapshot(), p.snapshot());
            prop_assert_eq!(full.plane.tokens(), p.tokens());
        }
    }
}
