//! Tokens — the unit of schedulable work (§III-B).
//!
//! One token represents "train sub-model `level` on `batch` samples within
//! iteration `iteration`". Level-0 tokens consume raw training samples (sharded
//! round-robin across workers' local storage); higher-level tokens depend on the
//! outputs of the specific lower-level tokens they were generated from.

use serde::Serialize;

/// Globally unique token identifier (monotone in generation order, which the
/// paper's tie-breaking "smallest token ID" rule relies on).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize)]
pub struct TokenId(pub u64);

/// One unit of schedulable work.
#[derive(Clone, PartialEq, Eq, Debug, Serialize)]
pub struct Token {
    /// Unique id.
    pub id: TokenId,
    /// Sub-model index this token trains (0-based; the paper's "T-(level+1)").
    pub level: usize,
    /// BSP iteration the token belongs to.
    pub iteration: u64,
    /// Sequence number within (level, iteration), 0-based.
    pub seq: u64,
    /// Number of samples this token covers.
    pub batch: u64,
    /// The completed lower-level tokens whose outputs this token consumes
    /// (empty for level 0).
    pub deps: Vec<TokenId>,
    /// For level-0 tokens: the worker whose local storage holds the samples.
    pub sample_owner: Option<usize>,
}

impl Token {
    /// True if this is a first-level token (no model-parameter dependencies).
    pub fn is_root(&self) -> bool {
        self.level == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn token_ids_order() {
        assert!(TokenId(3) < TokenId(10));
    }

    #[test]
    fn root_detection() {
        let t = Token {
            id: TokenId(0),
            level: 0,
            iteration: 0,
            seq: 0,
            batch: 16,
            deps: vec![],
            sample_owner: Some(3),
        };
        assert!(t.is_root());
        let t2 = Token { level: 1, ..t };
        assert!(!t2.is_root());
    }
}
