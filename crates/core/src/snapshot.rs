//! Canonical snapshots of control-plane scheduling state.
//!
//! A [`ServerSnapshot`] is the byte-exact conformance currency of the control
//! plane: the sharded [`Coordinator`](crate::Coordinator) is proved against
//! the monolithic [`TokenServer`](crate::TokenServer) oracle by comparing
//! snapshots (alongside grants and traces) under random churn, and both planes
//! can be [restored](crate::TokenServer::restore) from a snapshot plus the
//! token table, round-tripping bit-identically.

/// A canonical, totally ordered view of the server's scheduling state.
///
/// Two servers with equal snapshots will emit identical schedules for
/// identical future inputs (timing-only state — lock-conflict instants and
/// counters — is deliberately excluded). `fela-check`'s interleaving explorer
/// uses snapshots to prune its state space; tests use them to assert replay
/// equivalence, and the shard-conformance suite compares sharded and
/// single-server snapshots bit for bit.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ServerSnapshot {
    /// Iterations whose root tokens have been released.
    pub released_roots: u64,
    /// Next token id to be generated.
    pub next_token_id: u64,
    /// STB contents: `stbs[bucket][level]` → token ids in queue order.
    pub stbs: Vec<Vec<Vec<u64>>>,
    /// Sync-gated generated tokens per level: `(token id, preferred bucket)`.
    pub pending: Vec<Vec<(u64, usize)>>,
    /// Contiguously synced iteration count per level.
    pub synced_upto: Vec<u64>,
    /// Out-of-order finished syncs per level.
    pub synced_out_of_order: Vec<Vec<u64>>,
    /// Per-level in-flight completion counts: `(iteration, count)`.
    pub completed: Vec<Vec<(u64, u64)>>,
    /// Per-level generation buffers: `(iteration, completed token ids)`.
    pub gen_buffers: Vec<Vec<(u64, Vec<u64>)>>,
    /// Info Mapping: `(token id, holding worker)`.
    pub holder: Vec<(u64, usize)>,
    /// Workers queued for a token.
    pub waiting: Vec<usize>,
    /// Helper counts per bucket.
    pub helpers: Vec<u64>,
    /// Liveness per worker (all-true without faults).
    pub alive: Vec<bool>,
    /// Quarantine flags per worker (all-false without faults).
    pub quarantined: Vec<bool>,
    /// Active leases: `(token id, worker, attempt)` (empty without recovery).
    pub leases: Vec<(u64, usize, u64)>,
    /// Per-token lease revocation counts: `(token id, revocations)` (sparse;
    /// absent = 0). Behavioural — the next grant of a token carries this as
    /// its [`Grant::attempt`](crate::Grant::attempt).
    pub attempts: Vec<(u64, u64)>,
    /// Lease expiries per worker (the quarantine countdown).
    pub expiry_counts: Vec<u64>,
    /// Where each worker's durable data currently lives (identity until a
    /// crash re-homes it) — feeds fetch targets and root placement.
    pub data_home: Vec<usize>,
    /// Tokens parked with no eligible bucket (fully dark cluster), in
    /// revocation order: `(level, token id)`.
    pub parked: Vec<(usize, u64)>,
}
