//! Fela runtime configuration: parallelism weights, policy toggles and overhead
//! constants.

use fela_sim::SimDuration;
use serde::Serialize;

/// Conditional Token Distribution settings (§III-F).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize)]
pub struct CtdConfig {
    /// Size of the conditional subset `S`. Workers `0..subset_size` form `S`
    /// (which workers is immaterial on a homogeneous cluster; a power-of-two size
    /// is required by the tuner for even workload sharing, §IV-B footnote 15).
    pub subset_size: usize,
}

/// Lease-based token recovery settings.
///
/// With recovery on, every grant is a *lease*: the runtime arms a deadline of
/// `compute estimate × slack × 2^attempt + grace` when the token starts
/// computing, and the Token Server revokes the token — returning it to the
/// grantable set, re-scored against surviving workers — when the deadline
/// passes or a crash notification arrives. A worker whose leases expire
/// `quarantine_after` times is quarantined: it gets no further grants and
/// leaves the barrier membership, so an iteration can still close without it.
#[derive(Clone, Copy, PartialEq, Debug, Serialize)]
pub struct RecoveryConfig {
    /// Deadline multiplier over the estimated token cost (must be > 1; the
    /// exponential backoff doubles it on each repeated expiry of a token).
    pub lease_slack: f64,
    /// Flat deadline headroom covering control-plane latency (report RPCs,
    /// queueing at the TS).
    pub lease_grace: SimDuration,
    /// Lease expiries after which a worker is quarantined.
    pub quarantine_after: u64,
}

impl Default for RecoveryConfig {
    fn default() -> Self {
        RecoveryConfig {
            lease_slack: 4.0,
            lease_grace: SimDuration::from_millis(500),
            quarantine_after: 3,
        }
    }
}

/// Full Fela configuration for one run.
#[derive(Clone, Debug, Serialize)]
pub struct FelaConfig {
    /// Per-sub-model parallelism weights `w_i` (§IV-B Phase 1). `w_i` multiplies
    /// SM-1's per-token batch: level `i` has `n_i = n_1 / w_i` tokens of batch
    /// `batch_1 · w_i` (see DESIGN.md §3 for why this is the consistent reading of
    /// the paper's formula). Must be nondecreasing powers of two, one per
    /// sub-model.
    pub weights: Vec<u64>,
    /// Conditional token distribution for communication-intensive sub-models;
    /// `None` disables CTD (every worker may train every level).
    pub ctd: Option<CtdConfig>,
    /// Aggressive Depth-First Scheduling (§III-D). Off = the ablation baseline:
    /// lowest level first, token-id order, locality ignored.
    pub ads: bool,
    /// Hierarchical Fetching (§III-E). Off = the ablation baseline: one global
    /// token bucket, every grant contends for the lock, no sample affinity.
    pub hf: bool,
    /// One-way latency of a worker↔TS control message ("at most hundreds of
    /// bytes", §III-A — pure latency, no bandwidth term).
    pub rpc_latency: SimDuration,
    /// Two grants from the same bucket within this window conflict (models the
    /// serialisation of concurrent RPCs at the TS, §III-E).
    pub lock_window: SimDuration,
    /// Extra delay a worker pays when its grant hit a fetching conflict: the
    /// §III-E *fetching failure* costs a rolled-back distribution plus a fresh
    /// request/redistribution exchange on the TCP control plane — tens of
    /// milliseconds once retry backoff is included, not a bare RPC.
    pub conflict_penalty: SimDuration,
    /// Cross-iteration pipelining (on by default): each sub-model's next
    /// iteration is released the moment its own sync drains. Off = a strict
    /// global barrier per iteration (the ablation of DESIGN.md §3 — what a naive
    /// implementation of the paper would do, at a heavy work-conservation cost).
    pub pipelining: bool,
    /// SSP staleness bound in iterations (§VI: "Fela can be easily extended to
    /// SSP by adding the age attribute to each token"). 0 = BSP (the paper's
    /// evaluation mode). With staleness `s`, a sub-model may run up to `s`
    /// iterations ahead of its own parameter sync.
    pub staleness: u64,
    /// Lease-based token recovery; `None` disables it (grants are not leases,
    /// exactly the pre-recovery behaviour). The runtime enables the default
    /// recovery settings automatically when a scenario injects faults.
    pub recovery: Option<RecoveryConfig>,
    /// Control-plane shard count. `1` (the default) runs the monolithic
    /// [`TokenServer`](crate::TokenServer) — the oracle every sharded run is
    /// conformance-tested against. `> 1` runs the sharded
    /// [`Coordinator`](crate::Coordinator): levels are split into contiguous
    /// ranges, one [`TokenShard`](crate::TokenShard) per range, and the
    /// coordinator delegates grants via leases while keeping the schedule
    /// byte-identical to the single-server oracle.
    pub shards: usize,
}

impl FelaConfig {
    /// Default configuration for `m` sub-models: all weights 1, CTD off, both
    /// scheduling policies on, control-plane constants matching a TCP/Gloo
    /// deployment (~100 µs RPCs).
    pub fn new(m: usize) -> Self {
        FelaConfig {
            weights: vec![1; m],
            ctd: None,
            ads: true,
            hf: true,
            rpc_latency: SimDuration::from_micros(100),
            lock_window: SimDuration::from_millis(5),
            conflict_penalty: SimDuration::from_millis(50),
            pipelining: true,
            staleness: 0,
            recovery: None,
            shards: 1,
        }
    }

    /// Builder: sets weights.
    pub fn with_weights(mut self, weights: Vec<u64>) -> Self {
        self.weights = weights;
        self
    }

    /// Builder: sets the CTD subset size.
    pub fn with_ctd(mut self, subset_size: usize) -> Self {
        self.ctd = Some(CtdConfig { subset_size });
        self
    }

    /// Builder: toggles ADS.
    pub fn with_ads(mut self, ads: bool) -> Self {
        self.ads = ads;
        self
    }

    /// Builder: toggles HF.
    pub fn with_hf(mut self, hf: bool) -> Self {
        self.hf = hf;
        self
    }

    /// Builder: toggles cross-iteration pipelining (ablation knob).
    pub fn with_pipelining(mut self, pipelining: bool) -> Self {
        self.pipelining = pipelining;
        self
    }

    /// Builder: sets the SSP staleness bound (0 = BSP).
    pub fn with_staleness(mut self, staleness: u64) -> Self {
        self.staleness = staleness;
        self
    }

    /// Builder: enables lease-based token recovery with the given settings.
    pub fn with_recovery(mut self, recovery: RecoveryConfig) -> Self {
        self.recovery = Some(recovery);
        self
    }

    /// Builder: sets the control-plane shard count (1 = monolithic server).
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// Validates the configuration against a cluster size.
    ///
    /// # Panics
    /// Panics on: empty weights, non-power-of-two or decreasing weights, weights
    /// exceeding `2^⌊log₂ N⌋`, or a CTD subset that is zero, larger than the
    /// cluster, or not a power of two.
    pub fn validate(&self, n_workers: usize) {
        assert!(!self.weights.is_empty(), "weights must be non-empty");
        assert_eq!(
            self.weights[0], 1,
            "w_1 = 1 is the base weight (§IV-B); deeper weights are relative to it"
        );
        let cap = 1u64 << (usize::BITS - 1 - n_workers.leading_zeros()); // 2^⌊log₂N⌋
        let mut prev = 0u64;
        for &w in &self.weights {
            assert!(w.is_power_of_two(), "weight {w} must be a power of two");
            assert!(w >= prev, "weights must be nondecreasing (w_{{i+1}} ≥ w_i)");
            assert!(w <= cap, "weight {w} exceeds 2^⌊log₂ N⌋ = {cap}");
            prev = w;
        }
        if let Some(ctd) = self.ctd {
            assert!(ctd.subset_size > 0, "CTD subset must be non-empty");
            assert!(
                ctd.subset_size <= n_workers,
                "CTD subset larger than cluster"
            );
            assert!(
                ctd.subset_size.is_power_of_two(),
                "CTD subset must be a power of two for even sharing (§IV-B)"
            );
        }
        assert!(self.shards >= 1, "at least one control-plane shard");
        assert!(
            self.shards <= self.weights.len(),
            "shard count {} exceeds the level count {} (a shard owns at least \
             one level's token state)",
            self.shards,
            self.weights.len()
        );
        if let Some(rec) = self.recovery {
            assert!(
                rec.lease_slack.is_finite() && rec.lease_slack > 1.0,
                "lease slack must be finite and > 1 (a deadline tighter than the \
                 estimated cost revokes every healthy token)"
            );
            assert!(
                rec.quarantine_after > 0,
                "quarantine threshold must be at least one expiry"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        FelaConfig::new(3).validate(8);
    }

    #[test]
    fn builders_chain() {
        let c = FelaConfig::new(3)
            .with_weights(vec![1, 2, 4])
            .with_ctd(2)
            .with_ads(false)
            .with_hf(false);
        c.validate(8);
        assert_eq!(c.weights, vec![1, 2, 4]);
        assert_eq!(c.ctd, Some(CtdConfig { subset_size: 2 }));
        assert!(!c.ads && !c.hf);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_pow2_weight() {
        FelaConfig::new(2).with_weights(vec![1, 3]).validate(8);
    }

    #[test]
    #[should_panic(expected = "nondecreasing")]
    fn rejects_decreasing_weights() {
        FelaConfig::new(3).with_weights(vec![1, 4, 2]).validate(8);
    }

    #[test]
    #[should_panic(expected = "base weight")]
    fn rejects_non_unit_base_weight() {
        FelaConfig::new(2).with_weights(vec![2, 4]).validate(8);
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn rejects_weight_above_cluster_cap() {
        FelaConfig::new(2).with_weights(vec![1, 16]).validate(8);
    }

    #[test]
    #[should_panic(expected = "subset larger")]
    fn rejects_oversized_subset() {
        FelaConfig::new(1).with_ctd(16).validate(8);
    }

    #[test]
    fn weight_cap_is_floor_log2() {
        // N = 12 → cap 8.
        FelaConfig::new(2).with_weights(vec![1, 8]).validate(12);
    }

    #[test]
    fn shards_up_to_level_count_are_valid() {
        for s in 1..=3 {
            FelaConfig::new(3).with_shards(s).validate(8);
        }
    }

    #[test]
    #[should_panic(expected = "at least one control-plane shard")]
    fn rejects_zero_shards() {
        FelaConfig::new(3).with_shards(0).validate(8);
    }

    #[test]
    #[should_panic(expected = "exceeds the level count")]
    fn rejects_more_shards_than_levels() {
        FelaConfig::new(3).with_shards(4).validate(8);
    }
}
