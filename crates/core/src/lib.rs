//! # fela-core — the Fela runtime
//!
//! The paper's primary contribution: token-based, elastically tuned hybrid-parallel
//! training (§III). The crate decomposes as:
//!
//! * [`FelaConfig`] — parallelism weights, ADS/HF/CTD policy toggles, control-plane
//!   overhead constants;
//! * [`TokenPlan`] — how one BSP iteration decomposes into tokens per level
//!   (§III-B, §IV-B);
//! * [`TokenServer`] — Token Generator + Token Distributor + Token Bucket/STBs +
//!   Info Mapping, with the ADS (§III-D), HF (§III-E) and CTD (§III-F) policies as
//!   pure, unit-tested scheduling logic; kept as the frozen conformance oracle;
//! * [`Coordinator`] / [`TokenShard`] — the sharded control plane for
//!   thousand-worker clusters: levels split into contiguous ranges, one shard
//!   per range, with grants delegated via leases and schedules proved
//!   byte-identical to the oracle ([`ControlPlane`] is the seam the runtime
//!   holds — `cfg.shards` selects the plane);
//! * [`FelaRuntime`] — the discrete-event world tying the server to workers, the
//!   GPU compute model, the flow-level network and straggler injection; implements
//!   [`fela_cluster::TrainingRuntime`].

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod config;
mod coordinator;
mod error;
mod lease;
pub mod oplog;
mod plan;
mod runtime;
mod server;
mod shard;
mod snapshot;
mod token;
pub mod wal;

pub use config::{CtdConfig, FelaConfig, RecoveryConfig};
pub use coordinator::{ControlPlane, Coordinator};
pub use error::ScheduleError;
pub use lease::{ExpiredLease, LeaseInfo};
pub use oplog::{apply_op, replay_oplog, CoordOp, OpDivergence, OpKind, OpOutcome};
pub use plan::{LevelPlan, PlanError, TokenPlan};
pub use runtime::{ComputeBackend, ComputeRequest, FelaRuntime, LocalCompute};
pub use server::{Grant, LevelMeta, ServerStats, SyncSpec, TokenServer};
pub use shard::TokenShard;
pub use snapshot::ServerSnapshot;
pub use token::{Token, TokenId};
pub use wal::{
    recover, recover_elastic, wal_path, DurabilityOptions, EpochShape, FileWal, MemWal, Recovered,
    WalError, WalRecord, WalSink, WalWriter,
};
