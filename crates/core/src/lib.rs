//! # fela-core — the Fela runtime
//!
//! The paper's primary contribution: token-based, elastically tuned hybrid-parallel
//! training (§III). The crate decomposes as:
//!
//! * [`FelaConfig`] — parallelism weights, ADS/HF/CTD policy toggles, control-plane
//!   overhead constants;
//! * [`TokenPlan`] — how one BSP iteration decomposes into tokens per level
//!   (§III-B, §IV-B);
//! * [`TokenServer`] — Token Generator + Token Distributor + Token Bucket/STBs +
//!   Info Mapping, with the ADS (§III-D), HF (§III-E) and CTD (§III-F) policies as
//!   pure, unit-tested scheduling logic;
//! * [`FelaRuntime`] — the discrete-event world tying the server to workers, the
//!   GPU compute model, the flow-level network and straggler injection; implements
//!   [`fela_cluster::TrainingRuntime`].

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod config;
mod error;
mod plan;
mod runtime;
mod server;
mod token;

pub use config::{CtdConfig, FelaConfig, RecoveryConfig};
pub use error::ScheduleError;
pub use plan::{LevelPlan, PlanError, TokenPlan};
pub use runtime::{ComputeBackend, ComputeRequest, FelaRuntime, LocalCompute};
pub use server::{Grant, LevelMeta, ServerSnapshot, ServerStats, SyncSpec, TokenServer};
pub use token::{Token, TokenId};
