//! Typed scheduling errors.
//!
//! The Token Server's bucket / Info-Mapping paths used to assert their
//! invariants with `unwrap()`/`expect()`; every such breach is now a
//! [`ScheduleError`] propagated to the caller. Library users (the `fela-check`
//! verifier, tests, future runtimes) can handle them; the simulation runtime
//! treats any of them as a fatal scheduler bug and aborts the run with the
//! error's message.

use crate::token::TokenId;

/// An internal scheduling invariant was violated.
///
/// Every variant names the exact invariant, so a failing run (or a
/// `fela-check` replay) pinpoints the broken component instead of panicking
/// deep inside a bucket operation.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ScheduleError {
    /// A worker index outside `0..n_workers` reached the server.
    InvalidWorker {
        /// Offending worker index.
        worker: usize,
        /// Cluster size the server was built for.
        n_workers: usize,
    },
    /// An operation referenced a token the server never generated.
    UnknownToken {
        /// The missing token.
        token: TokenId,
    },
    /// A token was reported complete twice (double gradient contribution).
    DuplicateReport {
        /// The twice-reported token.
        token: TokenId,
    },
    /// A sub-token bucket held an id at an invalid position (bucket corruption).
    CorruptBucket {
        /// Bucket (worker) index.
        bucket: usize,
        /// Level queue within the bucket.
        level: usize,
        /// Position that failed to resolve.
        position: usize,
    },
    /// A root (level-0) token had no sample owner.
    MissingSampleOwner {
        /// The malformed token.
        token: TokenId,
    },
    /// Info Mapping has no holder for a dependency that must have completed.
    MissingDependencyHolder {
        /// The token being granted.
        token: TokenId,
        /// Its dependency with no recorded holder.
        dep: TokenId,
    },
    /// A level was treated as conditional but the config carries no CTD subset.
    CtdConfigMissing {
        /// The level in question.
        level: usize,
    },
    /// The CTD subset was empty when a conditional token needed placement.
    EmptyCtdSubset {
        /// The level whose token could not be placed.
        level: usize,
    },
    /// A level index outside the plan reached the server.
    LevelOutOfRange {
        /// Offending level.
        level: usize,
        /// Number of levels in the plan.
        levels: usize,
    },
    /// A parameter sync finished twice for the same `(level, iteration)`.
    DuplicateSync {
        /// Level whose sync repeated.
        level: usize,
        /// Iteration whose sync repeated.
        iteration: u64,
    },
    /// Token generation exceeded the plan's per-iteration count for a level.
    OverGeneration {
        /// Level that over-generated.
        level: usize,
        /// Iteration in which it happened.
        iteration: u64,
    },
    /// A report arrived for a token whose lease the reporter no longer holds
    /// (the lease expired or was revoked by a crash, and the token may already
    /// be re-granted). The gradient must be discarded, not applied.
    StaleReport {
        /// The reporting worker.
        worker: usize,
        /// The token whose lease it lost.
        token: TokenId,
    },
    /// An operation targeted a worker the server considers down or
    /// quarantined (a crashed worker can legitimately race its own removal,
    /// so callers treat this as a signal, not a bug).
    WorkerUnavailable {
        /// The unavailable worker.
        worker: usize,
    },
    /// A liveness transition (crash/restart) repeated or contradicted the
    /// current membership state.
    BadLivenessTransition {
        /// The worker whose transition was invalid.
        worker: usize,
        /// Whether the server currently considers it alive.
        alive: bool,
    },
    /// Every worker is dead or quarantined: no grant can ever be served again
    /// and the run cannot make progress.
    NoAliveWorkers,
}

impl std::fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScheduleError::InvalidWorker { worker, n_workers } => {
                write!(f, "worker {worker} outside cluster of {n_workers}")
            }
            ScheduleError::UnknownToken { token } => {
                write!(f, "token {} was never generated", token.0)
            }
            ScheduleError::DuplicateReport { token } => {
                write!(f, "token {} reported complete twice", token.0)
            }
            ScheduleError::CorruptBucket {
                bucket,
                level,
                position,
            } => write!(
                f,
                "sub-token bucket {bucket} level {level} has no entry at position {position}"
            ),
            ScheduleError::MissingSampleOwner { token } => {
                write!(f, "root token {} has no sample owner", token.0)
            }
            ScheduleError::MissingDependencyHolder { token, dep } => write!(
                f,
                "token {} depends on token {} which has no recorded holder",
                token.0, dep.0
            ),
            ScheduleError::CtdConfigMissing { level } => {
                write!(
                    f,
                    "level {level} treated as conditional without a CTD config"
                )
            }
            ScheduleError::EmptyCtdSubset { level } => {
                write!(f, "empty CTD subset placing a level-{level} token")
            }
            ScheduleError::LevelOutOfRange { level, levels } => {
                write!(f, "level {level} outside plan with {levels} levels")
            }
            ScheduleError::DuplicateSync { level, iteration } => {
                write!(
                    f,
                    "duplicate sync completion for level {level} iteration {iteration}"
                )
            }
            ScheduleError::OverGeneration { level, iteration } => write!(
                f,
                "token generation exceeded the plan at level {level} iteration {iteration}"
            ),
            ScheduleError::StaleReport { worker, token } => write!(
                f,
                "worker {worker} reported token {} without holding its lease",
                token.0
            ),
            ScheduleError::WorkerUnavailable { worker } => {
                write!(f, "worker {worker} is down or quarantined")
            }
            ScheduleError::BadLivenessTransition { worker, alive } => write!(
                f,
                "invalid liveness transition for worker {worker} (alive = {alive})"
            ),
            ScheduleError::NoAliveWorkers => {
                write!(f, "no alive workers remain to schedule onto")
            }
        }
    }
}

impl std::error::Error for ScheduleError {}
