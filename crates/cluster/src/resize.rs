//! Deterministic planned-resize events.
//!
//! Where [`crate::FaultModel`] injects *unplanned* failures, a [`ResizeModel`]
//! declares *planned* elasticity: workers joining or leaving the cluster at a
//! BSP iteration boundary, announced ahead of time (an autoscaler decision, a
//! spot-instance reclaim notice, an operator scaling the job). Like the fault
//! and straggler scenarios it is a pure function of its coordinates — the
//! probabilistic `Churn` scenario derives its draws by hashing
//! `(seed, iteration)` — so every runtime under comparison sees the *same*
//! realisation of resizes, and a sweep is byte-identical regardless of
//! `--jobs`.
//!
//! A resize is *declared* against the iteration at whose **start** it takes
//! effect; the elastic controller (`fela-elastic`) splits the run into epochs
//! at those boundaries and re-tunes each epoch. `ResizeModel::None` declares
//! nothing at all, which is what keeps resize-free runs bit-identical to a
//! build without this module.

use fela_sim::SimRng;
use serde::{Deserialize, Serialize};

/// Churn never shrinks the cluster below this many workers.
pub const MIN_CHURN_WORKERS: usize = 2;
/// Churn never grows the cluster beyond this many workers.
pub const MAX_CHURN_WORKERS: usize = 64;

/// What the cluster membership does at a resize boundary.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum ResizeAction {
    /// `n` fresh workers join the cluster.
    Join(usize),
    /// The listed workers (current 0-based ranks) leave; survivors are
    /// re-ranked contiguously, preserving order.
    Leave(Vec<usize>),
}

impl ResizeAction {
    /// The signed worker-count delta this action requests, before the
    /// applier drops out-of-range ranks or enforces the ≥1-survivor floor.
    pub fn requested_delta(&self) -> i64 {
        match self {
            ResizeAction::Join(n) => *n as i64,
            ResizeAction::Leave(ranks) => -(ranks.len() as i64),
        }
    }
}

/// One scripted resize: `action` takes effect at the start of `iteration`.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct ResizeEvent {
    /// Iteration (0-based) at whose start the membership changes. Must be
    /// ≥ 1: iteration 0's membership is the scenario's initial cluster.
    pub iteration: u64,
    /// The membership change.
    pub action: ResizeAction,
}

/// A deterministic planned-elasticity scenario.
#[derive(Clone, PartialEq, Debug, Default, Serialize, Deserialize)]
pub enum ResizeModel {
    /// No resizes — byte-identical behaviour to a build without elasticity.
    #[default]
    None,
    /// A scripted sequence of resizes (sorted by iteration, one per
    /// iteration; see [`ResizeModel::validate`]).
    Scripted(Vec<ResizeEvent>),
    /// Probabilistic churn: each iteration boundary independently resizes
    /// with probability `rate`; a second stateless draw picks join vs leave.
    /// Draws are stateless hashes of `(seed, iteration)`, exactly like
    /// [`crate::FaultModel::Chaos`]. Joins add one worker, leaves retire the
    /// highest-ranked worker, and the walk is clamped to
    /// [`MIN_CHURN_WORKERS`]..=[`MAX_CHURN_WORKERS`].
    Churn {
        /// Per-boundary resize probability.
        rate: f64,
        /// Seed defining the (shared) realisation.
        seed: u64,
    },
}

impl ResizeModel {
    /// The membership change (if any) taking effect at the start of
    /// `iteration`, given the `n_workers` in effect just before it.
    ///
    /// Pure in its arguments: for a fixed model the answer depends only on
    /// `(iteration, n_workers)`, never on call order — an epoch schedule
    /// computed once is therefore identical across `--jobs` and across
    /// runtimes. Iteration 0 never resizes (the initial membership is the
    /// scenario's cluster spec).
    pub fn action_for(&self, iteration: u64, n_workers: usize) -> Option<ResizeAction> {
        if iteration == 0 {
            return None;
        }
        match self {
            ResizeModel::None => None,
            ResizeModel::Scripted(events) => events
                .iter()
                .find(|e| e.iteration == iteration)
                .map(|e| e.action.clone()),
            ResizeModel::Churn { rate, seed } => {
                // Stateless hash of (seed, iteration) → one Bernoulli draw
                // plus one direction draw, mixed with an odd constant distinct
                // from the straggler and fault models so a same-seed `Churn`
                // realisation never correlates with either.
                let mix = seed ^ iteration.wrapping_mul(0xD6E8_FEB8_6659_FD93);
                let mut rng = SimRng::seed_from_u64(mix);
                if !rng.chance(*rate) {
                    return None;
                }
                let grow = rng.chance(0.5);
                if (grow && n_workers < MAX_CHURN_WORKERS) || n_workers <= MIN_CHURN_WORKERS {
                    Some(ResizeAction::Join(1))
                } else {
                    Some(ResizeAction::Leave(vec![n_workers - 1]))
                }
            }
        }
    }

    /// True if this scenario never resizes.
    pub fn is_none(&self) -> bool {
        matches!(self, ResizeModel::None)
    }

    /// The same scenario re-rooted on `seed` (the harness `--seed` override).
    /// Scripted resizes carry no randomness and are returned unchanged.
    #[must_use]
    pub fn with_seed(self, seed: u64) -> Self {
        match self {
            ResizeModel::Churn { rate, .. } => ResizeModel::Churn { rate, seed },
            other => other,
        }
    }

    /// Checks scenario parameters, returning a user-facing message on the
    /// first problem found. Mirrors [`crate::FaultModel::validate`]:
    /// scripted events must be sorted, unique per iteration, never at
    /// iteration 0, and individually well-formed; churn must have
    /// `rate ∈ [0, 1]`.
    pub fn validate(&self) -> Result<(), String> {
        match self {
            ResizeModel::None => Ok(()),
            ResizeModel::Scripted(events) => {
                if events.is_empty() {
                    return Err("scripted resize needs at least one event".into());
                }
                for pair in events.windows(2) {
                    if pair[1].iteration <= pair[0].iteration {
                        return Err(format!(
                            "resize events must be sorted with one event per iteration \
                             (iteration {} follows {})",
                            pair[1].iteration, pair[0].iteration
                        ));
                    }
                }
                for e in events {
                    if e.iteration == 0 {
                        return Err("a resize cannot strike iteration 0 \
                             (the initial membership is the cluster spec)"
                            .into());
                    }
                    match &e.action {
                        ResizeAction::Join(0) => {
                            return Err(format!(
                                "join at iteration {} adds no workers",
                                e.iteration
                            ))
                        }
                        ResizeAction::Leave(ranks) => {
                            if ranks.is_empty() {
                                return Err(format!(
                                    "leave at iteration {} names no workers",
                                    e.iteration
                                ));
                            }
                            let mut seen = ranks.clone();
                            seen.sort_unstable();
                            seen.dedup();
                            if seen.len() != ranks.len() {
                                return Err(format!(
                                    "leave at iteration {} repeats a worker rank",
                                    e.iteration
                                ));
                            }
                        }
                        ResizeAction::Join(_) => {}
                    }
                }
                Ok(())
            }
            ResizeModel::Churn { rate, .. } => {
                if !rate.is_finite() || !(0.0..=1.0).contains(rate) {
                    Err(format!("resize churn rate {rate} outside [0, 1]"))
                } else {
                    Ok(())
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const N: usize = 8;

    fn join_at(it: u64, n: usize) -> ResizeEvent {
        ResizeEvent {
            iteration: it,
            action: ResizeAction::Join(n),
        }
    }

    fn leave_at(it: u64, ranks: Vec<usize>) -> ResizeEvent {
        ResizeEvent {
            iteration: it,
            action: ResizeAction::Leave(ranks),
        }
    }

    #[test]
    fn none_never_resizes() {
        let m = ResizeModel::None;
        for it in 0..50 {
            assert_eq!(m.action_for(it, N), None);
        }
        assert!(m.is_none());
        assert!(m.validate().is_ok());
    }

    #[test]
    fn scripted_hits_exactly_its_iterations() {
        let m = ResizeModel::Scripted(vec![join_at(3, 2), leave_at(7, vec![0, 4])]);
        assert!(m.validate().is_ok());
        assert!(!m.is_none());
        let mut hits = 0;
        for it in 0..20 {
            if let Some(action) = m.action_for(it, N) {
                match it {
                    3 => assert_eq!(action, ResizeAction::Join(2)),
                    7 => assert_eq!(action, ResizeAction::Leave(vec![0, 4])),
                    other => panic!("unexpected resize at iteration {other}"),
                }
                hits += 1;
            }
        }
        assert_eq!(hits, 2);
    }

    #[test]
    fn iteration_zero_never_resizes() {
        // Even a (invalid) scripted event at 0 is masked by the boundary rule;
        // validate() rejects it anyway.
        let m = ResizeModel::Scripted(vec![join_at(0, 1)]);
        assert_eq!(m.action_for(0, N), None);
        assert!(m.validate().is_err());
        let churn = ResizeModel::Churn { rate: 1.0, seed: 1 };
        assert_eq!(churn.action_for(0, N), None);
    }

    #[test]
    fn churn_is_deterministic_per_boundary() {
        let m = ResizeModel::Churn {
            rate: 0.3,
            seed: 11,
        };
        for it in 0..60 {
            for n in 2..12 {
                assert_eq!(m.action_for(it, n), m.action_for(it, n));
            }
        }
    }

    #[test]
    fn churn_rate_approximates_rate() {
        let m = ResizeModel::Churn {
            rate: 0.25,
            seed: 5,
        };
        let trials = 40_000u64;
        let hits = (1..=trials)
            .filter(|&it| m.action_for(it, N).is_some())
            .count();
        let rate = hits as f64 / trials as f64;
        assert!((rate - 0.25).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn churn_respects_floor_and_ceiling() {
        let m = ResizeModel::Churn { rate: 1.0, seed: 3 };
        for it in 1..200 {
            match m.action_for(it, MIN_CHURN_WORKERS) {
                Some(ResizeAction::Join(1)) => {}
                other => panic!("at the floor churn must join, got {other:?}"),
            }
            match m.action_for(it, MAX_CHURN_WORKERS) {
                Some(ResizeAction::Leave(ranks)) => {
                    assert_eq!(ranks, vec![MAX_CHURN_WORKERS - 1]);
                }
                other => panic!("at the ceiling churn must leave, got {other:?}"),
            }
        }
    }

    #[test]
    fn churn_decorrelated_from_chaos_faults() {
        // Same seed must not produce the same hit pattern as the fault
        // model — the two draws use different mixing constants.
        let r = ResizeModel::Churn { rate: 0.5, seed: 9 };
        let f = crate::FaultModel::Chaos {
            p: 0.5,
            down: fela_sim::SimDuration::from_secs(1),
            seed: 9,
        };
        let differs =
            (1..100).any(|it| r.action_for(it, N).is_some() != f.fault_for(it, 0, N).is_some());
        assert!(differs);
    }

    #[test]
    fn with_seed_reroots_only_churn() {
        let c = ResizeModel::Churn { rate: 0.1, seed: 1 };
        assert!(matches!(
            c.with_seed(77),
            ResizeModel::Churn { seed: 77, .. }
        ));
        let s = ResizeModel::Scripted(vec![join_at(2, 1)]);
        assert_eq!(s.clone().with_seed(77), s);
        assert_eq!(ResizeModel::None.with_seed(77), ResizeModel::None);
    }

    #[test]
    fn validate_rejects_malformed_scripts() {
        for (label, m) in [
            ("empty script", ResizeModel::Scripted(vec![])),
            (
                "unsorted",
                ResizeModel::Scripted(vec![join_at(5, 1), join_at(3, 1)]),
            ),
            (
                "duplicate iteration",
                ResizeModel::Scripted(vec![join_at(3, 1), join_at(3, 2)]),
            ),
            ("join zero", ResizeModel::Scripted(vec![join_at(4, 0)])),
            (
                "empty leave",
                ResizeModel::Scripted(vec![leave_at(4, vec![])]),
            ),
            (
                "repeated rank",
                ResizeModel::Scripted(vec![leave_at(4, vec![1, 1])]),
            ),
        ] {
            assert!(m.validate().is_err(), "{label} should be rejected");
        }
        for bad in [-0.1, 1.5, f64::NAN, f64::INFINITY] {
            let m = ResizeModel::Churn { rate: bad, seed: 0 };
            assert!(m.validate().is_err(), "rate={bad} should be rejected");
        }
        assert!(ResizeModel::Churn { rate: 0.0, seed: 0 }.validate().is_ok());
    }

    #[test]
    fn serde_round_trips() {
        let m = ResizeModel::Scripted(vec![join_at(3, 2), leave_at(9, vec![1, 5])]);
        let json = serde_json::to_string(&m).expect("serializes");
        let back: ResizeModel = serde_json::from_str(&json).expect("parses");
        assert_eq!(back, m);
    }

    // ---- determinism/range property tests (the FaultModel contract: a
    // resize model is a pure function of its declared coordinates) ---------

    use proptest::prelude::*;

    fn arb_model() -> impl Strategy<Value = ResizeModel> {
        prop_oneof![
            Just(ResizeModel::None),
            (1u64..64, 1usize..4).prop_map(|(it, n)| ResizeModel::Scripted(vec![join_at(it, n)])),
            (1u64..32, 0usize..8, 1usize..4).prop_map(|(it, rank, gap)| ResizeModel::Scripted(
                vec![leave_at(it, vec![rank]), join_at(it + gap as u64, 1)]
            )),
            (0.0f64..1.0, any::<u64>()).prop_map(|(rate, seed)| ResizeModel::Churn { rate, seed }),
        ]
    }

    proptest! {
        #[test]
        fn every_model_is_a_pure_function_of_its_cell(
            m in arb_model(),
            it in 0u64..64,
            n in 2usize..16
        ) {
            prop_assert_eq!(m.action_for(it, n), m.action_for(it, n));
        }

        #[test]
        fn valid_models_stay_valid_under_reseeding(m in arb_model(), seed in any::<u64>()) {
            prop_assert!(m.validate().is_ok());
            prop_assert!(m.clone().with_seed(seed).validate().is_ok());
            // Re-seeding never changes *whether* a scenario resizes.
            prop_assert_eq!(m.is_none(), m.with_seed(seed).is_none());
        }

        #[test]
        fn churn_walk_stays_within_bounds(
            rate in 0.0f64..1.0,
            seed in any::<u64>(),
            start in 2usize..16
        ) {
            // Applying churn's own actions step by step never escapes the
            // [MIN, MAX] clamp.
            let m = ResizeModel::Churn { rate, seed };
            let mut n = start;
            for it in 1..128u64 {
                match m.action_for(it, n) {
                    Some(ResizeAction::Join(j)) => n += j,
                    Some(ResizeAction::Leave(ranks)) => {
                        prop_assert!(ranks.iter().all(|&r| r < n));
                        n -= ranks.len();
                    }
                    None => {}
                }
                prop_assert!(n >= MIN_CHURN_WORKERS.min(start));
                prop_assert!(n <= MAX_CHURN_WORKERS);
            }
        }
    }
}
