//! Deterministic fault injection.
//!
//! Where [`crate::StragglerModel`] injects *slowness*, a [`FaultModel`] injects
//! *failures*: worker crashes (permanent or crash-restart-after-`d`), transient
//! hangs, and network link outages. Like the straggler scenarios it is a pure
//! function of `(iteration, worker)` — the probabilistic `Chaos` scenario
//! derives its draws by hashing `(seed, iteration, worker)` — so every runtime
//! under comparison sees the *same* realisation of failures, and a sweep is
//! byte-identical regardless of `--jobs`.
//!
//! A fault is *declared* against the iteration in which it strikes; runtimes
//! translate the declaration into simulator events when that iteration starts
//! on the victim. `FaultModel::None` schedules nothing at all, which is what
//! keeps fault-free runs bit-identical to a build without this module.

use fela_sim::{SimDuration, SimRng};
use serde::{Deserialize, Serialize};

/// What happens to the victim when a fault strikes.
#[derive(Clone, Copy, PartialEq, Debug, Serialize, Deserialize)]
pub enum FaultKind {
    /// The worker process dies and never comes back.
    Crash,
    /// The worker dies and rejoins after `down` of wall-clock (sim) time.
    CrashRestart {
        /// Downtime between the crash and the rejoin.
        down: SimDuration,
    },
    /// The worker freezes for `stall` but keeps its state (a GC pause, an NFS
    /// stall): its in-flight compute finishes late instead of being lost.
    Hang {
        /// How long the worker is unresponsive.
        stall: SimDuration,
    },
    /// The worker's NIC/link goes dark for `down`: in-flight transfers abort,
    /// the node is unreachable, but its process survives and reconnects.
    LinkDown {
        /// Outage duration.
        down: SimDuration,
    },
}

/// A deterministic failure scenario.
#[derive(Clone, Copy, PartialEq, Debug, Default, Serialize, Deserialize)]
pub enum FaultModel {
    /// No faults — byte-identical behaviour to a build without fault injection.
    #[default]
    None,
    /// A single scripted fault: `kind` strikes `worker` at the start of its
    /// `iteration`-th compute.
    Scripted {
        /// Victim worker id.
        worker: usize,
        /// Iteration (0-based) in which the fault strikes.
        iteration: u64,
        /// What happens.
        kind: FaultKind,
    },
    /// Probabilistic crash-restart churn: each `(iteration, worker)` cell
    /// independently crashes with probability `p` and rejoins after `down`.
    /// Draws are stateless hashes of `(seed, iteration, worker)`, exactly like
    /// [`crate::StragglerModel::Probabilistic`].
    Chaos {
        /// Per-iteration crash probability for each worker.
        p: f64,
        /// Downtime before the victim rejoins.
        down: SimDuration,
        /// Seed defining the (shared) realisation.
        seed: u64,
    },
    /// The **Token Server process** dies at the start of `iteration` and
    /// restarts after `down`, recovering its scheduling state from the
    /// write-ahead log (`fela_core::wal`). Declared per iteration, not per
    /// worker: [`FaultModel::fault_for`] never reports it — runtimes query
    /// [`FaultModel::server_fault_for`] instead.
    ServerCrashRestart {
        /// Iteration (0-based) whose start kills the server.
        iteration: u64,
        /// Downtime between the crash and the recovered restart.
        down: SimDuration,
    },
}

impl FaultModel {
    /// The fault (if any) striking `worker` in `iteration`.
    pub fn fault_for(&self, iteration: u64, worker: usize, n_workers: usize) -> Option<FaultKind> {
        if worker >= n_workers {
            return None;
        }
        match *self {
            FaultModel::None | FaultModel::ServerCrashRestart { .. } => None,
            FaultModel::Scripted {
                worker: w,
                iteration: it,
                kind,
            } => (w == worker && it == iteration).then_some(kind),
            FaultModel::Chaos { p, down, seed } => {
                // Stateless hash of (seed, iteration, worker) → one Bernoulli
                // draw, mixed with distinct odd constants so a `Chaos` fault
                // realisation never correlates with a same-seed
                // `StragglerModel::Probabilistic` realisation.
                let mix = seed
                    ^ iteration.wrapping_mul(0xA24B_AED4_963E_E407)
                    ^ (worker as u64).wrapping_mul(0x9FB2_1C65_1E98_DF25);
                let mut rng = SimRng::seed_from_u64(mix);
                rng.chance(p).then_some(FaultKind::CrashRestart { down })
            }
        }
    }

    /// The server downtime (if any) a crash striking at the start of
    /// `iteration` incurs. The worker-fault scenarios never kill the server.
    pub fn server_fault_for(&self, iteration: u64) -> Option<SimDuration> {
        match *self {
            FaultModel::ServerCrashRestart {
                iteration: it,
                down,
            } => (it == iteration).then_some(down),
            _ => None,
        }
    }

    /// True if this scenario never injects faults.
    pub fn is_none(&self) -> bool {
        matches!(self, FaultModel::None)
    }

    /// The same scenario re-rooted on `seed` (the harness `--seed` override).
    /// Scripted faults carry no randomness and are returned unchanged.
    #[must_use]
    pub fn with_seed(self, seed: u64) -> Self {
        match self {
            FaultModel::Chaos { p, down, .. } => FaultModel::Chaos { p, down, seed },
            other => other,
        }
    }

    /// Checks scenario parameters, returning a user-facing message on the
    /// first problem found. Mirrors [`crate::StragglerModel::validate`]: the
    /// probabilistic scenario must have `p ∈ [0, 1]` (a NaN or out-of-range
    /// `p` would otherwise be silently clamped by `SimRng::chance`).
    pub fn validate(&self) -> Result<(), String> {
        match *self {
            FaultModel::None
            | FaultModel::Scripted { .. }
            | FaultModel::ServerCrashRestart { .. } => Ok(()),
            FaultModel::Chaos { p, .. } => {
                if !p.is_finite() || !(0.0..=1.0).contains(&p) {
                    Err(format!("fault probability {p} outside [0, 1]"))
                } else {
                    Ok(())
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const N: usize = 8;
    const DOWN: SimDuration = SimDuration::from_secs(10);

    #[test]
    fn none_never_faults() {
        let m = FaultModel::None;
        for it in 0..50 {
            for w in 0..N {
                assert_eq!(m.fault_for(it, w, N), None);
            }
        }
        assert!(m.is_none());
    }

    #[test]
    fn scripted_hits_exactly_one_cell() {
        let m = FaultModel::Scripted {
            worker: 3,
            iteration: 7,
            kind: FaultKind::CrashRestart { down: DOWN },
        };
        let mut hits = 0;
        for it in 0..20 {
            for w in 0..N {
                if let Some(kind) = m.fault_for(it, w, N) {
                    assert_eq!((it, w), (7, 3));
                    assert_eq!(kind, FaultKind::CrashRestart { down: DOWN });
                    hits += 1;
                }
            }
        }
        assert_eq!(hits, 1);
        assert!(!m.is_none());
    }

    #[test]
    fn scripted_out_of_range_worker_never_fires() {
        let m = FaultModel::Scripted {
            worker: 12,
            iteration: 0,
            kind: FaultKind::Crash,
        };
        for it in 0..4 {
            for w in 0..N {
                assert_eq!(m.fault_for(it, w, N), None);
            }
        }
    }

    #[test]
    fn chaos_is_deterministic_per_cell() {
        let m = FaultModel::Chaos {
            p: 0.2,
            down: DOWN,
            seed: 9,
        };
        for it in 0..30 {
            for w in 0..N {
                assert_eq!(m.fault_for(it, w, N), m.fault_for(it, w, N));
            }
        }
    }

    #[test]
    fn chaos_rate_approximates_p() {
        let m = FaultModel::Chaos {
            p: 0.2,
            down: DOWN,
            seed: 5,
        };
        let trials = 20_000u64;
        let hits = (0..trials)
            .flat_map(|it| (0..N).map(move |w| (it, w)))
            .filter(|&(it, w)| m.fault_for(it, w, N).is_some())
            .count();
        let rate = hits as f64 / (trials as usize * N) as f64;
        assert!((rate - 0.2).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn chaos_decorrelated_from_probabilistic_straggler() {
        // Same seed must not produce the same hit pattern as the straggler
        // model — the two draws use different mixing constants.
        let f = FaultModel::Chaos {
            p: 0.5,
            down: DOWN,
            seed: 11,
        };
        let s = crate::StragglerModel::Probabilistic {
            p: 0.5,
            delay: DOWN,
            seed: 11,
        };
        let differs = (0..100).any(|it| {
            // A cell differs when exactly one of the two models hits it:
            // fault fired (`is_some`) while the straggler slept (`is_zero`).
            (0..N).any(|w| f.fault_for(it, w, N).is_some() == s.delay_for(it, w, N).is_zero())
        });
        assert!(differs);
    }

    #[test]
    fn with_seed_reroots_only_chaos() {
        let c = FaultModel::Chaos {
            p: 0.1,
            down: DOWN,
            seed: 1,
        };
        assert!(matches!(
            c.with_seed(77),
            FaultModel::Chaos { seed: 77, .. }
        ));
        let s = FaultModel::Scripted {
            worker: 0,
            iteration: 0,
            kind: FaultKind::Crash,
        };
        assert_eq!(s.with_seed(77), s);
        assert_eq!(FaultModel::None.with_seed(77), FaultModel::None);
    }

    #[test]
    fn server_crash_restart_hits_exactly_its_iteration() {
        let m = FaultModel::ServerCrashRestart {
            iteration: 3,
            down: DOWN,
        };
        for it in 0..20u64 {
            assert_eq!(m.server_fault_for(it), (it == 3).then_some(DOWN));
            // The server fault never masquerades as a worker fault.
            for w in 0..N {
                assert_eq!(m.fault_for(it, w, N), None);
            }
        }
        assert!(!m.is_none());
        assert!(m.validate().is_ok());
        // Seed re-rooting is a no-op: the spec carries no randomness.
        assert_eq!(m.with_seed(123), m);
    }

    #[test]
    fn worker_faults_never_kill_the_server() {
        let models = [
            FaultModel::None,
            FaultModel::Scripted {
                worker: 0,
                iteration: 0,
                kind: FaultKind::Crash,
            },
            FaultModel::Chaos {
                p: 1.0,
                down: DOWN,
                seed: 3,
            },
        ];
        for m in models {
            for it in 0..10 {
                assert_eq!(m.server_fault_for(it), None);
            }
        }
    }

    #[test]
    fn validate_rejects_bad_probability() {
        for bad in [-0.1, 1.5, f64::NAN, f64::INFINITY] {
            let m = FaultModel::Chaos {
                p: bad,
                down: DOWN,
                seed: 0,
            };
            assert!(m.validate().is_err(), "p={bad} should be rejected");
        }
        assert!(FaultModel::Chaos {
            p: 0.0,
            down: DOWN,
            seed: 0
        }
        .validate()
        .is_ok());
        assert!(FaultModel::None.validate().is_ok());
    }

    // ---- determinism/range property tests (the StragglerModel contract:
    // a fault model is a pure function of its declared coordinates) -------

    use proptest::prelude::*;

    fn arb_model() -> impl Strategy<Value = FaultModel> {
        prop_oneof![
            Just(FaultModel::None),
            (0usize..16, 0u64..64, 0u64..60, any::<bool>()).prop_map(|(w, it, secs, perm)| {
                FaultModel::Scripted {
                    worker: w,
                    iteration: it,
                    kind: if perm {
                        FaultKind::Crash
                    } else {
                        FaultKind::CrashRestart {
                            down: SimDuration::from_secs(secs),
                        }
                    },
                }
            }),
            (0.0f64..1.0, 0u64..60, any::<u64>()).prop_map(|(p, secs, seed)| {
                FaultModel::Chaos {
                    p,
                    down: SimDuration::from_secs(secs),
                    seed,
                }
            }),
            (0u64..64, 0u64..60).prop_map(|(it, secs)| FaultModel::ServerCrashRestart {
                iteration: it,
                down: SimDuration::from_secs(secs),
            }),
        ]
    }

    proptest! {
        #[test]
        fn every_model_is_a_pure_function_of_its_cell(
            m in arb_model(),
            it in 0u64..64,
            w in 0usize..16
        ) {
            prop_assert_eq!(m.fault_for(it, w, N), m.fault_for(it, w, N));
            prop_assert_eq!(m.server_fault_for(it), m.server_fault_for(it));
        }

        #[test]
        fn out_of_range_workers_never_fault(m in arb_model(), it in 0u64..64) {
            for w in N..N + 4 {
                prop_assert_eq!(m.fault_for(it, w, N), None);
            }
        }

        #[test]
        fn server_faults_strike_exactly_one_iteration(
            target in 0u64..64,
            secs in 0u64..60,
            probe in 0u64..64
        ) {
            let down = SimDuration::from_secs(secs);
            let m = FaultModel::ServerCrashRestart { iteration: target, down };
            prop_assert_eq!(
                m.server_fault_for(probe),
                (probe == target).then_some(down)
            );
        }

        #[test]
        fn valid_models_stay_valid_under_reseeding(m in arb_model(), seed in any::<u64>()) {
            prop_assert!(m.validate().is_ok());
            prop_assert!(m.with_seed(seed).validate().is_ok());
            // Re-seeding never changes *whether* a scenario faults.
            prop_assert_eq!(m.is_none(), m.with_seed(seed).is_none());
        }
    }
}
