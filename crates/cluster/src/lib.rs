//! # fela-cluster — cluster assembly and straggler injection
//!
//! Binds the GPU model, the network model and the straggler scenarios into a
//! [`Scenario`] that every runtime executes through the [`TrainingRuntime`]
//! interface. The paper's testbed — 8 K40c nodes behind a 40GE switch with 10 Gbps
//! NICs — is [`ClusterSpec::paper_testbed`].

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod fault;
mod resize;
mod runtime;
mod scenario;
mod straggler;

pub use fault::{FaultKind, FaultModel};
pub use resize::{ResizeAction, ResizeEvent, ResizeModel, MAX_CHURN_WORKERS, MIN_CHURN_WORKERS};
pub use runtime::TrainingRuntime;
pub use scenario::{ClusterSpec, Scenario};
pub use straggler::StragglerModel;
