//! The runtime interface every training system implements.
//!
//! Separated from [`crate::scenario`] so that consumers that only dispatch
//! runtimes (the experiment harness, the CLI) depend on a module whose job is
//! exactly that: naming and executing a runtime against a [`Scenario`].

use fela_metrics::RunReport;

use crate::scenario::Scenario;

/// A distributed-training runtime that can execute a scenario.
pub trait TrainingRuntime {
    /// Short identifier used in reports (`"fela"`, `"dp"`, `"mp"`, `"hp"`).
    fn name(&self) -> &'static str;

    /// Executes the scenario and reports timing/counters.
    fn run(&self, scenario: &Scenario) -> RunReport;
}
