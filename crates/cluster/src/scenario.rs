//! Experiment scenarios.
//!
//! A [`Scenario`] bundles everything an experiment run needs — model, total batch,
//! iteration count, cluster hardware and straggler injection — so that Fela and the
//! three baselines can be compared on byte-identical inputs. The interface each of
//! them implements lives in [`crate::runtime`].

use fela_gpu::{ComputeModel, MemoryModel};
use fela_model::Model;
use fela_net::NetworkConfig;
use fela_sim::SimDuration;

use crate::fault::{FaultKind, FaultModel};
use crate::resize::ResizeModel;
use crate::straggler::StragglerModel;

/// Static description of the cluster hardware.
#[derive(Clone, Debug)]
pub struct ClusterSpec {
    /// Number of worker nodes (one GPU each).
    pub nodes: usize,
    /// GPU compute-time model (identical across nodes; heterogeneity is expressed
    /// through `speed_factors`).
    pub compute: ComputeModel,
    /// GPU memory model.
    pub memory: MemoryModel,
    /// NIC/switch configuration.
    pub network: NetworkConfig,
    /// Per-node compute-time multipliers (1.0 = nominal). Length must equal
    /// `nodes`; values > 1 model persistently slow machines, independent of the
    /// transient stragglers injected by a [`StragglerModel`].
    pub speed_factors: Vec<f64>,
}

impl ClusterSpec {
    /// The paper's testbed: 8 homogeneous K40c nodes, 10 Gbps links (§V-A).
    pub fn paper_testbed() -> Self {
        Self::k40c_cluster(8)
    }

    /// A K40c cluster of arbitrary size with the paper's network profile.
    pub fn k40c_cluster(nodes: usize) -> Self {
        ClusterSpec {
            nodes,
            compute: ComputeModel::k40c(),
            memory: MemoryModel::k40c(),
            network: NetworkConfig::paper_testbed(nodes),
            speed_factors: vec![1.0; nodes],
        }
    }

    /// Compute time for the unit range `[start, end)` at `batch` on `worker`,
    /// including its persistent speed factor.
    pub fn compute_secs(
        &self,
        model: &Model,
        start: usize,
        end: usize,
        batch: u64,
        worker: usize,
    ) -> f64 {
        self.compute.range_time(model, start, end, batch) * self.speed_factors[worker]
    }

    /// Like [`ClusterSpec::compute_secs`] but honouring the GPU memory limit via
    /// gradient-accumulation micro-batching (see
    /// [`ComputeModel::chunked_range_time`]).
    pub fn chunked_compute_secs(
        &self,
        model: &Model,
        start: usize,
        end: usize,
        batch: u64,
        worker: usize,
    ) -> f64 {
        self.compute
            .chunked_range_time(&self.memory, model, start, end, batch)
            * self.speed_factors[worker]
    }

    /// Validates internal consistency.
    ///
    /// # Panics
    /// Panics if the spec is inconsistent (mismatched lengths, zero nodes,
    /// non-positive speed factors).
    pub fn validate(&self) {
        assert!(self.nodes > 0, "cluster needs at least one node");
        assert_eq!(
            self.speed_factors.len(),
            self.nodes,
            "speed_factors length must equal node count"
        );
        assert!(
            self.speed_factors.iter().all(|&f| f > 0.0),
            "speed factors must be positive"
        );
        assert_eq!(
            self.network.nodes, self.nodes,
            "network node count must match cluster"
        );
    }
}

/// One experiment run request.
#[derive(Clone, Debug)]
pub struct Scenario {
    /// The model to train.
    pub model: Model,
    /// Total batch size per iteration (split across tokens / workers by the
    /// runtime).
    pub total_batch: u64,
    /// Number of BSP iterations (the paper uses 100).
    pub iterations: u64,
    /// Cluster hardware.
    pub cluster: ClusterSpec,
    /// Straggler injection.
    pub straggler: StragglerModel,
    /// Fault injection (crashes, hangs, link outages).
    pub fault: FaultModel,
    /// Planned cluster resizes (joins/leaves at iteration boundaries),
    /// consumed by the elastic controller. [`ResizeModel::None`] keeps the
    /// classic fixed-membership behaviour.
    pub resize: ResizeModel,
}

impl Scenario {
    /// A paper-style scenario: 8-node K40c testbed, 100 iterations, no
    /// stragglers, no faults.
    pub fn paper(model: Model, total_batch: u64) -> Self {
        Scenario {
            model,
            total_batch,
            iterations: 100,
            cluster: ClusterSpec::paper_testbed(),
            straggler: StragglerModel::None,
            fault: FaultModel::None,
            resize: ResizeModel::None,
        }
    }

    /// Replaces the straggler model (builder style).
    pub fn with_straggler(mut self, straggler: StragglerModel) -> Self {
        self.straggler = straggler;
        self
    }

    /// Replaces the fault model (builder style).
    pub fn with_fault(mut self, fault: FaultModel) -> Self {
        self.fault = fault;
        self
    }

    /// Replaces the resize model (builder style).
    pub fn with_resize(mut self, resize: ResizeModel) -> Self {
        self.resize = resize;
        self
    }

    /// Replaces the iteration count (builder style).
    pub fn with_iterations(mut self, iterations: u64) -> Self {
        self.iterations = iterations;
        self
    }

    /// The straggler sleep injected into `worker` in `iteration`.
    pub fn straggler_delay(&self, iteration: u64, worker: usize) -> SimDuration {
        self.straggler
            .delay_for(iteration, worker, self.cluster.nodes)
    }

    /// The fault (if any) striking `worker` in `iteration`.
    pub fn fault_for(&self, iteration: u64, worker: usize) -> Option<FaultKind> {
        self.fault.fault_for(iteration, worker, self.cluster.nodes)
    }

    /// How long a worker replaced after a permanent crash takes to come back,
    /// as seen by runtimes without token recovery (an operator swapping the
    /// machine and restoring from checkpoint).
    pub const CRASH_REPLACEMENT: SimDuration = SimDuration::from_secs(3600);

    /// Total downtime a fault-stalled runtime must absorb when `worker` faults
    /// in `iteration`.
    ///
    /// Runtimes without token recovery (DP/MP/HP) cannot re-assign a victim's
    /// work: a crash-restart, hang or link outage stalls the iteration until
    /// the victim is back, modelled as extra compute delay the same way
    /// straggler sleeps are. A *permanent* crash would wedge them forever; we
    /// charge [`Scenario::CRASH_REPLACEMENT`] instead — the operator replaces
    /// the dead machine — so the comparison against Fela's online recovery
    /// stays finite.
    pub fn fault_stall(&self, iteration: u64, worker: usize) -> SimDuration {
        match self.fault_for(iteration, worker) {
            None => SimDuration::ZERO,
            Some(FaultKind::Crash) => Self::CRASH_REPLACEMENT,
            Some(FaultKind::CrashRestart { down }) => down,
            Some(FaultKind::Hang { stall }) => stall,
            Some(FaultKind::LinkDown { down }) => down,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fela_model::zoo;

    #[test]
    fn paper_testbed_shape() {
        let c = ClusterSpec::paper_testbed();
        c.validate();
        assert_eq!(c.nodes, 8);
        assert_eq!(c.network.nodes, 8);
        assert!((c.network.link_bandwidth - 0.875e9).abs() < 1.0);
    }

    #[test]
    fn compute_secs_applies_speed_factor() {
        let mut c = ClusterSpec::k40c_cluster(2);
        c.speed_factors = vec![1.0, 2.0];
        let m = zoo::googlenet();
        let fast = c.compute_secs(&m, 0, m.len(), 64, 0);
        let slow = c.compute_secs(&m, 0, m.len(), 64, 1);
        assert!((slow / fast - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "length must equal node count")]
    fn validate_catches_bad_speed_factors() {
        let mut c = ClusterSpec::k40c_cluster(4);
        c.speed_factors = vec![1.0];
        c.validate();
    }

    #[test]
    fn scenario_builders() {
        let s = Scenario::paper(zoo::googlenet(), 256)
            .with_iterations(10)
            .with_straggler(StragglerModel::RoundRobin {
                delay: SimDuration::from_secs(3),
            });
        assert_eq!(s.iterations, 10);
        assert_eq!(s.straggler_delay(3, 3), SimDuration::from_secs(3));
        assert!(s.straggler_delay(3, 4).is_zero());
    }
}
