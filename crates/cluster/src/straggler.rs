//! Straggler injection (§V-C2).
//!
//! The paper generates straggler effect "following the method in [10], [11]" by
//! adding sleeping delays to workers' computation. Two scenarios are defined:
//!
//! * **Round-robin** — in iteration `k`, worker `k mod N` is slowed by `d` seconds;
//! * **Probability-based** — in every iteration, each worker independently becomes
//!   a straggler with probability `p` and is slowed by `d` seconds.
//!
//! A [`StragglerModel`] is a *pure function* of `(iteration, worker)`: the
//! probabilistic scenario derives its coin flips by hashing `(seed, iteration,
//! worker)`, so every runtime under comparison sees the *same* realisation of
//! stragglers — exactly the controlled-experiment property the paper's testbed
//! scripts enforce, and the reason DP/MP/HP/Fela numbers are comparable run to run.

use fela_sim::{SimDuration, SimRng};
use serde::{Deserialize, Serialize};

/// A deterministic straggler scenario.
#[derive(Clone, Copy, PartialEq, Debug, Serialize, Deserialize)]
pub enum StragglerModel {
    /// No stragglers (the Figure 8 scenario).
    None,
    /// Round-robin: worker `iteration % n` sleeps `delay` (Figure 9).
    RoundRobin {
        /// Sleep injected into the victim's compute.
        delay: SimDuration,
    },
    /// Probability-based: each worker sleeps `delay` with probability `p` each
    /// iteration (Figure 10).
    Probabilistic {
        /// Per-iteration straggler probability for each worker.
        p: f64,
        /// Sleep injected into a straggler's compute.
        delay: SimDuration,
        /// Seed defining the (shared) realisation.
        seed: u64,
    },
}

impl StragglerModel {
    /// The sleep delay injected into `worker`'s computation during `iteration`.
    ///
    /// Workers outside `0..n_workers` never straggle — the same range contract
    /// as [`crate::FaultModel::fault_for`] — so callers can probe arbitrary
    /// `(worker, n_workers)` pairs without spurious delays.
    pub fn delay_for(&self, iteration: u64, worker: usize, n_workers: usize) -> SimDuration {
        if worker >= n_workers {
            return SimDuration::ZERO;
        }
        match *self {
            StragglerModel::None => SimDuration::ZERO,
            StragglerModel::RoundRobin { delay } => {
                if n_workers > 0 && iteration % n_workers as u64 == worker as u64 {
                    delay
                } else {
                    SimDuration::ZERO
                }
            }
            StragglerModel::Probabilistic { p, delay, seed } => {
                // Stateless hash of (seed, iteration, worker) → one Bernoulli draw.
                let mix = seed
                    ^ iteration.wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    ^ (worker as u64).wrapping_mul(0xC2B2_AE3D_27D4_EB4F);
                let mut rng = SimRng::seed_from_u64(mix);
                if rng.chance(p) {
                    delay
                } else {
                    SimDuration::ZERO
                }
            }
        }
    }

    /// True if this scenario never injects delays.
    pub fn is_none(&self) -> bool {
        matches!(self, StragglerModel::None)
    }

    /// The same scenario re-rooted on `seed`.
    ///
    /// `None` and `RoundRobin` carry no randomness, so they are returned
    /// unchanged; only `Probabilistic` picks a new realisation. Used by the
    /// harness's `--seed` override so all runtimes under comparison still share
    /// one straggler realisation.
    #[must_use]
    pub fn with_seed(self, seed: u64) -> Self {
        match self {
            StragglerModel::Probabilistic { p, delay, .. } => {
                StragglerModel::Probabilistic { p, delay, seed }
            }
            other => other,
        }
    }

    /// Checks scenario parameters, returning a user-facing message on the
    /// first problem found.
    ///
    /// `Probabilistic` requires `p ∈ [0, 1]`: an out-of-range or NaN `p` would
    /// otherwise be *silently clamped* inside `SimRng::chance`, turning a typo
    /// like `p = 10` into "always a straggler" without any diagnostic. Callers
    /// that construct models from user input (the CLI's `--straggler` parser,
    /// harness sweep specs) surface this as a parse error.
    pub fn validate(&self) -> Result<(), String> {
        match *self {
            StragglerModel::None | StragglerModel::RoundRobin { .. } => Ok(()),
            StragglerModel::Probabilistic { p, .. } => {
                if !p.is_finite() || !(0.0..=1.0).contains(&p) {
                    Err(format!("straggler probability {p} outside [0, 1]"))
                } else {
                    Ok(())
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const N: usize = 8;
    const D: SimDuration = SimDuration::from_secs(6);

    #[test]
    fn none_never_delays() {
        let m = StragglerModel::None;
        for it in 0..20 {
            for w in 0..N {
                assert!(m.delay_for(it, w, N).is_zero());
            }
        }
        assert!(m.is_none());
    }

    #[test]
    fn round_robin_hits_exactly_one_worker_per_iteration() {
        let m = StragglerModel::RoundRobin { delay: D };
        for it in 0..32 {
            let victims: Vec<_> = (0..N)
                .filter(|&w| !m.delay_for(it, w, N).is_zero())
                .collect();
            assert_eq!(victims, vec![(it % N as u64) as usize]);
        }
    }

    #[test]
    fn round_robin_cycles() {
        let m = StragglerModel::RoundRobin { delay: D };
        assert_eq!(m.delay_for(0, 0, N), D);
        assert_eq!(m.delay_for(8, 0, N), D);
        assert_eq!(m.delay_for(9, 1, N), D);
        assert!(m.delay_for(9, 0, N).is_zero());
    }

    #[test]
    fn probabilistic_is_deterministic_per_cell() {
        let m = StragglerModel::Probabilistic {
            p: 0.3,
            delay: D,
            seed: 42,
        };
        for it in 0..10 {
            for w in 0..N {
                assert_eq!(m.delay_for(it, w, N), m.delay_for(it, w, N));
            }
        }
    }

    #[test]
    fn probabilistic_rate_approximates_p() {
        let m = StragglerModel::Probabilistic {
            p: 0.3,
            delay: D,
            seed: 7,
        };
        let trials = 20_000u64;
        let hits = (0..trials)
            .flat_map(|it| (0..N).map(move |w| (it, w)))
            .filter(|&(it, w)| !m.delay_for(it, w, N).is_zero())
            .count();
        let rate = hits as f64 / (trials as usize * N) as f64;
        assert!((rate - 0.3).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn probabilistic_seeds_differ() {
        let a = StragglerModel::Probabilistic {
            p: 0.5,
            delay: D,
            seed: 1,
        };
        let b = StragglerModel::Probabilistic {
            p: 0.5,
            delay: D,
            seed: 2,
        };
        let differs = (0..100).any(|it| {
            (0..N).any(|w| a.delay_for(it, w, N).is_zero() != b.delay_for(it, w, N).is_zero())
        });
        assert!(differs);
    }
}
