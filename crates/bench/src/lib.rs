//! # fela-bench — experiment drivers
//!
//! One binary per table/figure of the paper (see DESIGN.md §4 for the index);
//! each binary is a thin wrapper over the matching [`figures`] module, which
//! declares its runs as a [`fela_harness::SweepSpec`] and executes them through
//! the harness — in parallel, with per-run [`fela_harness::RunRecord`] JSONL
//! artifacts under `results/` next to the ASCII tables and JSON summaries.
//!
//! Environment knobs:
//!
//! * `FELA_ITERS` — iterations per measured run (default 100, as in §V-A);
//! * `FELA_QUICK=1` — shorthand for a 10-iteration smoke run of every experiment;
//! * `FELA_JOBS` — worker threads per sweep (default: available parallelism);
//! * `FELA_RESULTS_DIR` — artifact directory (default `results/`).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod figures;

use std::fs;

use fela_baselines::{DpRuntime, HpRuntime, MpRuntime};
use fela_cluster::Scenario;
use fela_core::{FelaConfig, FelaRuntime};
use fela_harness::{RuntimeFactory, SweepSpec};
use fela_metrics::RunReport;
use fela_model::Model;
use fela_tuning::Tuner;
use serde::Serialize;
use std::sync::Arc;

/// Iterations per measured run (`FELA_ITERS`, `FELA_QUICK`, default 100).
pub fn iterations() -> u64 {
    if std::env::var("FELA_QUICK").is_ok_and(|v| v == "1") {
        return 10;
    }
    std::env::var("FELA_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(100)
}

/// Tuning iterations per profiled case (5 in the paper; 2 in quick mode).
pub fn tuning_iterations() -> u64 {
    if std::env::var("FELA_QUICK").is_ok_and(|v| v == "1") {
        2
    } else {
        5
    }
}

/// The batch sizes the evaluation sweeps.
pub const BATCHES: [u64; 5] = [64, 128, 256, 512, 1024];

/// Writes `value` as pretty JSON to `<results_dir>/<name>.json` (creating the
/// directory, honouring `FELA_RESULTS_DIR`), and reports the path on stdout.
pub fn save_json<T: Serialize>(name: &str, value: &T) {
    let dir = fela_harness::results_dir();
    if let Err(e) = fs::create_dir_all(&dir) {
        eprintln!("warning: cannot create results dir: {e}");
        return;
    }
    let path = dir.join(format!("{name}.json"));
    match serde_json::to_string_pretty(value) {
        Ok(json) => match fs::write(&path, json) {
            Ok(()) => println!("[saved {}]", path.display()),
            Err(e) => eprintln!("warning: cannot write {}: {e}", path.display()),
        },
        Err(e) => eprintln!("warning: cannot serialize {name}: {e}"),
    }
}

/// A paper-style scenario on the 8-node testbed.
pub fn scenario(model: Model, batch: u64) -> Scenario {
    Scenario::paper(model, batch).with_iterations(iterations())
}

/// Tunes Fela for a scenario (the §IV-B two-phase search) and returns the
/// winning configuration.
///
/// Profiling runs sequentially: this helper is typically called *inside* a
/// harness job, where sweep-level parallelism already saturates the machine.
pub fn tuned_fela(scenario: &Scenario) -> FelaConfig {
    let tuner = Tuner {
        profile_iterations: tuning_iterations(),
    };
    let config = tuner.tune_with_jobs(scenario, 1).best_config;
    verify_fela_config(&config, scenario);
    config
}

/// Statically verifies a configuration's schedule DAG before it is used in a
/// measured run; panics with the violation list if an invariant is broken.
///
/// Every configuration a bench binary measures flows through here (tuned or
/// fixed), so a scheduling regression fails the experiment loudly instead of
/// producing a plausible-looking but invalid result.
pub fn verify_fela_config(config: &FelaConfig, scenario: &Scenario) {
    let partition = FelaRuntime::new(FelaConfig::new(1)).partition_for(scenario);
    if let Err(fela_check::CheckError::Dag(violations)) = fela_check::verify_config(
        &partition,
        config,
        scenario.total_batch,
        scenario.cluster.nodes,
        1,
    ) {
        panic!(
            "configuration {:?} fails schedule verification on {}: {:?}",
            config.weights, scenario.model.name, violations
        );
    }
    // A Plan error means the config is infeasible for this scenario; the
    // runtime surfaces that itself, so only DAG violations are fatal here.
}

/// Runs tuned Fela on a scenario.
pub fn run_tuned_fela(scenario: &Scenario) -> RunReport {
    use fela_cluster::TrainingRuntime as _;
    FelaRuntime::new(tuned_fela(scenario)).run(scenario)
}

/// Harness factory for tuned Fela: the §IV-B search runs *per job*, so each
/// scenario in a sweep gets its own winning configuration (as in Figure 8,
/// where the tuned weight vector differs across batch sizes).
pub fn tuned_fela_factory() -> RuntimeFactory {
    Arc::new(|sc: &Scenario| Box::new(FelaRuntime::new(tuned_fela(sc))))
}

/// Harness factory for Fela with a fixed, pre-tuned configuration. The config
/// is re-verified against each scenario it is applied to (straggler sweeps
/// reuse one tuned config across many scenarios).
pub fn fixed_fela_factory(config: FelaConfig) -> RuntimeFactory {
    Arc::new(move |sc: &Scenario| {
        verify_fela_config(&config, sc);
        Box::new(FelaRuntime::new(config.clone()))
    })
}

/// Adds the three baseline runtimes (DP, MP, HP) to a sweep (builder style).
#[must_use]
pub fn with_baselines(spec: SweepSpec) -> SweepSpec {
    spec.runtime("dp", |_| Box::new(DpRuntime::default()))
        .runtime("mp", |_| Box::new(MpRuntime::default()))
        .runtime("hp", |_| Box::new(HpRuntime))
}

/// Lower-case artifact label for a model, e.g. `"VGG19"` → `"vgg19"`.
pub fn model_slug(name: &str) -> String {
    name.to_lowercase()
}

/// Formats the paper's improvement style from a ratio (see
/// [`fela_metrics::format_speedup`]).
pub fn improvement(ours: f64, baseline: f64) -> String {
    fela_metrics::format_speedup(ours / baseline)
}

/// AT and PID of every runtime under one straggler setting (Figures 9 and 10).
#[derive(Clone, Debug, Serialize)]
pub struct StragglerRow {
    /// Benchmark model.
    pub model: String,
    /// Total batch size.
    pub batch: u64,
    /// Scenario label, e.g. `"d=6s"` or `"p=0.3"`.
    pub setting: String,
    /// Average throughput per runtime: `[fela, dp, mp, hp]`.
    pub at: [f64; 4],
    /// Per-iteration delay (Equation 4) per runtime: `[fela, dp, mp, hp]`.
    pub pid: [f64; 4],
}

/// Label of the non-straggler reference scenario in straggler sweeps.
const BASE_LABEL: &str = "base";

/// Runs the four runtimes under each straggler setting and computes AT + PID
/// against each runtime's own non-straggler baseline (Equation 4).
///
/// The whole grid — four runtimes × (base + every setting) — is declared as
/// one [`SweepSpec`] named `experiment` and executed on `jobs` worker
/// threads; the record stream lands in `results/<experiment>.jsonl`. Fela is
/// tuned once on the non-straggler scenario (the paper applies the tuned
/// configuration to every straggler case), so tuning happens before the sweep.
pub fn straggler_experiment(
    experiment: &str,
    model: &Model,
    batch: u64,
    settings: &[(String, fela_cluster::StragglerModel)],
    jobs: usize,
) -> Vec<StragglerRow> {
    let base_scenario = scenario(model.clone(), batch);
    let fela_config = tuned_fela(&base_scenario);
    let mut spec = with_baselines(
        SweepSpec::new(experiment).runtime_factory("fela", fixed_fela_factory(fela_config)),
    )
    .scenario(BASE_LABEL, base_scenario.clone());
    for (label, straggler) in settings {
        spec = spec.scenario(
            label.clone(),
            base_scenario.clone().with_straggler(*straggler),
        );
    }
    let result = spec.run(jobs);
    if let Err(e) = result.write_artifacts() {
        eprintln!("warning: cannot write {experiment} artifacts: {e}");
    }

    const RUNTIMES: [&str; 4] = ["fela", "dp", "mp", "hp"];
    let baselines: Vec<&RunReport> = RUNTIMES
        .iter()
        .map(|rt| result.report(rt, BASE_LABEL))
        .collect();
    settings
        .iter()
        .map(|(label, _)| {
            let mut at = [0.0; 4];
            let mut pid = [0.0; 4];
            for (i, rt) in RUNTIMES.iter().enumerate() {
                let report = result.report(rt, label);
                at[i] = report.average_throughput();
                pid[i] = fela_metrics::per_iteration_delay(report, baselines[i]);
            }
            StragglerRow {
                model: model.name.clone(),
                batch,
                setting: label.clone(),
                at,
                pid,
            }
        })
        .collect()
}

/// Prints AT and PID tables for straggler rows and the Fela-vs-baseline summary.
pub fn print_straggler_tables(title: &str, rows: &[StragglerRow]) {
    use fela_metrics::{f2, f3, Table};
    let mut at_table = Table::new(
        format!("{title} — average throughput (samples/s)"),
        &["setting", "Fela", "DP", "MP", "HP"],
    );
    let mut pid_table = Table::new(
        format!("{title} — per-iteration delay (s)"),
        &["setting", "Fela", "DP", "MP", "HP"],
    );
    for r in rows {
        at_table.row(vec![
            r.setting.clone(),
            f2(r.at[0]),
            f2(r.at[1]),
            f2(r.at[2]),
            f2(r.at[3]),
        ]);
        pid_table.row(vec![
            r.setting.clone(),
            f3(r.pid[0]),
            f3(r.pid[1]),
            f3(r.pid[2]),
            f3(r.pid[3]),
        ]);
    }
    print!("{}", at_table.render());
    print!("{}", pid_table.render());
    let ratio_range = |idx: usize| {
        let ratios: Vec<f64> = rows.iter().map(|r| r.at[0] / r.at[idx]).collect();
        format!(
            "{} ~ {}",
            improvement(ratios.iter().cloned().fold(f64::INFINITY, f64::min), 1.0),
            improvement(
                ratios.iter().cloned().fold(f64::NEG_INFINITY, f64::max),
                1.0
            )
        )
    };
    println!(
        "Fela AT improvement: vs DP {}, vs MP {}, vs HP {}",
        ratio_range(1),
        ratio_range(2),
        ratio_range(3)
    );
    let pid_red = |idx: usize| {
        let reds: Vec<f64> = rows
            .iter()
            .map(|r| (1.0 - r.pid[0] / r.pid[idx]) * 100.0)
            .collect();
        format!(
            "{:.2}% ~ {:.2}%",
            reds.iter().cloned().fold(f64::INFINITY, f64::min),
            reds.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
        )
    };
    println!(
        "Fela PID reduction: vs DP {}, vs HP {}\n",
        pid_red(1),
        pid_red(3)
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use fela_model::zoo;

    #[test]
    fn batch_sweep_is_papers() {
        assert_eq!(BATCHES, [64, 128, 256, 512, 1024]);
    }

    #[test]
    fn scenario_uses_paper_testbed() {
        let s = scenario(zoo::googlenet(), 128);
        assert_eq!(s.cluster.nodes, 8);
        assert_eq!(s.total_batch, 128);
    }

    #[test]
    fn improvement_formats() {
        assert_eq!(improvement(129.0, 100.0), "29.00%");
        assert_eq!(improvement(323.0, 100.0), "3.23×");
    }
}
