//! # fela-bench — experiment harnesses
//!
//! One binary per table/figure of the paper (see DESIGN.md §4 for the index).
//! Each binary prints the same rows/series the paper reports and writes a
//! machine-readable JSON copy under `results/` so EXPERIMENTS.md stays
//! regenerable.
//!
//! Environment knobs:
//!
//! * `FELA_ITERS` — iterations per measured run (default 100, as in §V-A);
//! * `FELA_QUICK=1` — shorthand for a 10-iteration smoke run of every experiment.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::fs;
use std::path::PathBuf;

use fela_cluster::{Scenario, TrainingRuntime};
use fela_core::{FelaConfig, FelaRuntime};
use fela_metrics::RunReport;
use fela_model::Model;
use fela_tuning::Tuner;
use serde::Serialize;

/// Iterations per measured run (`FELA_ITERS`, `FELA_QUICK`, default 100).
pub fn iterations() -> u64 {
    if std::env::var("FELA_QUICK").is_ok_and(|v| v == "1") {
        return 10;
    }
    std::env::var("FELA_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(100)
}

/// Tuning iterations per profiled case (5 in the paper; 2 in quick mode).
pub fn tuning_iterations() -> u64 {
    if std::env::var("FELA_QUICK").is_ok_and(|v| v == "1") {
        2
    } else {
        5
    }
}

/// The batch sizes the evaluation sweeps.
pub const BATCHES: [u64; 5] = [64, 128, 256, 512, 1024];

/// Writes `value` as pretty JSON to `results/<name>.json` (creating the
/// directory), and reports the path on stdout.
pub fn save_json<T: Serialize>(name: &str, value: &T) {
    let dir = PathBuf::from("results");
    if let Err(e) = fs::create_dir_all(&dir) {
        eprintln!("warning: cannot create results dir: {e}");
        return;
    }
    let path = dir.join(format!("{name}.json"));
    match serde_json::to_string_pretty(value) {
        Ok(json) => match fs::write(&path, json) {
            Ok(()) => println!("[saved {}]", path.display()),
            Err(e) => eprintln!("warning: cannot write {}: {e}", path.display()),
        },
        Err(e) => eprintln!("warning: cannot serialize {name}: {e}"),
    }
}

/// A paper-style scenario on the 8-node testbed.
pub fn scenario(model: Model, batch: u64) -> Scenario {
    Scenario::paper(model, batch).with_iterations(iterations())
}

/// Tunes Fela for a scenario (the §IV-B two-phase search) and returns the
/// winning configuration.
pub fn tuned_fela(scenario: &Scenario) -> FelaConfig {
    let tuner = Tuner {
        profile_iterations: tuning_iterations(),
    };
    tuner.tune(scenario).best_config
}

/// Runs tuned Fela on a scenario.
pub fn run_tuned_fela(scenario: &Scenario) -> RunReport {
    FelaRuntime::new(tuned_fela(scenario)).run(scenario)
}

/// Formats the paper's improvement style from a ratio (see
/// [`fela_metrics::format_speedup`]).
pub fn improvement(ours: f64, baseline: f64) -> String {
    fela_metrics::format_speedup(ours / baseline)
}

/// AT and PID of every runtime under one straggler setting (Figures 9 and 10).
#[derive(Clone, Debug, Serialize)]
pub struct StragglerRow {
    /// Benchmark model.
    pub model: String,
    /// Total batch size.
    pub batch: u64,
    /// Scenario label, e.g. `"d=6s"` or `"p=0.3"`.
    pub setting: String,
    /// Average throughput per runtime: `[fela, dp, mp, hp]`.
    pub at: [f64; 4],
    /// Per-iteration delay (Equation 4) per runtime: `[fela, dp, mp, hp]`.
    pub pid: [f64; 4],
}

/// Runs the four runtimes under each straggler setting and computes AT + PID
/// against each runtime's own non-straggler baseline (Equation 4).
pub fn straggler_experiment(
    model: &Model,
    batch: u64,
    settings: &[(String, fela_cluster::StragglerModel)],
) -> Vec<StragglerRow> {
    use fela_baselines::{DpRuntime, HpRuntime, MpRuntime};
    let base_scenario = scenario(model.clone(), batch);
    let fela_config = tuned_fela(&base_scenario);
    let runtimes: Vec<Box<dyn TrainingRuntime>> = vec![
        Box::new(FelaRuntime::new(fela_config)),
        Box::new(DpRuntime::default()),
        Box::new(MpRuntime::default()),
        Box::new(HpRuntime),
    ];
    let baselines: Vec<RunReport> = runtimes.iter().map(|r| r.run(&base_scenario)).collect();
    let mut rows = Vec::new();
    for (label, straggler) in settings {
        let sc = base_scenario.clone().with_straggler(*straggler);
        let mut at = [0.0; 4];
        let mut pid = [0.0; 4];
        for (i, rt) in runtimes.iter().enumerate() {
            let report = rt.run(&sc);
            at[i] = report.average_throughput();
            pid[i] = fela_metrics::per_iteration_delay(&report, &baselines[i]);
        }
        rows.push(StragglerRow {
            model: model.name.clone(),
            batch,
            setting: label.clone(),
            at,
            pid,
        });
    }
    rows
}

/// Prints AT and PID tables for straggler rows and the Fela-vs-baseline summary.
pub fn print_straggler_tables(title: &str, rows: &[StragglerRow]) {
    use fela_metrics::{f2, f3, Table};
    let mut at_table = Table::new(
        format!("{title} — average throughput (samples/s)"),
        &["setting", "Fela", "DP", "MP", "HP"],
    );
    let mut pid_table = Table::new(
        format!("{title} — per-iteration delay (s)"),
        &["setting", "Fela", "DP", "MP", "HP"],
    );
    for r in rows {
        at_table.row(vec![
            r.setting.clone(),
            f2(r.at[0]),
            f2(r.at[1]),
            f2(r.at[2]),
            f2(r.at[3]),
        ]);
        pid_table.row(vec![
            r.setting.clone(),
            f3(r.pid[0]),
            f3(r.pid[1]),
            f3(r.pid[2]),
            f3(r.pid[3]),
        ]);
    }
    print!("{}", at_table.render());
    print!("{}", pid_table.render());
    let ratio_range = |idx: usize| {
        let ratios: Vec<f64> = rows.iter().map(|r| r.at[0] / r.at[idx]).collect();
        format!(
            "{} ~ {}",
            improvement(ratios.iter().cloned().fold(f64::INFINITY, f64::min), 1.0),
            improvement(ratios.iter().cloned().fold(f64::NEG_INFINITY, f64::max), 1.0)
        )
    };
    println!(
        "Fela AT improvement: vs DP {}, vs MP {}, vs HP {}",
        ratio_range(1),
        ratio_range(2),
        ratio_range(3)
    );
    let pid_red = |idx: usize| {
        let reds: Vec<f64> = rows
            .iter()
            .map(|r| (1.0 - r.pid[0] / r.pid[idx]) * 100.0)
            .collect();
        format!(
            "{:.2}% ~ {:.2}%",
            reds.iter().cloned().fold(f64::INFINITY, f64::min),
            reds.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
        )
    };
    println!(
        "Fela PID reduction: vs DP {}, vs HP {}\n",
        pid_red(1),
        pid_red(3)
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use fela_model::zoo;

    #[test]
    fn batch_sweep_is_papers() {
        assert_eq!(BATCHES, [64, 128, 256, 512, 1024]);
    }

    #[test]
    fn scenario_uses_paper_testbed() {
        let s = scenario(zoo::googlenet(), 128);
        assert_eq!(s.cluster.nodes, 8);
        assert_eq!(s.total_batch, 128);
    }

    #[test]
    fn improvement_formats() {
        assert_eq!(improvement(129.0, 100.0), "29.00%");
        assert_eq!(improvement(323.0, 100.0), "3.23×");
    }
}
