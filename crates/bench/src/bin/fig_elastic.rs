//! Elasticity figure — makespan under resize churn. Thin wrapper over
//! [`fela_bench::figures::fig_elastic`].

fn main() {
    fela_bench::figures::fig_elastic::run(fela_harness::default_jobs());
}
