//! Design ablations beyond the paper's own. Thin wrapper over
//! [`fela_bench::figures::ablation`].

fn main() {
    fela_bench::figures::ablation::run(fela_harness::default_jobs());
}
