//! Design ablations beyond the paper's own (DESIGN.md §3/§6): the
//! cross-iteration pipelining that gives Fela its work conservation, the SSP
//! extension the paper sketches in §VI (token age / staleness bound), and the
//! centralized parameter-server bottleneck it attributes to PS-based designs.

use fela_baselines::DpRuntime;
use fela_bench::{save_json, scenario};
use fela_cluster::{StragglerModel, TrainingRuntime};
use fela_core::{FelaConfig, FelaRuntime};
use fela_metrics::{f2, Table};
use fela_model::zoo;
use fela_sim::SimDuration;
use serde::Serialize;

#[derive(Serialize)]
struct Out {
    pipelining: Vec<(u64, f64, f64)>,
    ssp: Vec<(u64, f64, f64)>,
    ps: Vec<(usize, f64)>,
}

fn fela(cfg: FelaConfig) -> FelaRuntime {
    FelaRuntime::new(cfg)
}

fn base_cfg() -> FelaConfig {
    FelaConfig::new(3).with_weights(vec![1, 2, 4])
}

fn main() {
    let mut out = Out {
        pipelining: Vec::new(),
        ssp: Vec::new(),
        ps: Vec::new(),
    };

    // 1. Cross-iteration pipelining: the work-conservation mechanism.
    let mut t1 = Table::new(
        "Ablation — cross-iteration pipelining (VGG19)",
        &["batch", "AT pipelined", "AT barrier", "gain", "util piped", "util barrier"],
    );
    for batch in [64u64, 256, 1024] {
        let sc = scenario(zoo::vgg19(), batch);
        let piped = fela(base_cfg()).run(&sc);
        let barrier = fela(base_cfg().with_pipelining(false)).run(&sc);
        t1.row(vec![
            batch.to_string(),
            f2(piped.average_throughput()),
            f2(barrier.average_throughput()),
            format!(
                "{}%",
                f2((piped.average_throughput() / barrier.average_throughput() - 1.0) * 100.0)
            ),
            f2(piped.mean_utilization()),
            f2(barrier.mean_utilization()),
        ]);
        out.pipelining.push((
            batch,
            piped.average_throughput(),
            barrier.average_throughput(),
        ));
    }
    print!("{}", t1.render());

    // 2. SSP staleness under transient stragglers (§VI extension).
    let mut t2 = Table::new(
        "Extension — SSP staleness under probabilistic stragglers (VGG19, batch 256, p=0.3, d=6s)",
        &["staleness", "AT (samples/s)", "vs BSP"],
    );
    let straggle = StragglerModel::Probabilistic {
        p: 0.3,
        delay: SimDuration::from_secs(6),
        seed: 11,
    };
    let sc = scenario(zoo::vgg19(), 256).with_straggler(straggle);
    let mut bsp_at = 0.0;
    for staleness in [0u64, 1, 2] {
        let r = fela(base_cfg().with_staleness(staleness)).run(&sc);
        if staleness == 0 {
            bsp_at = r.average_throughput();
        }
        t2.row(vec![
            staleness.to_string(),
            f2(r.average_throughput()),
            format!("{}%", f2((r.average_throughput() / bsp_at - 1.0) * 100.0)),
        ]);
        out.ssp.push((staleness, r.average_throughput(), bsp_at));
    }
    print!("{}", t2.render());

    // 3. DP sync algorithm: ring vs sharded parameter servers.
    let mut t3 = Table::new(
        "Ablation — DP gradient synchronisation (VGG19, batch 256)",
        &["sync", "AT (samples/s)"],
    );
    let sc = scenario(zoo::vgg19(), 256);
    let ring = DpRuntime::default().run(&sc).average_throughput();
    t3.row(vec!["ring all-reduce".into(), f2(ring)]);
    for servers in [1usize, 2, 4, 8] {
        let at = DpRuntime::parameter_server(servers)
            .run(&sc)
            .average_throughput();
        t3.row(vec![format!("PS × {servers}"), f2(at)]);
        out.ps.push((servers, at));
    }
    print!("{}", t3.render());
    println!(
        "Pipelining is most of Fela's work-conservation edge at small batches;\n\
         a staleness bound buys extra straggler tolerance at the cost of BSP\n\
         semantics (§VI); a single PS shard shows the centralized bottleneck of\n\
         §II-D, which sharding progressively dissolves."
    );
    save_json("ablation_design", &out);
}
