//! Regenerates every figure and table of the paper in one command.
//!
//! Runs each experiment from [`fela_bench::figures::ALL`] in DESIGN.md §4
//! order; each experiment parallelises internally across `FELA_JOBS` worker
//! threads (default: available parallelism). Combine with `FELA_QUICK=1` for
//! a fast smoke regeneration.

fn main() {
    let jobs = fela_harness::default_jobs();
    eprintln!(
        "regenerating {} experiments with {jobs} worker threads",
        fela_bench::figures::ALL.len()
    );
    for (name, run) in fela_bench::figures::ALL {
        println!("=== {name} ===");
        run(jobs);
        println!();
    }
}
