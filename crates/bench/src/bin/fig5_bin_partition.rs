//! Figure 5 — threshold batches and bin partition. Thin wrapper over
//! [`fela_bench::figures::fig5`].

fn main() {
    fela_bench::figures::fig5::run(fela_harness::default_jobs());
}
