//! Figure 10 — probability-based straggler scenario. Thin wrapper over
//! [`fela_bench::figures::fig10`].

fn main() {
    fela_bench::figures::fig10::run(fela_harness::default_jobs());
}
