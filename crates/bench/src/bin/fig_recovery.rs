//! Recovery figure — crash-restart churn. Thin wrapper over
//! [`fela_bench::figures::fig_recovery`].

fn main() {
    fela_bench::figures::fig_recovery::run(fela_harness::default_jobs());
}
