//! Server-recovery figure — durable WAL recovery vs restart-from-scratch.
//! Thin wrapper over [`fela_bench::figures::fig_server_recovery`].

fn main() {
    fela_bench::figures::fig_server_recovery::run(fela_harness::default_jobs());
}
