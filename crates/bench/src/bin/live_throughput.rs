//! `live_throughput` — token-grant throughput of the **real-clock** live
//! runtime (`fela-live`) as the worker count scales 1 → 64, on both
//! transports.
//!
//! Each cell runs the Token Server and `w` worker threads for a fixed AlexNet
//! workload with the modeled compute spans scaled down to real sleeps
//! (`time_scale`), and reports accepted token reports per wall-clock second.
//! More workers sleep their spans concurrently, so throughput scales until
//! the server's poll loop (one thread sweeping every link, batching grants
//! into `GrantBatch` frames) becomes the bottleneck.
//!
//! Knobs: `FELA_BENCH_DIR=<dir>` chooses where `BENCH_live_throughput.json`
//! lands (default: the current directory); `FELA_BENCH_QUICK=1` shortens the
//! run for CI smoke.

use fela_cluster::{ClusterSpec, Scenario};
use fela_core::{FelaConfig, FelaRuntime};
use fela_live::{run_real, transport_by_name, RealOptions};
use fela_model::zoo;

/// One measured cell.
struct Cell {
    id: String,
    tokens_per_sec: f64,
    grants: u64,
    elapsed_secs: f64,
}

fn measure(transport_name: &str, workers: usize, iterations: u64, time_scale: f64) -> Cell {
    let mut scenario = Scenario::paper(zoo::alexnet(), 256).with_iterations(iterations);
    scenario.cluster = ClusterSpec::k40c_cluster(workers);
    let m = FelaRuntime::new(FelaConfig::new(1))
        .partition_for(&scenario)
        .len();
    // SSP staleness keeps several iterations in flight, so each worker has
    // multiple tokens concurrently available — the regime the pipelined
    // `GrantBatch`/`ReportBatch` hot path amortizes. Under BSP (staleness 0)
    // every level is a hard barrier and batches are structurally size 1.
    let config = FelaConfig::new(m).with_staleness(8);
    let mut transport = transport_by_name(transport_name).expect("known transport");
    let outcome = run_real(
        &config,
        &scenario,
        transport.as_mut(),
        RealOptions {
            time_scale,
            pipeline: 16,
            ..RealOptions::default()
        },
    )
    .expect("live run completes");
    assert_eq!(
        outcome.iterations, iterations,
        "run must finish every iteration"
    );
    Cell {
        id: format!("live/{transport_name}_{workers}workers"),
        tokens_per_sec: outcome.tokens_per_sec,
        grants: outcome.grants,
        elapsed_secs: outcome.elapsed_secs,
    }
}

fn main() {
    let quick = std::env::var("FELA_BENCH_QUICK").is_ok_and(|v| v != "0" && !v.is_empty());
    let iterations: u64 = if quick { 3 } else { 20 };
    let time_scale = 2e-3;
    let worker_axis: &[usize] = if quick {
        &[1, 8, 64]
    } else {
        &[1, 2, 4, 8, 16, 32, 48, 64]
    };

    let mut cells = Vec::new();
    for transport in ["chan", "tcp"] {
        for &workers in worker_axis {
            let cell = measure(transport, workers, iterations, time_scale);
            println!(
                "{:<22} {:>10.0} tokens/s  ({} grants in {:.3}s)",
                cell.id, cell.tokens_per_sec, cell.grants, cell.elapsed_secs
            );
            cells.push(cell);
        }
    }

    let mut body = String::new();
    body.push_str("{\n  \"group\": \"live_throughput\",\n");
    body.push_str(&format!("  \"quick\": {quick},\n"));
    body.push_str(&format!(
        "  \"iterations\": {iterations},\n  \"time_scale\": {time_scale},\n"
    ));
    body.push_str("  \"staleness\": 8,\n  \"pipeline\": 16,\n");
    body.push_str("  \"benches\": [\n");
    for (i, c) in cells.iter().enumerate() {
        let comma = if i + 1 < cells.len() { "," } else { "" };
        body.push_str(&format!(
            "    {{ \"id\": \"{}\", \"tokens_per_sec\": {:.1}, \"grants\": {}, \"elapsed_secs\": {:.4} }}{comma}\n",
            c.id, c.tokens_per_sec, c.grants, c.elapsed_secs
        ));
    }
    body.push_str("  ]\n}\n");

    let dir = std::env::var("FELA_BENCH_DIR").unwrap_or_else(|_| ".".into());
    let path = std::path::Path::new(&dir).join("BENCH_live_throughput.json");
    std::fs::create_dir_all(&dir).expect("bench dir");
    std::fs::write(&path, body).expect("write bench artifact");
    println!("wrote {}", path.display());
}
