//! Figure 1 — layer-class throughput vs batch size. Thin wrapper over
//! [`fela_bench::figures::fig1`].

fn main() {
    fela_bench::figures::fig1::run(fela_harness::default_jobs());
}
