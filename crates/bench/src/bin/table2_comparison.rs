//! Table II — DML solution comparison. Thin wrapper over
//! [`fela_bench::figures::table2`].

fn main() {
    fela_bench::figures::table2::run(fela_harness::default_jobs());
}
