//! Figure 9 — round-robin straggler scenario. Thin wrapper over
//! [`fela_bench::figures::fig9`].

fn main() {
    fela_bench::figures::fig9::run(fela_harness::default_jobs());
}
