//! Figure 6 — the configuration-tuning landscape. Thin wrapper over
//! [`fela_bench::figures::fig6`].

fn main() {
    fela_bench::figures::fig6::run(fela_harness::default_jobs());
}
