//! Figure 7 / Table III — ablation of the scheduling policies: throughput with
//! and without ADS and HF (plus the tuning/CTD savings summarised from Figure 6),
//! across batch sizes and both benchmarks.

use fela_bench::{save_json, scenario, BATCHES};
use fela_cluster::TrainingRuntime;
use fela_core::{FelaConfig, FelaRuntime, TokenPlan};
use fela_metrics::{f2, Table};
use fela_model::{zoo, Model};
use serde::Serialize;

#[derive(Serialize)]
struct AblationRow {
    model: String,
    batch: u64,
    at_full: f64,
    at_no_ads: f64,
    at_no_hf: f64,
    ads_gain_pct: f64,
    hf_gain_pct: f64,
}

fn weights_for(model: &Model, batch: u64) -> Vec<u64> {
    // A representative mid-search configuration (the ablation isolates ADS/HF, so
    // a fixed reasonable weight vector is applied to every variant, as §V-B
    // applies "the tuned configurations to the comparative cases").
    let sc = scenario(model.clone(), batch);
    for w in [vec![1u64, 2, 4], vec![1, 1, 2], vec![1, 1, 1]] {
        let cfg = FelaConfig::new(3).with_weights(w.clone());
        let runtime = FelaRuntime::new(cfg.clone());
        if TokenPlan::build(&runtime.partition_for(&sc), &cfg, batch, 8).is_ok() {
            return w;
        }
    }
    vec![1, 1, 1]
}

fn main() {
    let mut rows = Vec::new();
    for model in [zoo::vgg19(), zoo::googlenet()] {
        let mut table = Table::new(
            format!("Figure 7 — ablation of ADS and HF ({})", model.name),
            &[
                "batch",
                "AT full (samples/s)",
                "AT no-ADS",
                "AT no-HF",
                "ADS gain",
                "HF gain",
            ],
        );
        for &batch in &BATCHES {
            let sc = scenario(model.clone(), batch);
            let w = weights_for(&model, batch);
            let full = FelaRuntime::new(FelaConfig::new(3).with_weights(w.clone())).run(&sc);
            let no_ads = FelaRuntime::new(
                FelaConfig::new(3).with_weights(w.clone()).with_ads(false),
            )
            .run(&sc);
            let no_hf = FelaRuntime::new(
                FelaConfig::new(3).with_weights(w.clone()).with_hf(false),
            )
            .run(&sc);
            let at = full.average_throughput();
            let ads_gain = (at / no_ads.average_throughput() - 1.0) * 100.0;
            let hf_gain = (at / no_hf.average_throughput() - 1.0) * 100.0;
            table.row(vec![
                batch.to_string(),
                f2(at),
                f2(no_ads.average_throughput()),
                f2(no_hf.average_throughput()),
                format!("{}%", f2(ads_gain)),
                format!("{}%", f2(hf_gain)),
            ]);
            rows.push(AblationRow {
                model: model.name.clone(),
                batch,
                at_full: at,
                at_no_ads: no_ads.average_throughput(),
                at_no_hf: no_hf.average_throughput(),
                ads_gain_pct: ads_gain,
                hf_gain_pct: hf_gain,
            });
        }
        print!("{}", table.render());
    }

    // Table III summary.
    let ads: Vec<f64> = rows.iter().map(|r| r.ads_gain_pct).collect();
    let hf: Vec<f64> = rows.iter().map(|r| r.hf_gain_pct).collect();
    let range = |xs: &[f64]| {
        format!(
            "{}% ~ {}%",
            f2(xs.iter().cloned().fold(f64::INFINITY, f64::min)),
            f2(xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max))
        )
    };
    let mut t3 = Table::new(
        "Table III — Summary of Ablation Study (measured here)",
        &["Strategy/Policy", "Performance Improvement", "Paper's range"],
    );
    t3.row(vec![
        "Parallelism Degree Tuning".into(),
        "see fig6_tuning Phase-1 column".into(),
        "8.51% ~ 51.69%".into(),
    ]);
    t3.row(vec!["ADS Policy".into(), range(&ads), "1.64% ~ 8.21%".into()]);
    t3.row(vec!["HF Policy".into(), range(&hf), "44.80% ~ 96.30%".into()]);
    t3.row(vec![
        "CTD Policy".into(),
        "see fig6_tuning Phase-2 column".into(),
        "5.31% ~ 41.25%".into(),
    ]);
    print!("{}", t3.render());
    save_json("fig7_ablation", &rows);
}
