//! Figure 7 / Table III — ADS and HF ablation. Thin wrapper over
//! [`fela_bench::figures::fig7`].

fn main() {
    fela_bench::figures::fig7::run(fela_harness::default_jobs());
}
