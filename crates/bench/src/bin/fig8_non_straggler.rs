//! Figure 8 — non-straggler throughput comparison. Thin wrapper over
//! [`fela_bench::figures::fig8`].

fn main() {
    fela_bench::figures::fig8::run(fela_harness::default_jobs());
}
