//! Table I — model zoo layer numbers. Thin wrapper over
//! [`fela_bench::figures::table1`].

fn main() {
    fela_bench::figures::table1::run(fela_harness::default_jobs());
}
