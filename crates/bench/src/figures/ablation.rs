//! Design ablations beyond the paper's own (DESIGN.md §3/§6): the
//! cross-iteration pipelining that gives Fela its work conservation, the SSP
//! extension the paper sketches in §VI (token age / staleness bound), and the
//! centralized parameter-server bottleneck it attributes to PS-based designs.
//!
//! Each of the three studies is its own harness sweep (its runtime axis is the
//! design variant under ablation), so the whole binary parallelises cleanly.

use fela_baselines::DpRuntime;
use fela_cluster::StragglerModel;
use fela_core::{FelaConfig, FelaRuntime};
use fela_harness::SweepSpec;
use fela_metrics::{f2, Table};
use fela_model::zoo;
use fela_sim::SimDuration;
use serde::Serialize;

use crate::{save_json, scenario};

#[derive(Serialize)]
struct Out {
    pipelining: Vec<(u64, f64, f64)>,
    ssp: Vec<(u64, f64, f64)>,
    ps: Vec<(usize, f64)>,
}

fn base_cfg() -> FelaConfig {
    FelaConfig::new(3).with_weights(vec![1, 2, 4])
}

/// Runs the three design-ablation sweeps on `jobs` worker threads.
pub fn run(jobs: usize) {
    let mut out = Out {
        pipelining: Vec::new(),
        ssp: Vec::new(),
        ps: Vec::new(),
    };

    // 1. Cross-iteration pipelining: the work-conservation mechanism.
    let batches = [64u64, 256, 1024];
    let mut spec = SweepSpec::new("ablation_pipelining")
        .runtime("pipelined", |_| Box::new(FelaRuntime::new(base_cfg())))
        .runtime("barrier", |_| {
            Box::new(FelaRuntime::new(base_cfg().with_pipelining(false)))
        });
    for &batch in &batches {
        spec = spec.scenario(format!("b{batch}"), scenario(zoo::vgg19(), batch));
    }
    let piped = spec.run(jobs);
    if let Err(e) = piped.write_artifacts() {
        eprintln!("warning: cannot write pipelining artifacts: {e}");
    }
    let mut t1 = Table::new(
        "Ablation — cross-iteration pipelining (VGG19)",
        &[
            "batch",
            "AT pipelined",
            "AT barrier",
            "gain",
            "util piped",
            "util barrier",
        ],
    );
    for &batch in &batches {
        let label = format!("b{batch}");
        let p = piped.report("pipelined", &label);
        let b = piped.report("barrier", &label);
        t1.row(vec![
            batch.to_string(),
            f2(p.average_throughput()),
            f2(b.average_throughput()),
            format!(
                "{}%",
                f2((p.average_throughput() / b.average_throughput() - 1.0) * 100.0)
            ),
            f2(p.mean_utilization()),
            f2(b.mean_utilization()),
        ]);
        out.pipelining
            .push((batch, p.average_throughput(), b.average_throughput()));
    }
    print!("{}", t1.render());

    // 2. SSP staleness under transient stragglers (§VI extension).
    let straggle = StragglerModel::Probabilistic {
        p: 0.3,
        delay: SimDuration::from_secs(6),
        seed: 11,
    };
    let ssp = SweepSpec::new("ablation_ssp")
        .runtime("s0", |_| {
            Box::new(FelaRuntime::new(base_cfg().with_staleness(0)))
        })
        .runtime("s1", |_| {
            Box::new(FelaRuntime::new(base_cfg().with_staleness(1)))
        })
        .runtime("s2", |_| {
            Box::new(FelaRuntime::new(base_cfg().with_staleness(2)))
        })
        .scenario(
            "b256+p0.3",
            scenario(zoo::vgg19(), 256).with_straggler(straggle),
        )
        .run(jobs);
    if let Err(e) = ssp.write_artifacts() {
        eprintln!("warning: cannot write ssp artifacts: {e}");
    }
    let mut t2 = Table::new(
        "Extension — SSP staleness under probabilistic stragglers (VGG19, batch 256, p=0.3, d=6s)",
        &["staleness", "AT (samples/s)", "vs BSP"],
    );
    let bsp_at = ssp.report("s0", "b256+p0.3").average_throughput();
    for staleness in [0u64, 1, 2] {
        let at = ssp
            .report(&format!("s{staleness}"), "b256+p0.3")
            .average_throughput();
        t2.row(vec![
            staleness.to_string(),
            f2(at),
            format!("{}%", f2((at / bsp_at - 1.0) * 100.0)),
        ]);
        out.ssp.push((staleness, at, bsp_at));
    }
    print!("{}", t2.render());

    // 3. DP sync algorithm: ring vs sharded parameter servers.
    let mut ps_spec = SweepSpec::new("ablation_ps")
        .runtime("ring", |_| Box::new(DpRuntime::default()))
        .scenario("b256", scenario(zoo::vgg19(), 256));
    for servers in [1usize, 2, 4, 8] {
        ps_spec = ps_spec.runtime(format!("ps{servers}"), move |_| {
            Box::new(DpRuntime::parameter_server(servers))
        });
    }
    let ps = ps_spec.run(jobs);
    if let Err(e) = ps.write_artifacts() {
        eprintln!("warning: cannot write ps artifacts: {e}");
    }
    let mut t3 = Table::new(
        "Ablation — DP gradient synchronisation (VGG19, batch 256)",
        &["sync", "AT (samples/s)"],
    );
    t3.row(vec![
        "ring all-reduce".into(),
        f2(ps.report("ring", "b256").average_throughput()),
    ]);
    for servers in [1usize, 2, 4, 8] {
        let at = ps
            .report(&format!("ps{servers}"), "b256")
            .average_throughput();
        t3.row(vec![format!("PS × {servers}"), f2(at)]);
        out.ps.push((servers, at));
    }
    print!("{}", t3.render());
    println!(
        "Pipelining is most of Fela's work-conservation edge at small batches;\n\
         a staleness bound buys extra straggler tolerance at the cost of BSP\n\
         semantics (§VI); a single PS shard shows the centralized bottleneck of\n\
         §II-D, which sharding progressively dissolves."
    );
    save_json("ablation_design", &out);
}
