//! Figure 9 — AT and PID in the round-robin straggler scenario: worker `k mod N`
//! is slowed by `d` seconds in iteration `k`. VGG19 sweeps d ∈ {2,4,6,8,10} s,
//! GoogLeNet d ∈ {1..5} s (§V-C2).

use fela_cluster::StragglerModel;
use fela_model::zoo;
use fela_sim::SimDuration;

use crate::{model_slug, print_straggler_tables, save_json, straggler_experiment};

/// Batch size for the straggler experiments (mid-sweep; the paper fixes one).
const BATCH: u64 = 256;

/// Runs the Figure 9 sweeps on `jobs` worker threads.
pub fn run(jobs: usize) {
    let mut all = Vec::new();
    for (model, delays) in [
        (zoo::vgg19(), vec![2u64, 4, 6, 8, 10]),
        (zoo::googlenet(), vec![1, 2, 3, 4, 5]),
    ] {
        let settings: Vec<(String, StragglerModel)> = delays
            .iter()
            .map(|&d| {
                (
                    format!("d={d}s"),
                    StragglerModel::RoundRobin {
                        delay: SimDuration::from_secs(d),
                    },
                )
            })
            .collect();
        let rows = straggler_experiment(
            &format!("fig9_round_robin_{}", model_slug(&model.name)),
            &model,
            BATCH,
            &settings,
            jobs,
        );
        print_straggler_tables(
            &format!("Figure 9 — round-robin stragglers ({})", model.name),
            &rows,
        );
        all.extend(rows);
    }
    println!(
        "Paper shape checks: Fela's PID stays well below DP's and HP's (token\n\
         stealing absorbs the sleep); MP's PID can undercut Fela's because the\n\
         sleep overlaps its pipeline bubbles — but MP's AT remains the lowest."
    );
    save_json("fig9_round_robin", &all);
}
