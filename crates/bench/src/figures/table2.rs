//! Table II — qualitative comparison of representative DML solutions.
//!
//! The rows are the paper's; the Fela row's five properties are not just
//! restated but *checked* against this repository's implemented behaviour with
//! fast probe runs (flexible parallelism → tuned weight vectors differ across
//! batch sizes; straggler mitigation → PID well below the injected delay;
//! communication efficiency → Fela moves less data than DP; work conservation →
//! utilisation above the pipeline baselines'; reproducibility → the fela-engine
//! guarantees, summarised here). The probes run as one harness sweep.

use fela_cluster::{Scenario, StragglerModel};
use fela_core::{FelaConfig, FelaRuntime};
use fela_harness::SweepSpec;
use fela_metrics::Table;
use fela_model::zoo;
use fela_sim::SimDuration;
use serde::Serialize;

use crate::save_json;

#[derive(Serialize)]
struct SolutionRow {
    solution: &'static str,
    parallel_mode: &'static str,
    flexible_parallelism: bool,
    straggler_mitigation: bool,
    communication_efficiency: bool,
    work_conservation: bool,
    algorithm_reproducibility: bool,
}

const ROWS: &[SolutionRow] = &[
    SolutionRow {
        solution: "LazyTable",
        parallel_mode: "Model-Parallel",
        flexible_parallelism: false,
        straggler_mitigation: true,
        communication_efficiency: true,
        work_conservation: true,
        algorithm_reproducibility: false,
    },
    SolutionRow {
        solution: "FlexRR",
        parallel_mode: "Data-Parallel",
        flexible_parallelism: false,
        straggler_mitigation: true,
        communication_efficiency: false,
        work_conservation: true,
        algorithm_reproducibility: false,
    },
    SolutionRow {
        solution: "FlexPS",
        parallel_mode: "Data-Parallel",
        flexible_parallelism: true,
        straggler_mitigation: false,
        communication_efficiency: false,
        work_conservation: true,
        algorithm_reproducibility: true,
    },
    SolutionRow {
        solution: "PipeDream",
        parallel_mode: "Model-Parallel",
        flexible_parallelism: false,
        straggler_mitigation: false,
        communication_efficiency: true,
        work_conservation: false,
        algorithm_reproducibility: false,
    },
    SolutionRow {
        solution: "ElasticPipe",
        parallel_mode: "Model-Parallel",
        flexible_parallelism: false,
        straggler_mitigation: true,
        communication_efficiency: true,
        work_conservation: false,
        algorithm_reproducibility: true,
    },
    SolutionRow {
        solution: "Stanza",
        parallel_mode: "Hybrid-Parallel",
        flexible_parallelism: false,
        straggler_mitigation: false,
        communication_efficiency: true,
        work_conservation: false,
        algorithm_reproducibility: true,
    },
    SolutionRow {
        solution: "Fela",
        parallel_mode: "Hybrid-Parallel",
        flexible_parallelism: true,
        straggler_mitigation: true,
        communication_efficiency: true,
        work_conservation: true,
        algorithm_reproducibility: true,
    },
];

fn check(v: bool) -> &'static str {
    if v {
        "yes"
    } else {
        "no"
    }
}

/// Prints Table II and verifies the Fela row with probe runs (`jobs` threads).
pub fn run(jobs: usize) {
    let mut table = Table::new(
        "Table II — Comparison of Representative DML Solutions",
        &[
            "Solution",
            "Parallel Mode",
            "Flexible Parallelism",
            "Straggler Mitigation",
            "Comm. Efficiency",
            "Work Conservation",
            "Reproducibility",
        ],
    );
    for r in ROWS {
        table.row(vec![
            r.solution.to_owned(),
            r.parallel_mode.to_owned(),
            check(r.flexible_parallelism).into(),
            check(r.straggler_mitigation).into(),
            check(r.communication_efficiency).into(),
            check(r.work_conservation).into(),
            check(r.algorithm_reproducibility).into(),
        ]);
    }
    print!("{}", table.render());

    // Verify the Fela row empirically with quick probe runs, declared as one
    // harness sweep. CTD is part of Fela's communication story (§III-F), so
    // the Fela probes run the CTD-enabled configuration.
    println!("\nVerifying the Fela row against the implementation (10-iteration probes):");
    let probe = Scenario::paper(zoo::vgg19(), 256).with_iterations(10);
    let straggled = probe.clone().with_straggler(StragglerModel::RoundRobin {
        delay: SimDuration::from_secs(4),
    });
    let result = crate::with_baselines(SweepSpec::new("table2_comparison").runtime("fela", |_| {
        Box::new(FelaRuntime::new(
            FelaConfig::new(3).with_weights(vec![1, 2, 4]).with_ctd(2),
        ))
    }))
    .scenario("probe", probe)
    .scenario("probe+rr4s", straggled)
    .run(jobs);
    if let Err(e) = result.write_artifacts() {
        eprintln!("warning: cannot write table2 artifacts: {e}");
    }

    let base = result.report("fela", "probe");
    let slow = result.report("fela", "probe+rr4s");
    let dp = result.report("dp", "probe");
    let mp = result.report("mp", "probe");

    // Straggler mitigation: PID ≪ injected delay.
    let pid = (slow.total_time_secs - base.total_time_secs) / 10.0;
    println!(
        "  straggler mitigation: PID {pid:.2}s vs injected 4s → {}",
        pid < 2.0
    );

    // Communication efficiency: less wire traffic than DP.
    println!(
        "  communication efficiency: fela {:.1} GB vs dp {:.1} GB → {}",
        base.network_bytes as f64 / 1e9,
        dp.network_bytes as f64 / 1e9,
        base.network_bytes < dp.network_bytes
    );

    // Work conservation: utilisation above the pipeline baseline's.
    println!(
        "  work conservation: fela util {:.2} vs mp util {:.2} → {}",
        base.mean_utilization(),
        mp.mean_utilization(),
        base.mean_utilization() > mp.mean_utilization()
    );

    println!(
        "  flexible parallelism: per-sub-model token batches (see fig6_tuning) → true\n  \
         reproducibility: fela-engine proves bit-identical schedules (cargo test -p fela-engine) → true"
    );
    save_json("table2_comparison", &ROWS);
}
