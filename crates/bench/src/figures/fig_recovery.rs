//! Recovery figure — goodput under crash-restart churn.
//!
//! DP/MP/HP have no token recovery: a crashed worker stalls its BSP (or
//! pipeline) iteration until the victim rejoins, so every fault is paid in
//! full on the critical path. Fela's Token Server revokes the victim's leases
//! and re-grants them to survivors, so the sweep shows how much of the fault
//! cost elastic token recovery absorbs — while `fela check` separately proves
//! every recovered run still applies each micro-batch gradient exactly once.

use fela_cluster::{FaultKind, FaultModel};
use fela_metrics::{f2, f3, RunReport, Table};
use fela_model::zoo;
use fela_sim::SimDuration;
use serde::Serialize;

use crate::{
    fixed_fela_factory, improvement, model_slug, save_json, scenario, tuned_fela, with_baselines,
};

const BATCH: u64 = 256;
/// Downtime between a crash and the rejoin, for every fault setting.
const DOWN_SECS: u64 = 30;
/// All runtimes see the same fault realisation (stateless hash), mirroring a
/// testbed where the kill script is independent of the runtime under test.
const SEED: u64 = 20200417;

/// AT, PID and Fela's recovery counters under one fault setting.
#[derive(Clone, Debug, Serialize)]
pub struct RecoveryRow {
    /// Benchmark model.
    pub model: String,
    /// Total batch size.
    pub batch: u64,
    /// Fault setting label, e.g. `"crash@1"` or `"p=0.05"`.
    pub setting: String,
    /// Average throughput per runtime: `[fela, dp, mp, hp]`.
    pub at: [f64; 4],
    /// Per-iteration delay (Equation 4) per runtime: `[fela, dp, mp, hp]`.
    pub pid: [f64; 4],
    /// Crashes Fela's Token Server observed.
    pub crashes: u64,
    /// Rejoins after crash-restart downtime.
    pub restarts: u64,
    /// Leases revoked (crash victims and expired deadlines).
    pub revocations: u64,
    /// Completions for already-revoked leases that were discarded.
    pub stale_reports: u64,
}

/// Label of the fault-free reference scenario.
const BASE_LABEL: &str = "base";
const RUNTIMES: [&str; 4] = ["fela", "dp", "mp", "hp"];

fn fault_settings(iterations: u64) -> Vec<(String, FaultModel)> {
    let down = SimDuration::from_secs(DOWN_SECS);
    let mut settings = vec![(
        // One scripted crash-restart mid-run: the canonical recovery story.
        "crash@mid".to_owned(),
        FaultModel::Scripted {
            worker: 2,
            iteration: iterations / 2,
            kind: FaultKind::CrashRestart { down },
        },
    )];
    for p in [0.02f64, 0.05, 0.10] {
        settings.push((
            format!("p={p:.2}"),
            FaultModel::Chaos {
                p,
                down,
                seed: SEED,
            },
        ));
    }
    settings
}

fn recovery_experiment(
    experiment: &str,
    model: &fela_model::Model,
    jobs: usize,
) -> Vec<RecoveryRow> {
    let base_scenario = scenario(model.clone(), BATCH);
    let fela_config = tuned_fela(&base_scenario);
    let settings = fault_settings(base_scenario.iterations);
    let mut spec = with_baselines(
        fela_harness::SweepSpec::new(experiment)
            .runtime_factory("fela", fixed_fela_factory(fela_config)),
    )
    .scenario(BASE_LABEL, base_scenario.clone());
    for (label, fault) in &settings {
        spec = spec.scenario(label.clone(), base_scenario.clone().with_fault(*fault));
    }
    let result = spec.run(jobs);
    if let Err(e) = result.write_artifacts() {
        eprintln!("warning: cannot write {experiment} artifacts: {e}");
    }

    let baselines: Vec<&RunReport> = RUNTIMES
        .iter()
        .map(|rt| result.report(rt, BASE_LABEL))
        .collect();
    settings
        .iter()
        .map(|(label, _)| {
            let mut at = [0.0; 4];
            let mut pid = [0.0; 4];
            for (i, rt) in RUNTIMES.iter().enumerate() {
                let report = result.report(rt, label);
                at[i] = report.average_throughput();
                pid[i] = fela_metrics::per_iteration_delay(report, baselines[i]);
            }
            let fela = result.report("fela", label);
            RecoveryRow {
                model: model.name.clone(),
                batch: BATCH,
                setting: label.clone(),
                at,
                pid,
                crashes: fela.counter("crashes"),
                restarts: fela.counter("restarts"),
                revocations: fela.counter("revocations"),
                stale_reports: fela.counter("stale_reports"),
            }
        })
        .collect()
}

fn print_recovery_tables(title: &str, rows: &[RecoveryRow]) {
    let mut at_table = Table::new(
        format!("{title} — average throughput (samples/s)"),
        &["setting", "Fela", "DP", "MP", "HP"],
    );
    let mut pid_table = Table::new(
        format!("{title} — per-iteration delay (s)"),
        &["setting", "Fela", "DP", "MP", "HP"],
    );
    let mut rec_table = Table::new(
        format!("{title} — Fela token recovery"),
        &["setting", "crashes", "restarts", "revoked", "stale"],
    );
    for r in rows {
        at_table.row(vec![
            r.setting.clone(),
            f2(r.at[0]),
            f2(r.at[1]),
            f2(r.at[2]),
            f2(r.at[3]),
        ]);
        pid_table.row(vec![
            r.setting.clone(),
            f3(r.pid[0]),
            f3(r.pid[1]),
            f3(r.pid[2]),
            f3(r.pid[3]),
        ]);
        rec_table.row(vec![
            r.setting.clone(),
            r.crashes.to_string(),
            r.restarts.to_string(),
            r.revocations.to_string(),
            r.stale_reports.to_string(),
        ]);
    }
    print!("{}", at_table.render());
    print!("{}", pid_table.render());
    print!("{}", rec_table.render());
    let ratio_range = |idx: usize| {
        let ratios: Vec<f64> = rows.iter().map(|r| r.at[0] / r.at[idx]).collect();
        format!(
            "{} ~ {}",
            improvement(ratios.iter().cloned().fold(f64::INFINITY, f64::min), 1.0),
            improvement(
                ratios.iter().cloned().fold(f64::NEG_INFINITY, f64::max),
                1.0
            )
        )
    };
    println!(
        "Fela AT improvement under faults: vs DP {}, vs MP {}, vs HP {}\n",
        ratio_range(1),
        ratio_range(2),
        ratio_range(3)
    );
}

/// Runs the recovery sweeps on `jobs` worker threads.
pub fn run(jobs: usize) {
    let mut all = Vec::new();
    for model in [zoo::vgg19(), zoo::googlenet()] {
        let rows = recovery_experiment(
            &format!("fig_recovery_{}", model_slug(&model.name)),
            &model,
            jobs,
        );
        print_recovery_tables(
            &format!(
                "Recovery — crash-restart churn ({}, down={DOWN_SECS}s)",
                model.name
            ),
            &rows,
        );
        all.extend(rows);
    }
    println!(
        "Paper shape checks: every fault charges DP/MP/HP a full downtime on the\n\
         critical path, while Fela re-grants the victim's tokens to survivors;\n\
         Fela's PID stays well below DP/HP across the churn sweep."
    );
    save_json("fig_recovery", &all);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn settings_scale_with_iterations() {
        let s = fault_settings(100);
        assert_eq!(s.len(), 4);
        assert!(matches!(s[0].1, FaultModel::Scripted { iteration: 50, .. }));
        for (_, fault) in &s {
            assert!(fault.validate().is_ok());
        }
    }

    #[test]
    fn chaos_settings_share_the_seed() {
        for (_, fault) in fault_settings(10) {
            if let FaultModel::Chaos { seed, .. } = fault {
                assert_eq!(seed, SEED);
            }
        }
    }
}
