//! Table I — growing neural-network layer numbers, with each buildable row
//! verified against the constructed model's weighted depth.

use fela_metrics::Table;
use fela_model::zoo::{build_by_name, TABLE_I};
use serde::Serialize;

use crate::save_json;

#[derive(Serialize)]
struct Row {
    model: &'static str,
    year: u32,
    layer_number: u64,
    verified: bool,
    params: Option<u64>,
    forward_gflops: Option<f64>,
}

/// Prints and verifies Table I (analytic; no training runs).
pub fn run(_jobs: usize) {
    let mut table = Table::new(
        "Table I — Growing Neural Network Layer Numbers",
        &[
            "Model",
            "Year",
            "Layer Number",
            "Built & Verified",
            "Params",
            "Fwd GFLOP",
        ],
    );
    let mut rows = Vec::new();
    for info in TABLE_I {
        let built = build_by_name(info.name);
        let verified = built
            .as_ref()
            .map(|m| m.weighted_depth() == info.layer_number)
            .unwrap_or(false);
        let params = built.as_ref().map(|m| m.param_count());
        let gflops = built.as_ref().map(|m| m.forward_flops() as f64 / 1e9);
        table.row(vec![
            info.name.to_owned(),
            info.year.to_string(),
            info.layer_number.to_string(),
            if verified {
                "yes".into()
            } else if info.buildable {
                "MISMATCH".into()
            } else {
                "metadata only".into()
            },
            params.map(|p| p.to_string()).unwrap_or_else(|| "-".into()),
            gflops
                .map(|g| format!("{g:.2}"))
                .unwrap_or_else(|| "-".into()),
        ]);
        rows.push(Row {
            model: info.name,
            year: info.year,
            layer_number: info.layer_number,
            verified,
            params,
            forward_gflops: gflops,
        });
    }
    print!("{}", table.render());
    save_json("table1_model_zoo", &rows);
}
