//! Library implementations of every figure/table experiment.
//!
//! Each submodule exposes `run(jobs: usize)`: it declares its runs (as a
//! [`fela_harness::SweepSpec`] when the experiment executes training
//! runtimes), runs them on `jobs` worker threads, prints the paper-style
//! tables and writes artifacts under `results/`. The `src/bin/` binaries are
//! thin wrappers; `regen_all` chains every experiment in one command.

pub mod ablation;
pub mod fig1;
pub mod fig10;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod fig_elastic;
pub mod fig_recovery;
pub mod fig_server_recovery;
pub mod table1;
pub mod table2;

/// An experiment entry point: takes the worker-thread count.
pub type Experiment = fn(usize);

/// Every experiment in DESIGN.md §4 order: `(name, entry point)`.
pub const ALL: [(&str, Experiment); 13] = [
    ("table1_model_zoo", table1::run),
    ("table2_comparison", table2::run),
    ("fig1_layer_throughput", fig1::run),
    ("fig5_bin_partition", fig5::run),
    ("fig6_tuning", fig6::run),
    ("fig7_ablation", fig7::run),
    ("fig8_non_straggler", fig8::run),
    ("fig9_round_robin", fig9::run),
    ("fig10_probabilistic", fig10::run),
    ("fig_recovery", fig_recovery::run),
    ("fig_elastic", fig_elastic::run),
    ("fig_server_recovery", fig_server_recovery::run),
    ("ablation_design", ablation::run),
];
