//! Elasticity figure — makespan under resize churn.
//!
//! A non-elastic system changes scale by stopping the job, relaunching at
//! the new worker count and restoring a checkpoint — every resize costs a
//! full teardown on the critical path. Fela's token abstraction makes the
//! worker set a scheduling concern: the controller pauses at an iteration
//! boundary, re-bins, re-tunes incrementally (cross-epoch profile cache)
//! and syncs parameters to joiners only. The sweep raises the churn rate
//! and compares stitched makespans: Fela's advantage must *grow* with
//! churn, and the incremental boundary re-tune must beat re-running the
//! full two-phase search from scratch at every boundary.

use fela_baselines::{DpRuntime, HpRuntime};
use fela_cluster::{ResizeModel, Scenario};
use fela_elastic::{ElasticOptions, ElasticRuntime, IncrementalTuner, StopRestartRuntime};
use fela_metrics::{f2, Table};
use fela_model::zoo;
use serde::Serialize;

use crate::{improvement, save_json, scenario, tuning_iterations};

const BATCH: u64 = 256;
/// Every churn setting sees the same resize realisation (stateless hash),
/// mirroring a testbed where arrivals/departures are independent of the
/// runtime under test.
const SEED: u64 = 20200613;
/// Per-iteration resize probabilities swept (0 = the resize-free reference).
const RATES: [f64; 4] = [0.0, 0.1, 0.25, 0.5];

const RUNTIMES: [&str; 3] = ["fela-elastic", "dp-restart", "hp-restart"];

/// Makespan and boundary-cost accounting under one churn setting.
#[derive(Clone, Debug, Serialize)]
pub struct ElasticRow {
    /// Benchmark model.
    pub model: String,
    /// Total batch size.
    pub batch: u64,
    /// Churn setting label, e.g. `"churn=0.25"`.
    pub setting: String,
    /// Resize boundaries the setting realised.
    pub resizes: u64,
    /// Stitched makespan per runtime: `[fela-elastic, dp-restart, hp-restart]`.
    pub makespan: [f64; 3],
    /// Simulated seconds Fela spent in transitions (re-bin + re-tune + sync).
    pub fela_transition_secs: f64,
    /// Boundary re-tune cases profiled fresh across the run.
    pub retune_profiled: u64,
    /// Boundary re-tune cases answered from the cross-epoch cache.
    pub retune_reused: u64,
    /// Simulated search seconds the incremental re-tune actually paid.
    pub incremental_search_secs: f64,
    /// Simulated search seconds a from-scratch full search would pay at the
    /// same boundaries (the oracle every boundary is checked against).
    pub full_search_secs: f64,
}

fn churn_settings() -> Vec<(String, ResizeModel)> {
    RATES
        .iter()
        .map(|&rate| {
            (
                format!("churn={rate:.2}"),
                ResizeModel::Churn { rate, seed: SEED },
            )
        })
        .collect()
}

/// Plans the elastic run and compares the incremental boundary re-tune
/// against a from-scratch full search at every boundary (same scenarios,
/// same budget). Returns `(plan, incremental_secs, full_secs)`.
fn search_cost_comparison(
    runtime: &ElasticRuntime,
    sc: &Scenario,
) -> (fela_elastic::ElasticPlan, f64, f64) {
    let plan = runtime.plan(sc).expect("elastic plan");
    // `fold(0.0, ..)` rather than `sum()`: the empty-sum identity is -0.0,
    // which would print as "-0.00" in the resize-free row.
    let incremental: f64 = plan
        .epochs
        .iter()
        .skip(1)
        .map(|e| e.retune.search_secs)
        .fold(0.0, |a, b| a + b);
    let full: f64 = plan
        .epochs
        .iter()
        .skip(1)
        .map(|e| {
            // A cold tuner per boundary is exactly the full two-phase search
            // (same enumeration, nothing cached).
            let (_, stats) = IncrementalTuner::new(tuning_iterations()).tune(&e.scenario);
            stats.search_secs
        })
        .fold(0.0, |a, b| a + b);
    (plan, incremental, full)
}

fn elastic_experiment(experiment: &str, model: &fela_model::Model, jobs: usize) -> Vec<ElasticRow> {
    let base = scenario(model.clone(), BATCH);
    let options = ElasticOptions {
        profile_iterations: tuning_iterations(),
        ..ElasticOptions::default()
    };
    let settings = churn_settings();
    let mut spec = fela_harness::SweepSpec::new(experiment)
        .runtime("fela-elastic", move |_| {
            Box::new(ElasticRuntime::new(options))
        })
        .runtime("dp-restart", |_| {
            Box::new(StopRestartRuntime::new(DpRuntime::default(), "dp-restart"))
        })
        .runtime("hp-restart", |_| {
            Box::new(StopRestartRuntime::new(HpRuntime, "hp-restart"))
        });
    for (label, resize) in &settings {
        spec = spec.scenario(label.clone(), base.clone().with_resize(resize.clone()));
    }
    let result = spec.run(jobs);
    if let Err(e) = result.write_artifacts() {
        eprintln!("warning: cannot write {experiment} artifacts: {e}");
    }

    let runtime = ElasticRuntime::new(options);
    settings
        .iter()
        .map(|(label, resize)| {
            let sc = base.clone().with_resize(resize.clone());
            let (plan, incremental, full) = search_cost_comparison(&runtime, &sc);
            let retune = plan.retune_totals();
            let mut makespan = [0.0; 3];
            for (i, rt) in RUNTIMES.iter().enumerate() {
                makespan[i] = result.report(rt, label).total_time_secs;
            }
            ElasticRow {
                model: model.name.clone(),
                batch: BATCH,
                setting: label.clone(),
                resizes: plan.resizes() as u64,
                makespan,
                fela_transition_secs: plan.total_transition_secs,
                retune_profiled: retune.profiled as u64,
                retune_reused: retune.reused as u64,
                incremental_search_secs: incremental,
                full_search_secs: full,
            }
        })
        .collect()
}

fn print_elastic_tables(title: &str, rows: &[ElasticRow]) {
    let mut makespan_table = Table::new(
        format!("{title} — stitched makespan (s)"),
        &[
            "setting",
            "resizes",
            "Fela",
            "DP-restart",
            "HP-restart",
            "vs DP",
            "vs HP",
        ],
    );
    let mut search_table = Table::new(
        format!("{title} — boundary re-tune cost (simulated s)"),
        &[
            "setting",
            "profiled",
            "reused",
            "incremental",
            "full search",
        ],
    );
    for r in rows {
        makespan_table.row(vec![
            r.setting.clone(),
            r.resizes.to_string(),
            f2(r.makespan[0]),
            f2(r.makespan[1]),
            f2(r.makespan[2]),
            improvement(r.makespan[1], r.makespan[0]),
            improvement(r.makespan[2], r.makespan[0]),
        ]);
        search_table.row(vec![
            r.setting.clone(),
            r.retune_profiled.to_string(),
            r.retune_reused.to_string(),
            f2(r.incremental_search_secs),
            f2(r.full_search_secs),
        ]);
    }
    print!("{}", makespan_table.render());
    print!("{}", search_table.render());
}

/// Runs the churn sweep on `jobs` worker threads.
pub fn run(jobs: usize) {
    let model = zoo::googlenet();
    let rows = elastic_experiment("fig_elastic_sweep", &model, jobs);
    print_elastic_tables(
        &format!("Elasticity — resize churn ({})", model.name),
        &rows,
    );

    // Paper-shape checks: the advantage must grow with churn, and the
    // incremental re-tune must never pay more than the full search.
    let advantage = |r: &ElasticRow| r.makespan[1] / r.makespan[0];
    for pair in rows.windows(2) {
        if pair[1].resizes > pair[0].resizes {
            assert!(
                advantage(&pair[1]) > advantage(&pair[0]),
                "Fela's advantage must grow with churn ({} vs {})",
                pair[0].setting,
                pair[1].setting
            );
        }
    }
    for r in &rows {
        assert!(
            r.incremental_search_secs <= r.full_search_secs + 1e-9,
            "incremental re-tune must not exceed the full search ({})",
            r.setting
        );
    }
    let churniest = rows.last().expect("at least one setting");
    println!(
        "Elasticity shape: Fela's makespan advantage grows with churn (vs DP\n\
         {} at {} resizes), and the cross-epoch cache answered {} of {} boundary\n\
         cases without re-profiling.",
        improvement(churniest.makespan[1], churniest.makespan[0]),
        churniest.resizes,
        churniest.retune_reused,
        churniest.retune_profiled + churniest.retune_reused,
    );
    save_json("fig_elastic", &rows);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn settings_cover_a_resize_free_reference_and_rising_churn() {
        let s = churn_settings();
        assert_eq!(s.len(), RATES.len());
        assert_eq!(s[0].0, "churn=0.00");
        for (_, resize) in &s {
            assert!(resize.validate().is_ok());
        }
    }

    #[test]
    fn churn_settings_share_the_seed() {
        for (_, resize) in churn_settings() {
            let ResizeModel::Churn { seed, .. } = resize else {
                panic!("churn settings must be churn models");
            };
            assert_eq!(seed, SEED);
        }
    }
}
