//! Figure 5 — threshold batch sizes of VGG19's layers in network order, and the
//! resulting bin-partitioned sub-models (plus the GoogLeNet grouping of §IV-A).

use fela_metrics::Table;
use fela_model::{bin_partition, zoo, PartitionOptions, ThresholdProfile};
use serde::Serialize;

use crate::save_json;

#[derive(Serialize)]
struct PartitionOut {
    model: String,
    layer_thresholds: Vec<(String, u64)>,
    sub_models: Vec<SubOut>,
}

#[derive(Serialize)]
struct SubOut {
    index: usize,
    weighted_layers: (u64, u64),
    threshold_batch: u64,
    param_mb: f64,
    forward_gflops_per_sample: f64,
    comm_intensive: bool,
}

/// Prints the threshold/partition tables (analytic; no training runs).
pub fn run(_jobs: usize) {
    let profile = ThresholdProfile::k40c();
    let mut out = Vec::new();
    for model in [zoo::vgg19(), zoo::googlenet()] {
        let mut thr_table = Table::new(
            format!("Figure 5 — threshold batch sizes ({})", model.name),
            &["layer", "threshold batch"],
        );
        let mut layer_thresholds = Vec::new();
        for layer in model.layers() {
            if let Some(t) = profile.threshold_for(layer) {
                thr_table.row(vec![layer.name.clone(), t.to_string()]);
                layer_thresholds.push((layer.name.clone(), t));
            }
        }
        print!("{}", thr_table.render());

        let p = bin_partition(&model, &profile, PartitionOptions::default());
        let mut part_table = Table::new(
            format!("Bin partition (bin width 16, target 3) — {}", model.name),
            &[
                "sub-model",
                "weighted layers",
                "threshold batch",
                "params (MB)",
                "fwd GFLOP/sample",
                "comm-intensive",
            ],
        );
        let mut subs = Vec::new();
        for s in p.sub_models() {
            part_table.row(vec![
                format!("SM-{}", s.index + 1),
                format!("{}~{}", s.first_weighted, s.last_weighted),
                s.threshold_batch.to_string(),
                format!("{:.1}", s.param_bytes as f64 / 1e6),
                format!("{:.2}", s.forward_flops as f64 / 1e9),
                if s.comm_intensive { "yes" } else { "no" }.into(),
            ]);
            subs.push(SubOut {
                index: s.index,
                weighted_layers: (s.first_weighted, s.last_weighted),
                threshold_batch: s.threshold_batch,
                param_mb: s.param_bytes as f64 / 1e6,
                forward_gflops_per_sample: s.forward_flops as f64 / 1e9,
                comm_intensive: s.comm_intensive,
            });
        }
        print!("{}", part_table.render());
        out.push(PartitionOut {
            model: model.name.clone(),
            layer_thresholds,
            sub_models: subs,
        });
    }
    println!(
        "Paper check: VGG19 → layers 1~8 / 9~16 / 17~19 (FC); GoogLeNet → \
         {{stem+3*}} / {{4*}} / {{5*+FC}}."
    );
    save_json("fig5_bin_partition", &out);
}
