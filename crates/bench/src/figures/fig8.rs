//! Figure 8 — average-throughput comparison in the non-straggler scenario:
//! Fela (tuned) vs DP, MP and HP on VGG19 and GoogLeNet across batch sizes.
//!
//! The whole 4-runtime × 10-scenario grid is one harness sweep; Fela's §IV-B
//! tuning runs inside each of its jobs, so every batch size gets its own
//! winning configuration.

use fela_harness::SweepSpec;
use fela_metrics::{f2, Table};
use fela_model::zoo;
use serde::Serialize;

use crate::{improvement, save_json, scenario, tuned_fela_factory, with_baselines, BATCHES};

#[derive(Serialize)]
struct Row {
    model: String,
    batch: u64,
    fela: f64,
    dp: f64,
    mp: f64,
    hp: f64,
}

/// Runs the Figure 8 sweep on `jobs` worker threads.
pub fn run(jobs: usize) {
    let models = [zoo::vgg19(), zoo::googlenet()];
    let mut spec = with_baselines(
        SweepSpec::new("fig8_non_straggler").runtime_factory("fela", tuned_fela_factory()),
    );
    for model in &models {
        for &batch in &BATCHES {
            spec = spec.scenario(
                format!("{}/b{batch}", model.name),
                scenario(model.clone(), batch),
            );
        }
    }
    let result = spec.run(jobs);
    if let Err(e) = result.write_artifacts() {
        eprintln!("warning: cannot write fig8 artifacts: {e}");
    }

    let mut rows = Vec::new();
    for model in &models {
        let mut table = Table::new(
            format!(
                "Figure 8 — AT in the non-straggler scenario ({})",
                model.name
            ),
            &["batch", "Fela", "DP", "MP", "HP", "vs DP", "vs MP", "vs HP"],
        );
        for &batch in &BATCHES {
            let label = format!("{}/b{batch}", model.name);
            let at = |rt: &str| result.report(rt, &label).average_throughput();
            let (fela, dp, mp, hp) = (at("fela"), at("dp"), at("mp"), at("hp"));
            table.row(vec![
                batch.to_string(),
                f2(fela),
                f2(dp),
                f2(mp),
                f2(hp),
                improvement(fela, dp),
                improvement(fela, mp),
                improvement(fela, hp),
            ]);
            rows.push(Row {
                model: model.name.clone(),
                batch,
                fela,
                dp,
                mp,
                hp,
            });
        }
        print!("{}", table.render());
        // Per-model speedup ranges, the numbers §V-C1 quotes.
        let model_rows: Vec<&Row> = rows.iter().filter(|r| r.model == model.name).collect();
        let range = |f: &dyn Fn(&Row) -> f64| {
            let ratios: Vec<f64> = model_rows.iter().map(|r| f(r)).collect();
            format!(
                "{} ~ {}",
                improvement(ratios.iter().cloned().fold(f64::INFINITY, f64::min), 1.0),
                improvement(
                    ratios.iter().cloned().fold(f64::NEG_INFINITY, f64::max),
                    1.0
                )
            )
        };
        println!(
            "{}: Fela outperforms DP by {}, MP by {}, HP by {}\n",
            model.name,
            range(&|r| r.fela / r.dp),
            range(&|r| r.fela / r.mp),
            range(&|r| r.fela / r.hp),
        );
    }
    println!(
        "Paper shape checks: MP worst under BSP; HP beats DP at small batch and\n\
         falls behind as the batch grows (the FC-worker incast); Fela wins throughout."
    );
    save_json("fig8_non_straggler", &rows);
}
