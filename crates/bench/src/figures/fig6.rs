//! Figure 6 — the configuration-tuning landscape: (a) normalized per-iteration
//! time across the 13 search cases for each total batch size; (b) best-vs-worst
//! savings for Phase 1, Phase 2 and overall.
//!
//! The five batch sizes tune independently, so they fan out across the
//! harness executor; each tuner then profiles its own cases sequentially.

use fela_cluster::Scenario;
use fela_metrics::{f2, f3, Table};
use fela_model::zoo;
use fela_tuning::Tuner;
use serde::Serialize;

use crate::{save_json, tuning_iterations, BATCHES};

#[derive(Serialize)]
struct TuneOut {
    batch: u64,
    cases: Vec<CaseOut>,
    best_case: usize,
    best_weights: Vec<u64>,
    best_subset: Option<usize>,
    phase1_saving: f64,
    phase2_saving: f64,
    overall_saving: f64,
}

#[derive(Serialize)]
struct CaseOut {
    id: usize,
    phase: u8,
    weights: Vec<u64>,
    subset: Option<usize>,
    per_iteration_secs: Option<f64>,
    normalized: Option<f64>,
}

/// Runs the Figure 6 tuning landscape on `jobs` worker threads.
pub fn run(jobs: usize) {
    let tuner = Tuner {
        profile_iterations: tuning_iterations(),
    };
    // One tuning search per batch size, in parallel; outcomes land in
    // BATCHES order regardless of the job count.
    let outcomes = fela_harness::run_indexed(BATCHES.len(), jobs, |i| {
        let scenario = Scenario::paper(zoo::vgg19(), BATCHES[i]);
        tuner.tune_with_jobs(&scenario, 1)
    });

    let mut all = Vec::new();
    let mut fig6a = Table::new(
        "Figure 6(a) — normalized per-iteration time per tuning case (VGG19)",
        &[
            "case", "phase", "weights", "subset", "b=64", "b=128", "b=256", "b=512", "b=1024",
        ],
    );
    for (&batch, outcome) in BATCHES.iter().zip(&outcomes) {
        let norms = outcome.normalized_times();
        let mut norm_iter = norms.into_iter();
        let cases: Vec<CaseOut> = outcome
            .cases
            .iter()
            .map(|c| CaseOut {
                id: c.case.id,
                phase: c.case.phase,
                weights: c.case.weights.clone(),
                subset: c.case.subset,
                per_iteration_secs: c.per_iteration_secs,
                normalized: c
                    .per_iteration_secs
                    .is_some()
                    .then(|| norm_iter.next().expect("one norm per feasible case")),
            })
            .collect();
        let best = &outcome.cases[outcome.best].case;
        println!(
            "batch {batch:4}: best = case {} (w={:?}, subset={}), \
             Phase-1 saving {:.2}%, Phase-2 {:.2}%, overall {:.2}%",
            outcome.best,
            best.weights,
            best.subset
                .map(|s| s.to_string())
                .unwrap_or_else(|| "8 (no CTD)".into()),
            outcome.phase1_saving() * 100.0,
            outcome.phase2_saving() * 100.0,
            outcome.overall_saving() * 100.0,
        );
        all.push(TuneOut {
            batch,
            best_case: outcome.best,
            best_weights: best.weights.clone(),
            best_subset: best.subset,
            phase1_saving: outcome.phase1_saving(),
            phase2_saving: outcome.phase2_saving(),
            overall_saving: outcome.overall_saving(),
            cases,
        });
    }

    // Assemble the Figure 6(a) matrix: 13 cases × 5 batch columns.
    let n_cases = all[0].cases.len();
    for i in 0..n_cases {
        let c = &all[0].cases[i];
        let mut row = vec![
            i.to_string(),
            c.phase.to_string(),
            // Phase-2 rows reuse each batch's own Phase-1 winner, which differs
            // across batches — label them generically.
            if c.phase == 1 {
                format!("{:?}", c.weights)
            } else {
                "phase-1 best".into()
            },
            c.subset
                .map(|s| s.to_string())
                .unwrap_or_else(|| "-".into()),
        ];
        for b in &all {
            row.push(
                b.cases[i]
                    .normalized
                    .map(f3)
                    .unwrap_or_else(|| "n/a".into()),
            );
        }
        fig6a.row(row);
    }
    print!("{}", fig6a.render());

    let mut fig6b = Table::new(
        "Figure 6(b) — best-vs-worst per-iteration-time savings (VGG19)",
        &["batch", "Phase 1", "Phase 2", "Overall"],
    );
    for b in &all {
        fig6b.row(vec![
            b.batch.to_string(),
            format!("{}%", f2(b.phase1_saving * 100.0)),
            format!("{}%", f2(b.phase2_saving * 100.0)),
            format!("{}%", f2(b.overall_saving * 100.0)),
        ]);
    }
    print!("{}", fig6b.render());
    println!(
        "Paper ranges: Phase 1 8.51–51.69%, Phase 2 5.31–41.25%, overall 8.51–66.78%;\n\
         the best case differs per batch (e.g. {{1,1,4}} at 64 vs {{1,8,8}} at 1024)."
    );
    save_json("fig6_tuning", &all);
}
