//! Figure 7 / Table III — ablation of the scheduling policies: throughput with
//! and without ADS and HF (plus the tuning/CTD savings summarised from Figure 6),
//! across batch sizes and both benchmarks.
//!
//! The 3-variant × 10-scenario grid is one harness sweep; each variant's
//! factory picks a feasible representative weight vector for its scenario.

use fela_cluster::Scenario;
use fela_core::{FelaConfig, FelaRuntime, TokenPlan};
use fela_harness::SweepSpec;
use fela_metrics::{f2, Table};
use fela_model::zoo;
use serde::Serialize;

use crate::{save_json, scenario, BATCHES};

#[derive(Serialize)]
struct AblationRow {
    model: String,
    batch: u64,
    at_full: f64,
    at_no_ads: f64,
    at_no_hf: f64,
    ads_gain_pct: f64,
    hf_gain_pct: f64,
}

fn weights_for(sc: &Scenario) -> Vec<u64> {
    // A representative mid-search configuration (the ablation isolates ADS/HF, so
    // a fixed reasonable weight vector is applied to every variant, as §V-B
    // applies "the tuned configurations to the comparative cases").
    for w in [vec![1u64, 2, 4], vec![1, 1, 2], vec![1, 1, 1]] {
        let cfg = FelaConfig::new(3).with_weights(w.clone());
        let runtime = FelaRuntime::new(cfg.clone());
        if TokenPlan::build(
            &runtime.partition_for(sc),
            &cfg,
            sc.total_batch,
            sc.cluster.nodes,
        )
        .is_ok()
        {
            return w;
        }
    }
    vec![1, 1, 1]
}

/// Runs the Figure 7 ablation sweep on `jobs` worker threads.
pub fn run(jobs: usize) {
    let models = [zoo::vgg19(), zoo::googlenet()];
    let mut spec = SweepSpec::new("fig7_ablation")
        .runtime("full", |sc| {
            Box::new(FelaRuntime::new(
                FelaConfig::new(3).with_weights(weights_for(sc)),
            ))
        })
        .runtime("no_ads", |sc| {
            Box::new(FelaRuntime::new(
                FelaConfig::new(3)
                    .with_weights(weights_for(sc))
                    .with_ads(false),
            ))
        })
        .runtime("no_hf", |sc| {
            Box::new(FelaRuntime::new(
                FelaConfig::new(3)
                    .with_weights(weights_for(sc))
                    .with_hf(false),
            ))
        });
    for model in &models {
        for &batch in &BATCHES {
            spec = spec.scenario(
                format!("{}/b{batch}", model.name),
                scenario(model.clone(), batch),
            );
        }
    }
    let result = spec.run(jobs);
    if let Err(e) = result.write_artifacts() {
        eprintln!("warning: cannot write fig7 artifacts: {e}");
    }

    let mut rows = Vec::new();
    for model in &models {
        let mut table = Table::new(
            format!("Figure 7 — ablation of ADS and HF ({})", model.name),
            &[
                "batch",
                "AT full (samples/s)",
                "AT no-ADS",
                "AT no-HF",
                "ADS gain",
                "HF gain",
            ],
        );
        for &batch in &BATCHES {
            let label = format!("{}/b{batch}", model.name);
            let at = |rt: &str| result.report(rt, &label).average_throughput();
            let (full, no_ads, no_hf) = (at("full"), at("no_ads"), at("no_hf"));
            let ads_gain = (full / no_ads - 1.0) * 100.0;
            let hf_gain = (full / no_hf - 1.0) * 100.0;
            table.row(vec![
                batch.to_string(),
                f2(full),
                f2(no_ads),
                f2(no_hf),
                format!("{}%", f2(ads_gain)),
                format!("{}%", f2(hf_gain)),
            ]);
            rows.push(AblationRow {
                model: model.name.clone(),
                batch,
                at_full: full,
                at_no_ads: no_ads,
                at_no_hf: no_hf,
                ads_gain_pct: ads_gain,
                hf_gain_pct: hf_gain,
            });
        }
        print!("{}", table.render());
    }

    // Table III summary.
    let ads: Vec<f64> = rows.iter().map(|r| r.ads_gain_pct).collect();
    let hf: Vec<f64> = rows.iter().map(|r| r.hf_gain_pct).collect();
    let range = |xs: &[f64]| {
        format!(
            "{}% ~ {}%",
            f2(xs.iter().cloned().fold(f64::INFINITY, f64::min)),
            f2(xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max))
        )
    };
    let mut t3 = Table::new(
        "Table III — Summary of Ablation Study (measured here)",
        &[
            "Strategy/Policy",
            "Performance Improvement",
            "Paper's range",
        ],
    );
    t3.row(vec![
        "Parallelism Degree Tuning".into(),
        "see fig6_tuning Phase-1 column".into(),
        "8.51% ~ 51.69%".into(),
    ]);
    t3.row(vec![
        "ADS Policy".into(),
        range(&ads),
        "1.64% ~ 8.21%".into(),
    ]);
    t3.row(vec![
        "HF Policy".into(),
        range(&hf),
        "44.80% ~ 96.30%".into(),
    ]);
    t3.row(vec![
        "CTD Policy".into(),
        "see fig6_tuning Phase-2 column".into(),
        "5.31% ~ 41.25%".into(),
    ]);
    print!("{}", t3.render());
    save_json("fig7_ablation", &rows);
}
