//! Figure 10 — AT and PID in the probability-based straggler scenario: each
//! worker independently becomes a straggler with probability `p` every iteration,
//! sleeping d = 6 s (VGG19) or 3 s (GoogLeNet); p ∈ {0.1..0.5} (§V-C2).

use fela_cluster::StragglerModel;
use fela_model::zoo;
use fela_sim::SimDuration;

use crate::{model_slug, print_straggler_tables, save_json, straggler_experiment};

const BATCH: u64 = 256;
/// All runtimes see the same straggler realisation (stateless hash), as on the
/// paper's testbed where the injection script is independent of the runtime.
const SEED: u64 = 20200417;

/// Runs the Figure 10 sweeps on `jobs` worker threads.
pub fn run(jobs: usize) {
    let mut all = Vec::new();
    for (model, d) in [(zoo::vgg19(), 6u64), (zoo::googlenet(), 3u64)] {
        let settings: Vec<(String, StragglerModel)> = [0.1f64, 0.2, 0.3, 0.4, 0.5]
            .iter()
            .map(|&p| {
                (
                    format!("p={p:.1}"),
                    StragglerModel::Probabilistic {
                        p,
                        delay: SimDuration::from_secs(d),
                        seed: SEED,
                    },
                )
            })
            .collect();
        let rows = straggler_experiment(
            &format!("fig10_probabilistic_{}", model_slug(&model.name)),
            &model,
            BATCH,
            &settings,
            jobs,
        );
        print_straggler_tables(
            &format!(
                "Figure 10 — probability-based stragglers ({}, d={d}s)",
                model.name
            ),
            &rows,
        );
        all.extend(rows);
    }
    println!(
        "Paper shape checks: AT degrades with p for every runtime; Fela keeps the\n\
         highest AT and much lower PID than DP/HP across the sweep."
    );
    save_json("fig10_probabilistic", &all);
}
