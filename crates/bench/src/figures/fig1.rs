//! Figure 1 — training throughput of three layer classes vs batch size:
//! (a) CONV(64,64,224,224), (b) CONV(512,512,14,14), (c) FC(4096,4096).

use fela_gpu::ComputeModel;
use fela_metrics::{f2, Table};
use fela_model::{Layer, LayerKind, SpatialShape};
use serde::Serialize;

use crate::save_json;

#[derive(Serialize)]
struct Panel {
    layer: String,
    threshold_batch: u64,
    series: Vec<(u64, f64)>,
}

/// Prints the three panels and saves the series (analytic; no training runs).
pub fn run(_jobs: usize) {
    let cm = ComputeModel::k40c();
    let panels = [
        (
            "CONV (64,64,224,224)",
            Layer::new(
                "conv_front",
                LayerKind::Conv2d {
                    input: SpatialShape::new(64, 224, 224),
                    out_channels: 64,
                    kernel: 3,
                    stride: 1,
                    padding: 1,
                },
            ),
            vec![1u64, 2, 4, 8, 16, 32, 64, 128],
        ),
        (
            "CONV (512,512,14,14)",
            Layer::new(
                "conv_back",
                LayerKind::Conv2d {
                    input: SpatialShape::new(512, 14, 14),
                    out_channels: 512,
                    kernel: 3,
                    stride: 1,
                    padding: 1,
                },
            ),
            vec![4u64, 8, 16, 32, 64, 128, 256, 512],
        ),
        (
            "FC (4096,4096)",
            Layer::new(
                "fc",
                LayerKind::Linear {
                    in_features: 4096,
                    out_features: 4096,
                },
            ),
            vec![64u64, 128, 256, 512, 1024, 2048, 4096, 8192],
        ),
    ];

    let mut out = Vec::new();
    for (name, layer, batches) in panels {
        let threshold = cm.profile.threshold_for(&layer).expect("weighted layer");
        let mut table = Table::new(
            format!("Figure 1 — {name} (threshold batch {threshold})"),
            &["batch", "throughput (samples/s)", "fraction of peak"],
        );
        let peak = cm.layer_max_throughput(&layer);
        let mut series = Vec::new();
        for &b in &batches {
            let t = cm.layer_time(&layer, b);
            let thr = b as f64 / t;
            series.push((b, thr));
            table.row(vec![b.to_string(), f2(thr), f2(thr / peak)]);
        }
        print!("{}", table.render());
        out.push(Panel {
            layer: name.to_owned(),
            threshold_batch: threshold,
            series,
        });
    }
    println!(
        "Shape check: each panel rises steeply, then plateaus near its threshold batch\n\
         (16 / 64 / 2048) — the §II-B motivation for flexible parallelism."
    );
    save_json("fig1_layer_throughput", &out);
}
