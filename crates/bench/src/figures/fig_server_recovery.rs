//! Server-recovery figure — durable WAL recovery versus restart-from-scratch.
//!
//! The Token Server is Fela's single point of failure: without a durable
//! control plane, losing it means losing every completed iteration and paying
//! a full retrain. With the write-ahead log, the restarted server replays the
//! latest checkpoint plus the log suffix and resumes mid-iteration — the run
//! pays only the downtime plus a small recovery cost. This sweep crashes the
//! server at 25/50/75% of the run under two downtimes and compares the
//! durable makespan against the modeled restart-from-scratch makespan
//! `T_scratch = T_crash + downtime + T_full` (the work done before the crash
//! is thrown away, the server sits out the downtime, then retrains from
//! iteration 0).

use fela_cluster::{FaultModel, TrainingRuntime as _};
use fela_core::FelaRuntime;
use fela_metrics::{f2, Table};
use fela_model::zoo;
use fela_sim::SimDuration;
use serde::Serialize;

use crate::{model_slug, save_json, scenario, tuned_fela};

const BATCH: u64 = 256;
/// Crash points as fractions of the run: numerator/denominator pairs.
const CRASH_POINTS: [(u64, u64); 3] = [(1, 4), (1, 2), (3, 4)];
/// Server downtimes swept (seconds between the crash and the restart).
const DOWNTIMES_SECS: [u64; 2] = [10, 60];

/// One crash setting: durable recovery vs the restart-from-scratch model.
#[derive(Clone, Debug, Serialize)]
pub struct ServerRecoveryRow {
    /// Benchmark model.
    pub model: String,
    /// Total batch size.
    pub batch: u64,
    /// Setting label, e.g. `"crash@50%, down=10s"`.
    pub setting: String,
    /// Iteration at which the Token Server is killed.
    pub crash_iteration: u64,
    /// Downtime before the server restarts.
    pub down_secs: u64,
    /// Uninterrupted makespan (seconds).
    pub t_full: f64,
    /// Makespan of the crashed run recovering from the WAL (seconds).
    pub t_durable: f64,
    /// Modeled restart-from-scratch makespan: `T_crash + down + T_full`.
    pub t_scratch: f64,
    /// `t_scratch / t_durable` — how much the WAL recovery saves.
    pub advantage: f64,
    /// Server crashes the run observed (always 1 here).
    pub server_crashes: u64,
    /// Server restarts after WAL recovery (always 1 here).
    pub server_restarts: u64,
}

fn crash_settings(iterations: u64) -> Vec<(u64, u64)> {
    let mut settings = Vec::new();
    for (num, den) in CRASH_POINTS {
        let crash_iteration = (iterations * num / den).max(1);
        for down_secs in DOWNTIMES_SECS {
            settings.push((crash_iteration, down_secs));
        }
    }
    settings
}

fn server_recovery_experiment(model: &fela_model::Model) -> Vec<ServerRecoveryRow> {
    let base = scenario(model.clone(), BATCH);
    let config = tuned_fela(&base);
    let baseline = FelaRuntime::new(config.clone()).run(&base);
    let t_full = baseline.total_time_secs;
    crash_settings(base.iterations)
        .into_iter()
        .map(|(crash_iteration, down_secs)| {
            let sc = base.clone().with_fault(FaultModel::ServerCrashRestart {
                iteration: crash_iteration,
                down: SimDuration::from_secs(down_secs),
            });
            let report = FelaRuntime::new(config.clone()).run(&sc);
            let t_durable = report.total_time_secs;
            // Restart-from-scratch loses the pre-crash work: it pays the time
            // up to the crash, the downtime, then the full run again.
            let t_crash = t_full * crash_iteration as f64 / base.iterations as f64;
            let t_scratch = t_crash + down_secs as f64 + t_full;
            ServerRecoveryRow {
                model: model.name.clone(),
                batch: BATCH,
                setting: format!(
                    "crash@{}%, down={down_secs}s",
                    100 * crash_iteration / base.iterations
                ),
                crash_iteration,
                down_secs,
                t_full,
                t_durable,
                t_scratch,
                advantage: t_scratch / t_durable,
                server_crashes: report.counter("server_crashes"),
                server_restarts: report.counter("server_restarts"),
            }
        })
        .collect()
}

fn print_server_recovery_table(title: &str, rows: &[ServerRecoveryRow]) {
    let mut table = Table::new(
        format!("{title} — makespan (s)"),
        &[
            "setting",
            "uninterrupted",
            "durable recovery",
            "restart from scratch",
            "advantage",
        ],
    );
    for r in rows {
        table.row(vec![
            r.setting.clone(),
            f2(r.t_full),
            f2(r.t_durable),
            f2(r.t_scratch),
            format!("{:.2}×", r.advantage),
        ]);
    }
    print!("{}", table.render());
}

/// Runs the server-recovery sweeps (`jobs` is unused — each run is a single
/// short simulation, so the sweep runs inline).
pub fn run(_jobs: usize) {
    let mut all = Vec::new();
    for model in [zoo::vgg19(), zoo::googlenet()] {
        let rows = server_recovery_experiment(&model);
        print_server_recovery_table(
            &format!(
                "Server recovery — {} (fig_server_recovery_{})",
                model.name,
                model_slug(&model.name)
            ),
            &rows,
        );
        all.extend(rows);
    }
    for r in &all {
        assert_eq!(
            r.server_crashes, 1,
            "{}: exactly one injected crash",
            r.setting
        );
        assert_eq!(
            r.server_restarts, 1,
            "{}: the server must recover",
            r.setting
        );
        assert!(
            r.advantage > 1.0,
            "{}: durable recovery must beat restart-from-scratch ({:.2} vs {:.2})",
            r.setting,
            r.t_durable,
            r.t_scratch
        );
    }
    println!(
        "Paper shape checks: every crashed run recovers from the WAL and finishes\n\
         faster than the modeled restart-from-scratch; the advantage grows with\n\
         the crash point (later crashes throw away more completed work)."
    );
    save_json("fig_server_recovery", &all);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn settings_cover_the_crash_grid() {
        let s = crash_settings(100);
        assert_eq!(s.len(), 6);
        assert_eq!(s[0], (25, 10));
        assert_eq!(s[5], (75, 60));
        for (it, down) in s {
            let fault = FaultModel::ServerCrashRestart {
                iteration: it,
                down: SimDuration::from_secs(down),
            };
            assert!(fault.validate().is_ok());
        }
    }

    #[test]
    fn a_tiny_run_never_crashes_at_iteration_zero() {
        for (it, _) in crash_settings(2) {
            assert!(it >= 1);
        }
    }
}
