//! Hot-path benchmarks for the incremental engines introduced alongside the
//! full-recompute oracles: per-event fair-share updates (full `max_min_rates`
//! vs `IncrementalMaxMin`) at 8–64 nodes, and the Token Server's indexed
//! distribution path.
//!
//! The fair-share churn uses rack-local traffic (groups of 8 nodes, 4 flows
//! per node), so the link-sharing graph splits into one connected component
//! per rack. That is the regime the incremental engine targets: a flow
//! start/finish re-runs water-filling only over its own rack's component,
//! while the full oracle re-walks every link and flow. At 8 nodes (a single
//! rack = a single component) the engine has no locality to exploit and pays
//! two component recomputes per churn event (one for the finish, one for the
//! start) versus the oracle's one full pass — the crossover the numbers show.
//!
//! Run with `FELA_BENCH_DIR=<dir>` to emit `BENCH_fairshare_scaling.json` and
//! `BENCH_distribution.json`; `FELA_BENCH_QUICK=1` shortens the measurement
//! for CI smoke runs.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use fela_core::{FelaConfig, LevelMeta, TokenPlan, TokenServer};
use fela_model::{bin_partition, zoo, PartitionOptions, ThresholdProfile};
use fela_net::fairshare::{max_min_rates, FlowLinks, IncrementalMaxMin};
use fela_sim::SimTime;

/// Rack-local flow pattern: `nodes` must be a multiple of 8; each rack of 8
/// nodes carries 32 flows (4 per node) that never leave the rack.
fn rack_local_flows(nodes: usize) -> Vec<FlowLinks> {
    assert!(nodes % 8 == 0);
    let racks = nodes / 8;
    let mut flows = Vec::with_capacity(racks * 32);
    for rack in 0..racks {
        let base = rack * 8;
        for j in 0..32 {
            flows.push(FlowLinks {
                egress: base + j % 8,
                ingress: base + (j * 3 + 1) % 8,
            });
        }
    }
    flows
}

/// One churn schedule shared by both engines: event `e` finishes the flow at
/// slot `e * 7 % flows` and starts a replacement with the same endpoints.
const CHURN_EVENTS: usize = 64;

fn bench_fairshare_scaling(c: &mut Criterion) {
    for nodes in [8usize, 16, 32, 64] {
        let caps = vec![1.25e9f64; nodes];
        let flows = rack_local_flows(nodes);
        let n_flows = flows.len();

        // Baseline: the pre-existing behaviour — every flow start/finish
        // re-runs the full progressive-filling oracle over all links/flows.
        c.bench_function(&format!("net/fairshare_event_full_{nodes}nodes"), |b| {
            b.iter(|| {
                let mut acc = 0.0f64;
                for e in 0..CHURN_EVENTS {
                    // One churn event: a flow finishes and a replacement with
                    // the same endpoints starts, so the flow set is unchanged —
                    // but the full oracle recompute still runs from scratch.
                    let slot = e * 7 % n_flows;
                    let rates = max_min_rates(&caps, &caps, black_box(&flows));
                    acc += rates[slot];
                }
                black_box(acc)
            })
        });

        // Incremental engine: the same churn only recomputes the affected
        // rack's connected component.
        c.bench_function(
            &format!("net/fairshare_event_incremental_{nodes}nodes"),
            |b| {
                b.iter_batched(
                    || {
                        let mut eng = IncrementalMaxMin::new(caps.clone(), caps.clone());
                        for (i, &links) in flows.iter().enumerate() {
                            eng.insert(i as u64, links);
                        }
                        eng
                    },
                    |mut eng| {
                        let mut acc = 0.0f64;
                        let mut slot_keys: Vec<u64> = (0..n_flows as u64).collect();
                        for e in 0..CHURN_EVENTS {
                            let slot = e * 7 % n_flows;
                            let links = flows[slot];
                            let fresh = (n_flows + e) as u64;
                            eng.remove(slot_keys[slot]);
                            eng.insert(fresh, links);
                            slot_keys[slot] = fresh;
                            acc += eng.rate(fresh);
                        }
                        black_box(acc)
                    },
                    BatchSize::SmallInput,
                )
            },
        );
    }
}

fn make_server() -> TokenServer {
    let partition = bin_partition(
        &zoo::vgg19(),
        &ThresholdProfile::k40c(),
        PartitionOptions::default(),
    );
    let cfg = FelaConfig::new(3).with_weights(vec![1, 2, 4]);
    let plan = TokenPlan::build(&partition, &cfg, 1024, 8).unwrap();
    let meta: Vec<LevelMeta> = partition
        .sub_models()
        .iter()
        .map(|s| LevelMeta {
            param_bytes: s.param_bytes,
            output_bytes_per_sample: s.output_bytes_per_sample,
            input_bytes_per_sample: s.input_bytes_per_sample,
            comm_intensive: s.comm_intensive,
        })
        .collect();
    TokenServer::new(plan, cfg, meta, 8, 1_000_000)
}

fn bench_distribution(c: &mut Criterion) {
    // Grant + report for one full iteration's tokens: every `request` walks the
    // distribution pick path (per-worker score index under ADS+HF), every
    // `report` maintains it.
    c.bench_function("core/distribution_one_iteration", |b| {
        b.iter_batched(
            make_server,
            |mut ts| {
                let mut clock = 0u64;
                let mut done = 0u64;
                let total = ts.plan().tokens_per_iteration();
                let mut active: Vec<(usize, fela_core::Grant)> = Vec::new();
                for w in 0..8 {
                    clock += 100_000;
                    if let Some(g) = ts.request(w, SimTime::from_nanos(clock)).unwrap() {
                        active.push((w, g));
                    }
                }
                while done < total {
                    let (w, g) = active.pop().expect("tokens available");
                    for s in ts.report(w, g.token.id).unwrap() {
                        ts.sync_finished(s.level, s.iteration).unwrap();
                    }
                    done += 1;
                    clock += 100_000;
                    if let Some(g2) = ts.request(w, SimTime::from_nanos(clock)).unwrap() {
                        active.push((w, g2));
                    }
                    while let Some(pair) = ts.pop_ready_grant(SimTime::from_nanos(clock)).unwrap() {
                        active.push(pair);
                    }
                }
                black_box(ts.stats().grants)
            },
            BatchSize::SmallInput,
        )
    });
}

criterion_group!(fairshare_scaling, bench_fairshare_scaling);
criterion_group!(distribution, bench_distribution);
criterion_main!(fairshare_scaling, distribution);
