//! Durable recovery versus restart-from-scratch on the control plane.
//!
//! A crashed Token Server has two ways back: replay the write-ahead log
//! (latest checkpoint + op suffix, [`fela_core::recover`]) or rebuild a fresh
//! plane and re-drive every grant/report/sync of the lost iterations from
//! scratch. The WAL path fully decodes only the latest checkpoint and its op
//! suffix — everything earlier is checksum-scanned and skipped — while the
//! scratch path re-pays the whole control-plane scheduling history. These
//! benches measure both at several run lengths; the committed
//! `BENCH_server_recovery.json` is the acceptance artifact showing durable
//! recovery beats restart-from-scratch.
//!
//! Run with `FELA_BENCH_DIR=<dir>` to emit `BENCH_server_recovery.json`;
//! `FELA_BENCH_QUICK=1` shortens the measurement for CI smoke runs.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use fela_core::{recover, ControlPlane, FelaConfig, LevelMeta, MemWal, RecoveryConfig, TokenPlan};
use fela_model::{bin_partition, zoo, PartitionOptions, ThresholdProfile};
use fela_sim::SimTime;

const WORKERS: usize = 8;
const BATCH: u64 = 1024;
/// Run lengths (iterations of logged traffic) where both paths are measured.
const ITER_COUNTS: [u64; 3] = [4, 16, 64];
/// Completed iterations between checkpoints — the knob that bounds the WAL
/// replay suffix (the same discipline both runtimes use).
const CHECKPOINT_EVERY: u64 = 4;

fn plan_inputs() -> (TokenPlan, FelaConfig, Vec<LevelMeta>) {
    let partition = bin_partition(
        &zoo::vgg19(),
        &ThresholdProfile::k40c(),
        PartitionOptions::default(),
    );
    // Crash-survivable deployments grant tokens as leases (faults imply
    // recovery in both runtimes), so the bench plane does too.
    let cfg = FelaConfig::new(3)
        .with_weights(vec![1, 2, 4])
        .with_recovery(RecoveryConfig::default());
    let plan = TokenPlan::build(&partition, &cfg, BATCH, WORKERS).unwrap();
    let meta: Vec<LevelMeta> = partition
        .sub_models()
        .iter()
        .map(|s| LevelMeta {
            param_bytes: s.param_bytes,
            output_bytes_per_sample: s.output_bytes_per_sample,
            input_bytes_per_sample: s.input_bytes_per_sample,
            comm_intensive: s.comm_intensive,
        })
        .collect();
    (plan, cfg, meta)
}

/// Grants, reports and syncs every token until the plane's run completes —
/// the same traffic the simulator would generate, minus compute/network cost.
/// With `checkpoint_every > 0` the WAL gets a checkpoint whenever the
/// completed-iteration count crosses a multiple of it — the same cadence the
/// simulator and the live runtime use (the plane must have a WAL attached).
fn drive_to_completion(plane: &mut ControlPlane, checkpoint_every: u64) {
    let mut clock = 0u64;
    let mut last_checkpoint = 0u64;
    while !plane.run_complete() {
        let mut progressed = false;
        for w in 0..WORKERS {
            clock += 100_000;
            while let Some(g) = plane.request(w, SimTime::from_nanos(clock)).unwrap() {
                for s in plane.report(w, g.token.id).unwrap() {
                    plane.sync_finished(s.level, s.iteration).unwrap();
                }
                progressed = true;
            }
        }
        clock += 100_000;
        while let Some((w, g)) = plane.pop_ready_grant(SimTime::from_nanos(clock)).unwrap() {
            for s in plane.report(w, g.token.id).unwrap() {
                plane.sync_finished(s.level, s.iteration).unwrap();
            }
            progressed = true;
        }
        // `checked_div` keeps `checkpoint_every == 0` meaning "never" (both
        // sides None) without a separate guard.
        let done = plane.completed_iterations();
        if done.checked_div(checkpoint_every) > last_checkpoint.checked_div(checkpoint_every) {
            plane.checkpoint_wal(&[]).unwrap();
            last_checkpoint = done;
        }
        assert!(progressed, "control-plane drive stalled");
    }
}

/// A completed logged run of `iterations`, checkpointed every
/// [`CHECKPOINT_EVERY`] completed iterations; returns the WAL bytes.
fn logged_run(iterations: u64) -> Vec<u8> {
    let (plan, cfg, meta) = plan_inputs();
    let mem = MemWal::new();
    let mut plane = ControlPlane::new(plan, cfg, meta, WORKERS, iterations);
    plane.attach_wal(Box::new(mem.clone())).unwrap();
    drive_to_completion(&mut plane, CHECKPOINT_EVERY);
    mem.bytes()
}

fn bench_server_recovery(c: &mut Criterion) {
    let (plan, cfg, meta) = plan_inputs();
    for iters in ITER_COUNTS {
        let bytes = logged_run(iters);
        c.bench_function(&format!("recovery/durable_{iters}iters"), |b| {
            b.iter(|| {
                let rec = recover(black_box(&bytes), &plan, &cfg, &meta, WORKERS, iters).unwrap();
                assert!(rec.plane.run_complete());
                black_box(rec.plane.completed_iterations())
            })
        });
        c.bench_function(&format!("recovery/scratch_{iters}iters"), |b| {
            b.iter_batched(
                || ControlPlane::new(plan.clone(), cfg.clone(), meta.clone(), WORKERS, iters),
                |mut plane| {
                    drive_to_completion(&mut plane, 0);
                    black_box(plane.completed_iterations())
                },
                BatchSize::SmallInput,
            )
        });
    }
}

criterion_group!(server_recovery, bench_server_recovery);
criterion_main!(server_recovery);
