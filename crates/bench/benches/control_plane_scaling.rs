//! Control-plane scaling: the monolithic `TokenServer` event loop versus the
//! sharded `Coordinator` behind the same [`ControlPlane`] seam, at 64 to
//! 8192 simulated workers.
//!
//! Each measurement drives one full BSP iteration of grant/report/sync traffic
//! through the plane — every `request` walks the distribution pick path, every
//! `report` maintains the steal indices — so the number is the pure
//! control-plane cost per iteration with no compute or network model attached.
//! The batch grows with the worker count (`max(1024, W)`) so every worker has
//! level-0 tokens to pull; the schedules produced by both planes are
//! byte-identical (proved in `tests/tests/shard.rs`), making this a like-for-
//! like cost comparison.
//!
//! Run with `FELA_BENCH_DIR=<dir>` to emit `BENCH_control_plane_scaling.json`;
//! `FELA_BENCH_QUICK=1` shortens the measurement for CI smoke runs.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use fela_core::{ControlPlane, FelaConfig, Grant, LevelMeta, TokenPlan};
use fela_model::{bin_partition, zoo, PartitionOptions, ThresholdProfile};
use fela_sim::SimTime;

/// Worker counts where both planes are measured; the batch is scaled along so
/// level 0 always carries at least one token per worker. The single-loop
/// baseline stops at 1024: its per-grant steal scan is O(workers), so one
/// iteration already costs seconds there and minutes at 4096 — which is the
/// point of the refactor, but not something a bench run should sit through.
const PAIRED_WORKER_COUNTS: [usize; 3] = [64, 256, 1024];
/// Worker counts measured for the sharded plane only, past where the
/// baseline is practical.
const SHARDED_ONLY_WORKER_COUNTS: [usize; 2] = [4096, 8192];

fn make_plane(workers: usize, shards: usize) -> ControlPlane {
    let partition = bin_partition(
        &zoo::vgg19(),
        &ThresholdProfile::k40c(),
        PartitionOptions::default(),
    );
    let cfg = FelaConfig::new(3)
        .with_weights(vec![1, 2, 4])
        .with_shards(shards);
    let batch = workers.max(1024) as u64;
    let plan = TokenPlan::build(&partition, &cfg, batch, workers).unwrap();
    let meta: Vec<LevelMeta> = partition
        .sub_models()
        .iter()
        .map(|s| LevelMeta {
            param_bytes: s.param_bytes,
            output_bytes_per_sample: s.output_bytes_per_sample,
            input_bytes_per_sample: s.input_bytes_per_sample,
            comm_intensive: s.comm_intensive,
        })
        .collect();
    ControlPlane::new(plan, cfg, meta, workers, 1_000_000)
}

/// Grant + report every token of one iteration, exactly like the simulator's
/// control-plane turn: request on idle, report on completion, drain any
/// barrier-released grants.
fn drive_one_iteration(mut plane: ControlPlane, workers: usize) -> u64 {
    let mut clock = 0u64;
    let mut done = 0u64;
    let total = plane.plan().tokens_per_iteration();
    let mut active: Vec<(usize, Grant)> = Vec::new();
    for w in 0..workers {
        clock += 100_000;
        if let Some(g) = plane.request(w, SimTime::from_nanos(clock)).unwrap() {
            active.push((w, g));
        }
    }
    while done < total {
        let (w, g) = active.pop().expect("tokens available");
        for s in plane.report(w, g.token.id).unwrap() {
            plane.sync_finished(s.level, s.iteration).unwrap();
        }
        done += 1;
        clock += 100_000;
        if let Some(g2) = plane.request(w, SimTime::from_nanos(clock)).unwrap() {
            active.push((w, g2));
        }
        while let Some(pair) = plane.pop_ready_grant(SimTime::from_nanos(clock)).unwrap() {
            active.push(pair);
        }
    }
    plane.stats().grants
}

fn bench_control_plane_scaling(c: &mut Criterion) {
    for workers in PAIRED_WORKER_COUNTS {
        c.bench_function(&format!("control/plane_single_{workers}workers"), |b| {
            b.iter_batched(
                || make_plane(workers, 1),
                |plane| black_box(drive_one_iteration(plane, workers)),
                BatchSize::SmallInput,
            )
        });
        c.bench_function(&format!("control/plane_sharded3_{workers}workers"), |b| {
            b.iter_batched(
                || make_plane(workers, 3),
                |plane| black_box(drive_one_iteration(plane, workers)),
                BatchSize::SmallInput,
            )
        });
    }
    for workers in SHARDED_ONLY_WORKER_COUNTS {
        c.bench_function(&format!("control/plane_sharded3_{workers}workers"), |b| {
            b.iter_batched(
                || make_plane(workers, 3),
                |plane| black_box(drive_one_iteration(plane, workers)),
                BatchSize::SmallInput,
            )
        });
    }
}

criterion_group!(control_plane_scaling, bench_control_plane_scaling);
criterion_main!(control_plane_scaling);
