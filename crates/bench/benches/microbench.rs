//! Criterion micro-benchmarks for the components whose cost the paper argues is
//! "trivial": the simulator kernel, the network fair-share recomputation, the
//! Token Server's grant/report hot path, the analytic compute model and the
//! end-to-end tuner probe.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use fela_cluster::{Scenario, TrainingRuntime};
use fela_core::{FelaConfig, FelaRuntime, LevelMeta, TokenPlan, TokenServer};
use fela_gpu::ComputeModel;
use fela_model::{bin_partition, zoo, PartitionOptions, ThresholdProfile};
use fela_net::fairshare::{max_min_rates, FlowLinks};
use fela_sim::{Engine, EventQueue, Scheduler, SimDuration, SimTime, World};

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("sim/event_queue_push_pop_10k", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            for i in 0..10_000u64 {
                // Scatter times to exercise heap reordering.
                q.schedule_at(
                    SimTime::from_nanos(i.wrapping_mul(2654435761) % 1_000_000),
                    i,
                );
            }
            let mut sum = 0u64;
            while let Some((_, _, v)) = q.pop_next() {
                sum = sum.wrapping_add(v);
            }
            black_box(sum)
        })
    });
}

struct Chain(u32);
impl World for Chain {
    type Event = ();
    fn handle(&mut self, _now: SimTime, _ev: (), sched: &mut Scheduler<'_, ()>) {
        if self.0 > 0 {
            self.0 -= 1;
            sched.schedule_in(SimDuration::from_nanos(10), ());
        }
    }
}

fn bench_engine_steps(c: &mut Criterion) {
    c.bench_function("sim/engine_100k_events", |b| {
        b.iter(|| {
            let mut engine = Engine::new(Chain(100_000));
            engine.prime(());
            engine.run_to_completion();
            black_box(engine.steps())
        })
    });
}

fn bench_fairshare(c: &mut Criterion) {
    // The paper's 8-node incast-heavy pattern plus background flows.
    let caps = vec![1.25e9f64; 8];
    let flows: Vec<FlowLinks> = (0..64)
        .map(|i| FlowLinks {
            egress: i % 8,
            ingress: (i * 3 + 1) % 8,
        })
        .collect();
    c.bench_function("net/max_min_64_flows_8_nodes", |b| {
        b.iter(|| black_box(max_min_rates(&caps, &caps, &flows)))
    });
}

fn make_server() -> TokenServer {
    let partition = bin_partition(
        &zoo::vgg19(),
        &ThresholdProfile::k40c(),
        PartitionOptions::default(),
    );
    let cfg = FelaConfig::new(3).with_weights(vec![1, 2, 4]);
    let plan = TokenPlan::build(&partition, &cfg, 1024, 8).unwrap();
    let meta: Vec<LevelMeta> = partition
        .sub_models()
        .iter()
        .map(|s| LevelMeta {
            param_bytes: s.param_bytes,
            output_bytes_per_sample: s.output_bytes_per_sample,
            input_bytes_per_sample: s.input_bytes_per_sample,
            comm_intensive: s.comm_intensive,
        })
        .collect();
    TokenServer::new(plan, cfg, meta, 8, 1_000_000)
}

fn bench_token_server(c: &mut Criterion) {
    // Grant + report for one full iteration's tokens (the ADS locality-scan hot
    // path the TS runs on every request).
    c.bench_function("core/token_server_one_iteration", |b| {
        b.iter_batched(
            make_server,
            |mut ts| {
                let mut clock = 0u64;
                let mut done = 0u64;
                let total = ts.plan().tokens_per_iteration();
                let mut active: Vec<(usize, fela_core::Grant)> = Vec::new();
                for w in 0..8 {
                    clock += 100_000;
                    if let Some(g) = ts.request(w, SimTime::from_nanos(clock)).unwrap() {
                        active.push((w, g));
                    }
                }
                while done < total {
                    let (w, g) = active.pop().expect("tokens available");
                    for s in ts.report(w, g.token.id).unwrap() {
                        ts.sync_finished(s.level, s.iteration).unwrap();
                    }
                    done += 1;
                    clock += 100_000;
                    if let Some(g2) = ts.request(w, SimTime::from_nanos(clock)).unwrap() {
                        active.push((w, g2));
                    }
                    while let Some(pair) = ts.pop_ready_grant(SimTime::from_nanos(clock)).unwrap() {
                        active.push(pair);
                    }
                }
                black_box(ts.stats().grants)
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_compute_model(c: &mut Criterion) {
    let cm = ComputeModel::k40c();
    let vgg = zoo::vgg19();
    c.bench_function("gpu/vgg19_model_time", |b| {
        b.iter(|| black_box(cm.model_time(&vgg, black_box(256))))
    });
}

fn bench_partition(c: &mut Criterion) {
    let profile = ThresholdProfile::k40c();
    let resnet = zoo::resnet152();
    c.bench_function("model/bin_partition_resnet152", |b| {
        b.iter(|| {
            black_box(bin_partition(
                &resnet,
                &profile,
                PartitionOptions::default(),
            ))
        })
    });
}

fn bench_full_simulation(c: &mut Criterion) {
    // One 2-iteration Fela run of GoogLeNet — the unit of work the tuner repeats
    // 13 times, so its wall cost bounds the tuner's.
    let scenario = Scenario::paper(zoo::googlenet(), 256).with_iterations(2);
    let runtime = FelaRuntime::new(FelaConfig::new(3).with_weights(vec![1, 1, 2]));
    c.bench_function("e2e/fela_googlenet_2_iterations", |b| {
        b.iter(|| black_box(runtime.run(&scenario).total_time_secs))
    });
}

criterion_group!(
    benches,
    bench_event_queue,
    bench_engine_steps,
    bench_fairshare,
    bench_token_server,
    bench_compute_model,
    bench_partition,
    bench_full_simulation
);
criterion_main!(benches);
