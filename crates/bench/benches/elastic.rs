//! Incremental boundary re-tune versus full re-search over a churn sequence.
//!
//! At every resize boundary the elastic controller must produce a tuned
//! configuration for the new membership. Two ways to get it: re-run the full
//! two-phase search from scratch ([`fela_tuning::Tuner::tune_with_jobs`]),
//! or replay the same enumeration through [`IncrementalTuner`]'s cross-epoch
//! profile cache — bit-identical outcomes, but cache hits skip the profiling
//! simulation entirely. These benches walk the *same* epoch sequence (a
//! seeded churn plan) both ways; the committed `BENCH_elastic.json` is the
//! acceptance artifact showing the incremental path beats the full search.
//!
//! Run with `FELA_BENCH_DIR=<dir>` to emit `BENCH_elastic.json`;
//! `FELA_BENCH_QUICK=1` shortens the measurement for CI smoke runs.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use fela_cluster::{ResizeModel, Scenario};
use fela_elastic::{ElasticOptions, ElasticRuntime, IncrementalTuner};
use fela_model::zoo;

const BATCH: u64 = 256;
const ITERATIONS: u64 = 24;
const SEED: u64 = 20200613;
/// Per-iteration resize probabilities benchmarked (both realise several
/// boundaries over [`ITERATIONS`] iterations).
const RATES: [f64; 2] = [0.25, 0.5];
/// Per-case profiling budget (the paper's 5-iteration probes).
const PROFILE_ITERATIONS: u64 = 5;

/// The constant-membership epoch scenarios a churn plan walks through.
fn epoch_scenarios(rate: f64) -> Vec<Scenario> {
    let sc = Scenario::paper(zoo::googlenet(), BATCH)
        .with_iterations(ITERATIONS)
        .with_resize(ResizeModel::Churn { rate, seed: SEED });
    let options = ElasticOptions {
        profile_iterations: PROFILE_ITERATIONS,
        ..ElasticOptions::default()
    };
    let plan = ElasticRuntime::new(options)
        .plan(&sc)
        .expect("elastic plan");
    assert!(
        plan.epochs.len() > 2,
        "churn rate {rate} must realise several boundaries"
    );
    plan.epochs.into_iter().map(|e| e.scenario).collect()
}

fn bench_elastic(c: &mut Criterion) {
    for rate in RATES {
        let scenarios = epoch_scenarios(rate);
        let boundaries = scenarios.len() - 1;
        c.bench_function(
            &format!("elastic/incremental_rate{rate}_{boundaries}boundaries"),
            |b| {
                b.iter(|| {
                    // One cache across the whole sequence — what the elastic
                    // controller actually does at successive boundaries.
                    let mut tuner = IncrementalTuner::new(PROFILE_ITERATIONS);
                    let mut reused = 0usize;
                    for sc in &scenarios {
                        let (outcome, stats) = tuner.tune(black_box(sc));
                        black_box(&outcome.best_config);
                        reused += stats.reused;
                    }
                    black_box(reused)
                })
            },
        );
        c.bench_function(
            &format!("elastic/full_search_rate{rate}_{boundaries}boundaries"),
            |b| {
                b.iter(|| {
                    // A cold tuner per boundary is exactly the full two-phase
                    // search: same enumeration, nothing cached.
                    let mut profiled = 0usize;
                    for sc in &scenarios {
                        let (outcome, stats) =
                            IncrementalTuner::new(PROFILE_ITERATIONS).tune(black_box(sc));
                        black_box(&outcome.best_config);
                        profiled += stats.profiled;
                    }
                    black_box(profiled)
                })
            },
        );
    }
}

criterion_group!(elastic, bench_elastic);
criterion_main!(elastic);
