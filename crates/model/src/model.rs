//! Whole-model container and aggregate accounting.

use serde::{Deserialize, Serialize};

use crate::layer::{Layer, SpatialShape, BYTES_PER_ELEM};

/// A neural network as an ordered sequence of layers.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct Model {
    /// Model name, e.g. `"VGG19"`.
    pub name: String,
    /// Per-sample input shape fed to the first layer.
    pub input: SpatialShape,
    layers: Vec<Layer>,
}

impl Model {
    /// Builds a model from its layer sequence.
    ///
    /// # Panics
    /// Panics if `layers` is empty — every timing model divides by layer counts.
    pub fn new(name: impl Into<String>, input: SpatialShape, layers: Vec<Layer>) -> Self {
        assert!(!layers.is_empty(), "a model must have at least one layer");
        Model {
            name: name.into(),
            input,
            layers,
        }
    }

    /// The layer sequence.
    pub fn layers(&self) -> &[Layer] {
        &self.layers
    }

    /// Number of schedulable units (pooling included).
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// Always false (construction rejects empty models); present for API symmetry.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// Number of weighted layers, i.e. the "layer number" reported in Table I.
    pub fn weighted_depth(&self) -> u64 {
        self.layers.iter().map(|l| l.kind.weighted_depth()).sum()
    }

    /// Total trainable parameters.
    pub fn param_count(&self) -> u64 {
        self.layers.iter().map(|l| l.kind.param_count()).sum()
    }

    /// Total trainable parameter bytes (fp32).
    pub fn param_bytes(&self) -> u64 {
        self.param_count() * BYTES_PER_ELEM
    }

    /// Total forward FLOPs per sample.
    pub fn forward_flops(&self) -> u64 {
        self.layers.iter().map(|l| l.kind.forward_flops()).sum()
    }

    /// Per-sample input bytes (fp32) — the size of one training sample as shipped
    /// over the network by data-parallel workload migration.
    pub fn input_bytes(&self) -> u64 {
        self.input.elems() * BYTES_PER_ELEM
    }

    /// Indices of layers that carry parameters.
    pub fn weighted_layer_indices(&self) -> Vec<usize> {
        self.layers
            .iter()
            .enumerate()
            .filter(|(_, l)| l.kind.weighted_depth() > 0)
            .map(|(i, _)| i)
            .collect()
    }

    /// Index of the first fully connected layer, if any. Used by the HP (Stanza)
    /// baseline to split the model into a CONV part and an FC part.
    pub fn first_fc_index(&self) -> Option<usize> {
        self.layers.iter().position(|l| l.kind.is_fc())
    }

    /// Parameter bytes of the sub-sequence `range` of layers.
    pub fn param_bytes_in(&self, range: std::ops::Range<usize>) -> u64 {
        self.layers[range].iter().map(|l| l.param_bytes()).sum()
    }

    /// Per-sample output activation bytes of layer `idx` — the boundary transfer
    /// volume between a partition ending at `idx` and the next one.
    pub fn boundary_bytes(&self, idx: usize) -> u64 {
        self.layers[idx].activation_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::LayerKind;

    fn tiny() -> Model {
        Model::new(
            "tiny",
            SpatialShape::new(3, 8, 8),
            vec![
                Layer::new(
                    "conv1",
                    LayerKind::Conv2d {
                        input: SpatialShape::new(3, 8, 8),
                        out_channels: 4,
                        kernel: 3,
                        stride: 1,
                        padding: 1,
                    },
                ),
                Layer::new(
                    "pool1",
                    LayerKind::Pool2d {
                        input: SpatialShape::new(4, 8, 8),
                        kernel: 2,
                        stride: 2,
                    },
                ),
                Layer::new(
                    "fc1",
                    LayerKind::Linear {
                        in_features: 4 * 4 * 4,
                        out_features: 10,
                    },
                ),
            ],
        )
    }

    #[test]
    fn aggregates_sum_over_layers() {
        let m = tiny();
        assert_eq!(m.len(), 3);
        assert_eq!(m.weighted_depth(), 2);
        assert_eq!(m.param_count(), (3 * 4 * 9 + 4) + (64 * 10 + 10));
        assert_eq!(m.param_bytes(), m.param_count() * 4);
        assert!(m.forward_flops() > 0);
        assert_eq!(m.input_bytes(), 3 * 8 * 8 * 4);
    }

    #[test]
    fn weighted_indices_skip_pooling() {
        assert_eq!(tiny().weighted_layer_indices(), vec![0, 2]);
    }

    #[test]
    fn first_fc_found() {
        assert_eq!(tiny().first_fc_index(), Some(2));
    }

    #[test]
    fn range_and_boundary_accounting() {
        let m = tiny();
        assert_eq!(m.param_bytes_in(0..1), (3 * 4 * 9 + 4) * 4);
        // conv1 output: 4x8x8 fp32.
        assert_eq!(m.boundary_bytes(0), 4 * 8 * 8 * 4);
    }

    #[test]
    #[should_panic(expected = "at least one layer")]
    fn empty_model_rejected() {
        let _ = Model::new("empty", SpatialShape::new(1, 1, 1), vec![]);
    }
}
