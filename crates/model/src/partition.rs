//! Offline bin-partitioned model splitting (§IV-A, Figure 5).
//!
//! The model is cut into consecutive **sub-models**, each with approximately uniform
//! threshold batch size, in two steps:
//!
//! 1. **Binning.** Each weighted layer's threshold batch (from a
//!    [`ThresholdProfile`]) is mapped to a bin `floor(threshold / bin_width)`;
//!    consecutive layers in the same bin form one group. Parameter-free layers
//!    (pooling) attach to the group of the preceding weighted layer.
//! 2. **Coarsening.** While there are more groups than `target_max`, the adjacent
//!    pair with the smallest log-scale threshold distance is merged (leftmost on
//!    ties). This reproduces the paper's 3-way VGG19 split — the 48- and 64-threshold
//!    CONV classes merge into "layers 9–16" while the FC group stays separate — and
//!    caps the tuner's search-space size, which is the stated reason for
//!    coarse-grained partitioning.
//!
//! A sub-model whose parameters are dominated by FC layers is flagged
//! *communication-intensive* (the CTD policy's target, §III-F).

use serde::{Deserialize, Serialize};

use crate::model::Model;
use crate::profile::ThresholdProfile;

/// One contiguous slice of the model, scheduled as a unit ("SM-i" in the paper).
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct SubModel {
    /// Zero-based sub-model index (SM-1 has index 0).
    pub index: usize,
    /// Range of unit indices into [`Model::layers`].
    pub unit_start: usize,
    /// Exclusive end of the unit range.
    pub unit_end: usize,
    /// First weighted-layer ordinal (1-based, as the paper counts "Layer 1~8").
    pub first_weighted: u64,
    /// Last weighted-layer ordinal (inclusive).
    pub last_weighted: u64,
    /// Threshold batch size — the largest member threshold, i.e. the batch needed
    /// to saturate the GPU on every member layer.
    pub threshold_batch: u64,
    /// Trainable parameter bytes.
    pub param_bytes: u64,
    /// Forward FLOPs per sample.
    pub forward_flops: u64,
    /// Per-sample output activation bytes (the boundary shipped to the next
    /// sub-model; for the last sub-model, the network output).
    pub output_bytes_per_sample: u64,
    /// Per-sample input activation bytes (boundary received from the previous
    /// sub-model; for the first sub-model, the raw sample bytes).
    pub input_bytes_per_sample: u64,
    /// True if the sub-model contains any FC layer — the paper's criterion for
    /// communication-intensive sub-models (>90% of sync cost, <10% of compute).
    pub comm_intensive: bool,
}

impl SubModel {
    /// Number of units (including attached pools).
    pub fn unit_count(&self) -> usize {
        self.unit_end - self.unit_start
    }
}

/// A complete partitioning of a model.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct Partition {
    /// Name of the partitioned model.
    pub model_name: String,
    /// The sub-models, in network order.
    pub sub_models: Vec<SubModel>,
}

impl Partition {
    /// Number of sub-models (M in the paper).
    pub fn len(&self) -> usize {
        self.sub_models.len()
    }

    /// True if there are no sub-models (never produced by [`bin_partition`]).
    pub fn is_empty(&self) -> bool {
        self.sub_models.is_empty()
    }

    /// The sub-models.
    pub fn sub_models(&self) -> &[SubModel] {
        &self.sub_models
    }

    /// Indices of communication-intensive sub-models (CTD candidates).
    pub fn comm_intensive_indices(&self) -> Vec<usize> {
        self.sub_models
            .iter()
            .filter(|s| s.comm_intensive)
            .map(|s| s.index)
            .collect()
    }

    /// Total parameter bytes across sub-models (= the model's).
    pub fn total_param_bytes(&self) -> u64 {
        self.sub_models.iter().map(|s| s.param_bytes).sum()
    }
}

/// Options for [`bin_partition`].
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct PartitionOptions {
    /// Bin width for threshold batching; the paper uses 16 (§IV-A).
    pub bin_width: u64,
    /// Maximum number of sub-models after coarsening; `None` keeps the raw bins.
    pub target_max: Option<usize>,
}

impl Default for PartitionOptions {
    fn default() -> Self {
        PartitionOptions {
            bin_width: 16,
            target_max: Some(3),
        }
    }
}

struct Group {
    unit_start: usize,
    unit_end: usize,
    first_weighted: u64,
    last_weighted: u64,
    bin: u64,
    threshold: u64,
    has_fc: bool,
}

/// Partitions `model` using `profile` thresholds.
///
/// # Panics
/// Panics if the model has no weighted layers or `bin_width` is zero.
pub fn bin_partition(
    model: &Model,
    profile: &ThresholdProfile,
    opts: PartitionOptions,
) -> Partition {
    assert!(opts.bin_width > 0, "bin width must be positive");

    // Step 1: group consecutive weighted layers by bin; attach pools.
    let mut groups: Vec<Group> = Vec::new();
    let mut weighted_ordinal = 0u64;
    for (idx, layer) in model.layers().iter().enumerate() {
        match profile.threshold_for(layer) {
            None => {
                // Parameter-free: attach to the current group if one exists;
                // otherwise it will be absorbed by the first group below.
                if let Some(last) = groups.last_mut() {
                    last.unit_end = idx + 1;
                }
            }
            Some(threshold) => {
                weighted_ordinal += layer.kind.weighted_depth();
                let bin = threshold / opts.bin_width;
                let start_ordinal = weighted_ordinal + 1 - layer.kind.weighted_depth();
                match groups.last_mut() {
                    Some(last) if last.bin == bin => {
                        last.unit_end = idx + 1;
                        last.last_weighted = weighted_ordinal;
                        last.threshold = last.threshold.max(threshold);
                        last.has_fc |= layer.kind.is_fc();
                    }
                    _ => groups.push(Group {
                        unit_start: if groups.is_empty() { 0 } else { idx },
                        unit_end: idx + 1,
                        first_weighted: start_ordinal,
                        last_weighted: weighted_ordinal,
                        bin,
                        threshold,
                        has_fc: layer.kind.is_fc(),
                    }),
                }
            }
        }
    }
    assert!(
        !groups.is_empty(),
        "model {} has no weighted layers to partition",
        model.name
    );
    // Leading pools (if any) belong to the first group.
    groups[0].unit_start = 0;
    // A new group must start where the previous ended (pools between groups were
    // attached to the earlier group, so close any gaps).
    for i in 1..groups.len() {
        groups[i].unit_start = groups[i - 1].unit_end;
    }
    if let Some(last) = groups.last_mut() {
        last.unit_end = model.len();
    }

    // Step 2: coarsen to `target_max` groups by merging the adjacent pair with the
    // smallest log-threshold distance.
    if let Some(target) = opts.target_max {
        assert!(target >= 1, "target_max must be at least 1");
        while groups.len() > target {
            let mut best = 0usize;
            let mut best_dist = f64::INFINITY;
            for i in 0..groups.len() - 1 {
                let a = groups[i].threshold.max(1) as f64;
                let b = groups[i + 1].threshold.max(1) as f64;
                let dist = (b.log2() - a.log2()).abs();
                if dist < best_dist {
                    best_dist = dist;
                    best = i;
                }
            }
            let right = groups.remove(best + 1);
            let left = &mut groups[best];
            left.unit_end = right.unit_end;
            left.last_weighted = right.last_weighted;
            left.threshold = left.threshold.max(right.threshold);
            left.bin = left.threshold / opts.bin_width;
            left.has_fc |= right.has_fc;
        }
    }

    // Materialise sub-models with cost accounting.
    let sub_models = groups
        .iter()
        .enumerate()
        .map(|(index, g)| {
            let range = g.unit_start..g.unit_end;
            let param_bytes = model.param_bytes_in(range.clone());
            let forward_flops = model.layers()[range.clone()]
                .iter()
                .map(|l| l.kind.forward_flops())
                .sum();
            let output_bytes_per_sample = model.boundary_bytes(g.unit_end - 1);
            let input_bytes_per_sample = if g.unit_start == 0 {
                model.input_bytes()
            } else {
                model.boundary_bytes(g.unit_start - 1)
            };
            SubModel {
                index,
                unit_start: g.unit_start,
                unit_end: g.unit_end,
                first_weighted: g.first_weighted,
                last_weighted: g.last_weighted,
                threshold_batch: g.threshold,
                param_bytes,
                forward_flops,
                output_bytes_per_sample,
                input_bytes_per_sample,
                comm_intensive: g.has_fc,
            }
        })
        .collect();

    Partition {
        model_name: model.name.clone(),
        sub_models,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zoo;

    fn k40c() -> ThresholdProfile {
        ThresholdProfile::k40c()
    }

    #[test]
    fn vgg19_reproduces_figure5_three_way_split() {
        let model = zoo::vgg19();
        let p = bin_partition(&model, &k40c(), PartitionOptions::default());
        assert_eq!(p.len(), 3, "paper: VGG19 splits into 3 sub-models");
        let sm = p.sub_models();
        // Layer 1~8 (CONV), Layer 9~16 (CONV), Layer 17~19 (FC).
        assert_eq!((sm[0].first_weighted, sm[0].last_weighted), (1, 8));
        assert_eq!((sm[1].first_weighted, sm[1].last_weighted), (9, 16));
        assert_eq!((sm[2].first_weighted, sm[2].last_weighted), (17, 19));
        assert!(!sm[0].comm_intensive);
        assert!(!sm[1].comm_intensive);
        assert!(
            sm[2].comm_intensive,
            "FC sub-model is communication-intensive"
        );
        // Thresholds echo Figure 3's 16/32-ish/64/2048 progression.
        assert_eq!(sm[0].threshold_batch, 24);
        assert_eq!(sm[1].threshold_batch, 64);
        assert_eq!(sm[2].threshold_batch, 2048);
    }

    #[test]
    fn vgg19_cost_split_matches_conv_fc_folklore() {
        let model = zoo::vgg19();
        let p = bin_partition(&model, &k40c(), PartitionOptions::default());
        let sm = p.sub_models();
        // FC sub-model holds >80% of parameters but <10% of compute (§III-F).
        let total_params = p.total_param_bytes();
        assert!(sm[2].param_bytes * 10 > total_params * 8);
        let total_flops: u64 = sm.iter().map(|s| s.forward_flops).sum();
        assert!(sm[2].forward_flops * 10 < total_flops);
    }

    #[test]
    fn partition_covers_every_unit_exactly_once() {
        for model in [zoo::vgg19(), zoo::googlenet(), zoo::alexnet()] {
            let p = bin_partition(&model, &k40c(), PartitionOptions::default());
            let mut next = 0usize;
            for s in p.sub_models() {
                assert_eq!(s.unit_start, next, "gap or overlap in {}", model.name);
                assert!(s.unit_end > s.unit_start);
                next = s.unit_end;
            }
            assert_eq!(
                next,
                model.len(),
                "trailing units uncovered in {}",
                model.name
            );
            assert_eq!(p.total_param_bytes(), model.param_bytes());
        }
    }

    #[test]
    fn googlenet_splits_into_three() {
        let model = zoo::googlenet();
        let p = bin_partition(&model, &k40c(), PartitionOptions::default());
        assert_eq!(p.len(), 3, "paper: GoogLeNet also splits into 3 sub-models");
        let sm = p.sub_models();
        // Paper §IV-A: {stem + inception3*}, {inception4*}, {inception5* + FC}.
        let group_of = |name: &str| {
            let idx = model.layers().iter().position(|l| l.name == name).unwrap();
            sm.iter()
                .position(|s| (s.unit_start..s.unit_end).contains(&idx))
                .unwrap()
        };
        assert_eq!(group_of("conv1"), 0);
        assert_eq!(group_of("inception3b"), 0);
        assert_eq!(group_of("inception4a"), 1);
        assert_eq!(group_of("inception4e"), 1);
        assert_eq!(group_of("inception5a"), 2);
        assert_eq!(group_of("fc"), 2);
        // FC lands in the final sub-model ("Layer 10~12 (CONV+FC)").
        assert!(sm[2].comm_intensive);
        assert!(!sm[0].comm_intensive && !sm[1].comm_intensive);
    }

    #[test]
    fn no_target_keeps_raw_bins() {
        let model = zoo::vgg19();
        let raw = bin_partition(
            &model,
            &k40c(),
            PartitionOptions {
                bin_width: 16,
                target_max: None,
            },
        );
        // Raw bins: {conv@224,112,56}, {conv@28}, {conv@14}, {fc} = 4 groups.
        assert_eq!(raw.len(), 4);
    }

    #[test]
    fn target_one_merges_everything() {
        let model = zoo::vgg19();
        let p = bin_partition(
            &model,
            &k40c(),
            PartitionOptions {
                bin_width: 16,
                target_max: Some(1),
            },
        );
        assert_eq!(p.len(), 1);
        let s = &p.sub_models()[0];
        assert_eq!((s.unit_start, s.unit_end), (0, model.len()));
        assert_eq!((s.first_weighted, s.last_weighted), (1, 19));
    }

    #[test]
    fn boundary_bytes_chain() {
        let model = zoo::vgg19();
        let p = bin_partition(&model, &k40c(), PartitionOptions::default());
        let sm = p.sub_models();
        // Each sub-model's input boundary equals the previous one's output.
        for w in sm.windows(2) {
            assert_eq!(w[1].input_bytes_per_sample, w[0].output_bytes_per_sample);
        }
        assert_eq!(sm[0].input_bytes_per_sample, model.input_bytes());
    }

    #[test]
    #[should_panic(expected = "bin width")]
    fn zero_bin_width_rejected() {
        let model = zoo::lenet5();
        let _ = bin_partition(
            &model,
            &k40c(),
            PartitionOptions {
                bin_width: 0,
                target_max: None,
            },
        );
    }

    #[test]
    fn thresholds_nondecreasing_for_vgg() {
        let model = zoo::vgg19();
        let p = bin_partition(&model, &k40c(), PartitionOptions::default());
        let t: Vec<_> = p.sub_models().iter().map(|s| s.threshold_batch).collect();
        assert!(t.windows(2).all(|w| w[0] <= w[1]), "{t:?}");
    }
}
