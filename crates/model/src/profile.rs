//! Threshold batch sizes (§II-B, Figure 1, Figure 5).
//!
//! The *threshold batch size* of a layer is the smallest batch at which the GPU
//! reaches its maximum throughput for that layer. The paper measures it once per
//! layer *shape class* on a K40c and stores the results in a reusable repository
//! (§IV-A, footnote 11). We reproduce that repository as [`ThresholdProfile`]:
//!
//! * an **analytic rule** — a layer saturates the device when the work in flight
//!   reaches a device constant, so `threshold ≈ Kf / fwd_flops_per_sample`, bounded
//!   below by a parallelism term `Ke / output_elems_per_sample` (small feature maps
//!   expose too few thread blocks per sample) — rounded to a power of two and
//!   clamped;
//! * a small set of **measured overrides** for the shape classes the paper reports
//!   explicitly (Figures 1 and 5): VGG-scale CONV classes at 56×56 and 28×28, and
//!   the FC class pinned at 2048.
//!
//! The calibration reproduces the paper's three anchor measurements:
//! CONV(64,64,224,224) → 16, CONV(512,512,14,14) → 64, FC(4096,4096) → 2048.

use serde::Serialize;

use crate::layer::LayerKind;

/// Rounds to the nearest power of two (ties round up); 0 maps to 1.
pub fn round_to_pow2(x: u64) -> u64 {
    if x <= 1 {
        return 1;
    }
    let down = 1u64 << (63 - x.leading_zeros());
    let up = down << 1;
    if x - down < up - x {
        down
    } else {
        up
    }
}

/// A measured override for one layer shape class.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize)]
pub enum ClassOverride {
    /// Convolutions whose square output extent equals the given value.
    ConvOutExtent {
        /// Output feature-map extent (height = width).
        extent: u64,
        /// Measured threshold batch.
        threshold: u64,
    },
    /// All fully connected layers form one shape class (§IV-A: VGG19 has "5 types
    /// of CONV layers and 1 type of FC layer").
    Fc {
        /// Measured threshold batch.
        threshold: u64,
    },
    /// Layers whose name starts with the given prefix. Used for the GoogLeNet
    /// inception stages, whose measured thresholds are not captured by the
    /// kind-level rules (only name-aware lookups — [`ThresholdProfile::threshold_for`]
    /// — consult these).
    Named {
        /// Layer-name prefix, e.g. `"inception4"`.
        prefix: &'static str,
        /// Measured threshold batch.
        threshold: u64,
    },
}

/// The threshold-batch repository for one device.
#[derive(Clone, Debug, Serialize)]
pub struct ThresholdProfile {
    /// Device work constant: FLOPs that must be in flight to saturate the device.
    pub kf: f64,
    /// Device parallelism constant: output elements that must be in flight.
    pub ke: f64,
    /// Lower clamp — the paper observes every layer needs at least 16 (§IV-A,
    /// footnote 14).
    pub min_threshold: u64,
    /// Upper clamp to keep degenerate (near-zero-work) layers schedulable.
    pub max_threshold: u64,
    /// Measured shape-class overrides, checked in order.
    pub overrides: Vec<ClassOverride>,
}

impl ThresholdProfile {
    /// The Tesla K40c profile used throughout the paper's evaluation.
    pub fn k40c() -> Self {
        ThresholdProfile {
            // Calibrated against Figure 1(a): CONV(64,64,224,224) has
            // 2*64*64*9*224*224 ≈ 3.70e9 fwd FLOPs/sample and threshold 16.
            kf: 6.0e10,
            // Calibrated against Figure 1(b): CONV(512,512,14,14) has ~1.0e5 output
            // elems/sample and threshold 64.
            ke: 6.4e6,
            min_threshold: 16,
            max_threshold: 4096,
            overrides: vec![
                // The measured VGG-scale CONV shape classes of Figure 5, keyed by
                // output extent (the paper's "5 types of CONV layers"). Keying on
                // extent rather than FLOPs matters for the first conv of each stage,
                // whose input-channel count differs from the rest of its class.
                ClassOverride::ConvOutExtent {
                    extent: 224,
                    threshold: 16,
                },
                ClassOverride::ConvOutExtent {
                    extent: 112,
                    threshold: 16,
                },
                ClassOverride::ConvOutExtent {
                    extent: 56,
                    threshold: 24,
                },
                ClassOverride::ConvOutExtent {
                    extent: 28,
                    threshold: 48,
                },
                ClassOverride::ConvOutExtent {
                    extent: 14,
                    threshold: 64,
                },
                // The GoogLeNet-at-32×32 inception stage classes (measured on the
                // same K40c repository). These reproduce the paper's three-way
                // GoogLeNet grouping of §IV-A: {stem + inception3*}, {inception4*},
                // {inception5* + FC}. Thresholds are not monotone in depth here —
                // the 5* blocks are much wider than the 4* blocks and expose more
                // intra-sample parallelism, saturating at smaller batches.
                ClassOverride::Named {
                    prefix: "inception3",
                    threshold: 4096,
                },
                ClassOverride::Named {
                    prefix: "inception4",
                    threshold: 1024,
                },
                ClassOverride::Named {
                    prefix: "inception5",
                    threshold: 2048,
                },
                // Figure 1(c): the FC class saturates at 2048.
                ClassOverride::Fc { threshold: 2048 },
            ],
        }
    }

    fn conv_out_extent(kind: &LayerKind) -> Option<u64> {
        match *kind {
            LayerKind::Conv2d {
                input,
                kernel,
                stride,
                padding,
                ..
            } => Some((input.height + 2 * padding).saturating_sub(kernel) / stride + 1),
            _ => None,
        }
    }

    /// Threshold batch size for a layer given its name and kind; `None` for
    /// parameter-free layers, which are never scheduled on their own. This is the
    /// lookup the partitioner uses — it consults every override class, including
    /// the name-matched ones.
    pub fn threshold_for(&self, layer: &crate::layer::Layer) -> Option<u64> {
        if layer.kind.weighted_depth() == 0 {
            return None;
        }
        for ov in &self.overrides {
            if let ClassOverride::Named { prefix, threshold } = *ov {
                if layer.name.starts_with(prefix) {
                    return Some(threshold);
                }
            }
        }
        self.threshold_batch(&layer.kind)
    }

    /// Threshold batch size for a layer kind alone; `None` for parameter-free
    /// layers. Name-matched overrides are not consulted (use
    /// [`ThresholdProfile::threshold_for`] when the layer name is available).
    pub fn threshold_batch(&self, kind: &LayerKind) -> Option<u64> {
        if kind.weighted_depth() == 0 {
            return None;
        }
        for ov in &self.overrides {
            match *ov {
                ClassOverride::ConvOutExtent { extent, threshold } => {
                    if Self::conv_out_extent(kind) == Some(extent) {
                        return Some(threshold);
                    }
                }
                ClassOverride::Fc { threshold } => {
                    if kind.is_fc() {
                        return Some(threshold);
                    }
                }
                ClassOverride::Named { .. } => {}
            }
        }
        let flops = kind.forward_flops().max(1) as f64;
        let elems = kind.output_elems().max(1) as f64;
        let by_work = self.kf / flops;
        let by_parallelism = self.ke / elems;
        let raw = by_work.max(by_parallelism).max(1.0);
        let rounded = round_to_pow2(raw.round() as u64);
        Some(rounded.clamp(self.min_threshold, self.max_threshold))
    }

    /// Relative throughput (fraction of the layer's maximum) at a given batch size,
    /// following the saturation shape of Figure 1: a concave rise that reaches ~95%
    /// of peak at the threshold batch and asymptotes to 1.
    ///
    /// This is the single curve shape shared with `fela-gpu`; it lives here so the
    /// profile fully describes a layer's batch behaviour.
    pub fn relative_throughput(&self, kind: &LayerKind, batch: u64) -> f64 {
        let Some(threshold) = self.threshold_batch(kind) else {
            return 1.0;
        };
        saturation_fraction(batch, threshold)
    }
}

/// The saturation curve: fraction of peak throughput at `batch` given the threshold
/// batch. Michaelis–Menten shape `b / (b + k)` with `k` chosen so the fraction is
/// exactly 0.95 at `batch == threshold` (the "reaches maximum throughput" point of
/// Figure 1 up to measurement wiggle).
pub fn saturation_fraction(batch: u64, threshold: u64) -> f64 {
    if batch == 0 {
        return 0.0;
    }
    let k = threshold.max(1) as f64 / 19.0; // b/(b+k) = 0.95 at b = threshold.
    let b = batch as f64;
    b / (b + k)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::SpatialShape;

    fn conv(c_in: u64, c_out: u64, hw: u64) -> LayerKind {
        LayerKind::Conv2d {
            input: SpatialShape::new(c_in, hw, hw),
            out_channels: c_out,
            kernel: 3,
            stride: 1,
            padding: 1,
        }
    }

    fn fc(i: u64, o: u64) -> LayerKind {
        LayerKind::Linear {
            in_features: i,
            out_features: o,
        }
    }

    #[test]
    fn round_to_pow2_behaviour() {
        assert_eq!(round_to_pow2(0), 1);
        assert_eq!(round_to_pow2(1), 1);
        assert_eq!(round_to_pow2(3), 4); // tie rounds up
        assert_eq!(round_to_pow2(5), 4);
        assert_eq!(round_to_pow2(1786), 2048);
        assert_eq!(round_to_pow2(64), 64);
    }

    #[test]
    fn figure1_anchor_points() {
        let p = ThresholdProfile::k40c();
        // Figure 1(a): front CONV saturates at 16.
        assert_eq!(p.threshold_batch(&conv(64, 64, 224)), Some(16));
        // Figure 1(b): back CONV saturates at 64.
        assert_eq!(p.threshold_batch(&conv(512, 512, 14)), Some(64));
        // Figure 1(c): FC saturates at 2048.
        assert_eq!(p.threshold_batch(&fc(4096, 4096)), Some(2048));
    }

    #[test]
    fn footnote12_close_classes() {
        let p = ThresholdProfile::k40c();
        // (64,64,224,224) and (128,128,112,112) both ≈ 16.
        assert_eq!(p.threshold_batch(&conv(128, 128, 112)), Some(16));
    }

    #[test]
    fn overridden_mid_network_classes() {
        let p = ThresholdProfile::k40c();
        assert_eq!(p.threshold_batch(&conv(256, 256, 56)), Some(24));
        assert_eq!(p.threshold_batch(&conv(512, 512, 28)), Some(48));
    }

    #[test]
    fn fc_class_is_uniform() {
        let p = ThresholdProfile::k40c();
        assert_eq!(p.threshold_batch(&fc(25088, 4096)), Some(2048));
        assert_eq!(p.threshold_batch(&fc(4096, 1000)), Some(2048));
    }

    #[test]
    fn pool_has_no_threshold() {
        let p = ThresholdProfile::k40c();
        let pool = LayerKind::Pool2d {
            input: SpatialShape::new(64, 224, 224),
            kernel: 2,
            stride: 2,
        };
        assert_eq!(p.threshold_batch(&pool), None);
        assert_eq!(p.relative_throughput(&pool, 1), 1.0);
    }

    #[test]
    fn clamps_apply() {
        let p = ThresholdProfile::k40c();
        // A gigantic conv would want threshold < 16; clamp to 16.
        let big = conv(1024, 1024, 224);
        assert_eq!(p.threshold_batch(&big), Some(16));
        // A minuscule layer would want an absurd threshold; clamp to 4096.
        let tiny = fc(4, 4);
        // FC override wins; drop it to exercise the clamp.
        let p2 = ThresholdProfile {
            overrides: vec![],
            ..p
        };
        assert_eq!(p2.threshold_batch(&tiny), Some(4096));
    }

    #[test]
    fn saturation_curve_shape() {
        // Monotone nondecreasing, ~0.95 at the threshold, → 1 asymptotically.
        let thr = 64;
        let mut last = 0.0;
        for b in [1u64, 2, 4, 8, 16, 32, 64, 128, 1024, 65536] {
            let f = saturation_fraction(b, thr);
            assert!(f >= last, "curve must be monotone");
            assert!(f <= 1.0);
            last = f;
        }
        assert!((saturation_fraction(thr, thr) - 0.95).abs() < 1e-9);
        assert!(saturation_fraction(0, thr) == 0.0);
        assert!(saturation_fraction(1 << 40, thr) > 0.999);
    }

    #[test]
    fn relative_throughput_uses_layer_threshold() {
        let p = ThresholdProfile::k40c();
        let front = conv(64, 64, 224); // threshold 16
        let back = conv(512, 512, 14); // threshold 64
                                       // At batch 16 the front layer is ~saturated while the back one is not —
                                       // the §II-B observation motivating flexible parallelism.
        assert!(p.relative_throughput(&front, 16) > 0.94);
        assert!(p.relative_throughput(&back, 16) < 0.85);
    }
}
