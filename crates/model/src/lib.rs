//! # fela-model — model zoo, cost accounting and bin partitioning
//!
//! Everything the Fela reproduction knows about neural networks lives here:
//!
//! * [`Layer`]/[`LayerKind`] — shape-level layer descriptors with parameter, FLOP
//!   and activation accounting (tensor *contents* never matter to the paper's
//!   metrics, only shapes and sizes do);
//! * [`zoo`] — builders for the models of Table I, including the two evaluation
//!   benchmarks [`zoo::vgg19`] (224×224 input) and [`zoo::googlenet`] (32×32 input,
//!   as in §V-A);
//! * [`ThresholdProfile`] — the per-shape-class *threshold batch size* repository
//!   of §IV-A, calibrated to the paper's Figure 1 anchor measurements on a K40c;
//! * [`bin_partition`] — the offline bin-partitioned model splitting of §IV-A,
//!   which reproduces Figure 5's three-way VGG19 split.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod layer;
mod model;
pub mod partition;
pub mod profile;
pub mod zoo;

pub use layer::{InceptionBranch, Layer, LayerKind, SpatialShape, BYTES_PER_ELEM};
pub use model::Model;
pub use partition::{bin_partition, Partition, PartitionOptions, SubModel};
pub use profile::{saturation_fraction, ClassOverride, ThresholdProfile};
