//! The model zoo: builders for the networks the paper references.
//!
//! [`vgg19`] and [`googlenet`] are the two evaluation benchmarks (§V-A, with input
//! `(batch, 3, 224, 224)` and `(batch, 3, 32, 32)` respectively). The remaining
//! builders back Table I ("Growing Neural Network Layer Numbers"): each built model's
//! [`Model::weighted_depth`] must equal the layer number the paper lists, which the
//! tests at the bottom of this module assert. CUImage and SENet appear in Table I but
//! have no public layer-exact architecture, so they are metadata-only entries.

use serde::{Deserialize, Serialize};

use crate::layer::{InceptionBranch, Layer, LayerKind, SpatialShape};
use crate::model::Model;

/// One row of Table I.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct ModelInfo {
    /// Model name as printed in the paper.
    pub name: &'static str,
    /// Publication year.
    pub year: u32,
    /// Number of weighted layers.
    pub layer_number: u64,
    /// Whether this repository can build the full architecture.
    pub buildable: bool,
}

/// Table I of the paper, verbatim.
pub const TABLE_I: &[ModelInfo] = &[
    ModelInfo {
        name: "LeNet-5",
        year: 1998,
        layer_number: 5,
        buildable: true,
    },
    ModelInfo {
        name: "AlexNet",
        year: 2012,
        layer_number: 8,
        buildable: true,
    },
    ModelInfo {
        name: "ZF Net",
        year: 2013,
        layer_number: 8,
        buildable: true,
    },
    ModelInfo {
        name: "VGG16",
        year: 2014,
        layer_number: 16,
        buildable: true,
    },
    ModelInfo {
        name: "VGG19",
        year: 2014,
        layer_number: 19,
        buildable: true,
    },
    ModelInfo {
        name: "GoogleNet",
        year: 2014,
        layer_number: 22,
        buildable: true,
    },
    ModelInfo {
        name: "ResNet-152",
        year: 2015,
        layer_number: 152,
        buildable: true,
    },
    ModelInfo {
        name: "CUImage",
        year: 2016,
        layer_number: 1207,
        buildable: false,
    },
    ModelInfo {
        name: "SENet",
        year: 2017,
        layer_number: 154,
        buildable: false,
    },
];

/// Builds the Table I model with the given name, if it is buildable.
pub fn build_by_name(name: &str) -> Option<Model> {
    match name {
        "LeNet-5" => Some(lenet5()),
        "AlexNet" => Some(alexnet()),
        "ZF Net" => Some(zf_net()),
        "VGG16" => Some(vgg16()),
        "VGG19" => Some(vgg19()),
        "GoogleNet" => Some(googlenet()),
        "ResNet-152" => Some(resnet152()),
        _ => None,
    }
}

fn conv(
    name: &str,
    shape: &mut SpatialShape,
    out_channels: u64,
    kernel: u64,
    stride: u64,
    padding: u64,
) -> Layer {
    let kind = LayerKind::Conv2d {
        input: *shape,
        out_channels,
        kernel,
        stride,
        padding,
    };
    let extent = |e: u64| (e + 2 * padding).saturating_sub(kernel) / stride + 1;
    *shape = SpatialShape::new(out_channels, extent(shape.height), extent(shape.width));
    Layer::new(name, kind)
}

fn pool(name: &str, shape: &mut SpatialShape, kernel: u64, stride: u64) -> Layer {
    let kind = LayerKind::Pool2d {
        input: *shape,
        kernel,
        stride,
    };
    let extent = |e: u64| e.saturating_sub(kernel) / stride + 1;
    *shape = SpatialShape::new(shape.channels, extent(shape.height), extent(shape.width));
    Layer::new(name, kind)
}

fn linear(name: &str, in_features: u64, out_features: u64) -> Layer {
    Layer::new(
        name,
        LayerKind::Linear {
            in_features,
            out_features,
        },
    )
}

/// LeNet-5 (1998): 2 conv + 3 FC = 5 weighted layers, 1×32×32 input.
// The builders thread a mutable shape through each layer constructor, which
// cannot move into a single `vec![]` expression.
#[allow(clippy::vec_init_then_push)]
pub fn lenet5() -> Model {
    let mut s = SpatialShape::new(1, 32, 32);
    let input = s;
    let mut layers = Vec::new();
    layers.push(conv("conv1", &mut s, 6, 5, 1, 0));
    layers.push(pool("pool1", &mut s, 2, 2));
    layers.push(conv("conv2", &mut s, 16, 5, 1, 0));
    layers.push(pool("pool2", &mut s, 2, 2));
    layers.push(linear("fc3", s.elems(), 120));
    layers.push(linear("fc4", 120, 84));
    layers.push(linear("fc5", 84, 10));
    Model::new("LeNet-5", input, layers)
}

/// AlexNet (2012): 5 conv + 3 FC = 8 weighted layers, 3×227×227 input.
// The builders thread a mutable shape through each layer constructor, which
// cannot move into a single `vec![]` expression.
#[allow(clippy::vec_init_then_push)]
pub fn alexnet() -> Model {
    let mut s = SpatialShape::new(3, 227, 227);
    let input = s;
    let mut layers = Vec::new();
    layers.push(conv("conv1", &mut s, 96, 11, 4, 0));
    layers.push(pool("pool1", &mut s, 3, 2));
    layers.push(conv("conv2", &mut s, 256, 5, 1, 2));
    layers.push(pool("pool2", &mut s, 3, 2));
    layers.push(conv("conv3", &mut s, 384, 3, 1, 1));
    layers.push(conv("conv4", &mut s, 384, 3, 1, 1));
    layers.push(conv("conv5", &mut s, 256, 3, 1, 1));
    layers.push(pool("pool5", &mut s, 3, 2));
    layers.push(linear("fc6", s.elems(), 4096));
    layers.push(linear("fc7", 4096, 4096));
    layers.push(linear("fc8", 4096, 1000));
    Model::new("AlexNet", input, layers)
}

/// ZF Net (2013): AlexNet-shaped, 5 conv + 3 FC = 8 weighted layers.
// The builders thread a mutable shape through each layer constructor, which
// cannot move into a single `vec![]` expression.
#[allow(clippy::vec_init_then_push)]
pub fn zf_net() -> Model {
    let mut s = SpatialShape::new(3, 224, 224);
    let input = s;
    let mut layers = Vec::new();
    layers.push(conv("conv1", &mut s, 96, 7, 2, 1));
    layers.push(pool("pool1", &mut s, 3, 2));
    layers.push(conv("conv2", &mut s, 256, 5, 2, 0));
    layers.push(pool("pool2", &mut s, 3, 2));
    layers.push(conv("conv3", &mut s, 384, 3, 1, 1));
    layers.push(conv("conv4", &mut s, 384, 3, 1, 1));
    layers.push(conv("conv5", &mut s, 256, 3, 1, 1));
    layers.push(pool("pool5", &mut s, 3, 2));
    layers.push(linear("fc6", s.elems(), 4096));
    layers.push(linear("fc7", 4096, 4096));
    layers.push(linear("fc8", 4096, 1000));
    Model::new("ZF Net", input, layers)
}

fn vgg(name: &str, convs_per_stage: &[usize]) -> Model {
    let mut s = SpatialShape::new(3, 224, 224);
    let input = s;
    let mut layers = Vec::new();
    let widths = [64u64, 128, 256, 512, 512];
    for (stage, (&n, &width)) in convs_per_stage.iter().zip(widths.iter()).enumerate() {
        for i in 0..n {
            layers.push(conv(
                &format!("conv{}_{}", stage + 1, i + 1),
                &mut s,
                width,
                3,
                1,
                1,
            ));
        }
        layers.push(pool(&format!("pool{}", stage + 1), &mut s, 2, 2));
    }
    layers.push(linear("fc6", s.elems(), 4096));
    layers.push(linear("fc7", 4096, 4096));
    layers.push(linear("fc8", 4096, 1000));
    Model::new(name, input, layers)
}

/// VGG16 (2014): 13 conv + 3 FC = 16 weighted layers.
pub fn vgg16() -> Model {
    vgg("VGG16", &[2, 2, 3, 3, 3])
}

/// VGG19 (2014): 16 conv + 3 FC = 19 weighted layers — the paper's primary
/// benchmark, with input `(batch, 3, 224, 224)`.
pub fn vgg19() -> Model {
    vgg("VGG19", &[2, 2, 4, 4, 4])
}

const fn branch(reduce: u64, kernel: u64, out: u64) -> InceptionBranch {
    InceptionBranch {
        reduce,
        kernel,
        out,
    }
}

/// GoogLeNet inception configurations `(1x1, 3x3reduce/3x3, 5x5reduce/5x5, poolproj)`.
const INCEPTIONS: &[(&str, [InceptionBranch; 4])] = &[
    (
        "inception3a",
        [
            branch(0, 1, 64),
            branch(96, 3, 128),
            branch(16, 5, 32),
            branch(32, 1, 0),
        ],
    ),
    (
        "inception3b",
        [
            branch(0, 1, 128),
            branch(128, 3, 192),
            branch(32, 5, 96),
            branch(64, 1, 0),
        ],
    ),
    (
        "inception4a",
        [
            branch(0, 1, 192),
            branch(96, 3, 208),
            branch(16, 5, 48),
            branch(64, 1, 0),
        ],
    ),
    (
        "inception4b",
        [
            branch(0, 1, 160),
            branch(112, 3, 224),
            branch(24, 5, 64),
            branch(64, 1, 0),
        ],
    ),
    (
        "inception4c",
        [
            branch(0, 1, 128),
            branch(128, 3, 256),
            branch(24, 5, 64),
            branch(64, 1, 0),
        ],
    ),
    (
        "inception4d",
        [
            branch(0, 1, 112),
            branch(144, 3, 288),
            branch(32, 5, 64),
            branch(64, 1, 0),
        ],
    ),
    (
        "inception4e",
        [
            branch(0, 1, 256),
            branch(160, 3, 320),
            branch(32, 5, 128),
            branch(128, 1, 0),
        ],
    ),
    (
        "inception5a",
        [
            branch(0, 1, 256),
            branch(160, 3, 320),
            branch(32, 5, 128),
            branch(128, 1, 0),
        ],
    ),
    (
        "inception5b",
        [
            branch(0, 1, 384),
            branch(192, 3, 384),
            branch(48, 5, 128),
            branch(128, 1, 0),
        ],
    ),
];

fn inception_out_channels(branches: &[InceptionBranch; 4]) -> u64 {
    branches
        .iter()
        .map(|b| if b.out > 0 { b.out } else { b.reduce })
        .sum()
}

/// GoogLeNet with a configurable input extent. The paper trains it on 32×32 inputs
/// (§V-A footnote 17); [`googlenet`] uses that. Weighted depth is 22 regardless of
/// extent: 3 stem convs + 9 inception blocks (deepest path 2) + final FC.
#[allow(clippy::vec_init_then_push)]
pub fn googlenet_for(extent: u64) -> Model {
    let mut s = SpatialShape::new(3, extent, extent);
    let input = s;
    let mut layers = Vec::new();
    layers.push(conv("conv1", &mut s, 64, 7, 2, 3));
    layers.push(pool("pool1", &mut s, 3, 2));
    layers.push(conv("conv2_reduce", &mut s, 64, 1, 1, 0));
    layers.push(conv("conv2", &mut s, 192, 3, 1, 1));
    layers.push(pool("pool2", &mut s, 3, 2));
    for (i, (name, branches)) in INCEPTIONS.iter().enumerate() {
        layers.push(Layer::new(
            *name,
            LayerKind::Inception {
                input: s,
                branches: *branches,
            },
        ));
        s = SpatialShape::new(inception_out_channels(branches), s.height, s.width);
        // Max-pools after inception 3b (index 1) and 4e (index 6); global average
        // pool after 5b (index 8).
        if i == 1 || i == 6 {
            layers.push(pool(&format!("pool{}", i + 2), &mut s, 3, 2));
        } else if i == 8 {
            {
                let k = s.height.max(1);
                layers.push(pool("avgpool", &mut s, k, 1));
            }
        }
    }
    layers.push(linear("fc", s.elems(), 1000));
    Model::new("GoogleNet", input, layers)
}

/// GoogLeNet (2014) as evaluated in the paper: 32×32 input, 22 weighted layers.
pub fn googlenet() -> Model {
    googlenet_for(32)
}

/// ResNet-152 (2015): 1 stem conv + 50 bottleneck blocks × 3 convs + 1 FC = 152
/// weighted layers. Identity shortcuts contribute no weighted layers and negligible
/// FLOPs, so they are omitted from the cost model (documented substitution).
pub fn resnet152() -> Model {
    let mut s = SpatialShape::new(3, 224, 224);
    let input = s;
    let mut layers = Vec::new();
    layers.push(conv("conv1", &mut s, 64, 7, 2, 3));
    layers.push(pool("pool1", &mut s, 3, 2));
    // (blocks, bottleneck width, output width) per stage.
    let stages: [(usize, u64, u64); 4] =
        [(3, 64, 256), (8, 128, 512), (36, 256, 1024), (3, 512, 2048)];
    for (stage_idx, &(blocks, mid, out)) in stages.iter().enumerate() {
        for b in 0..blocks {
            // First block of stages 2..4 downsamples spatially via the 3x3 conv.
            let stride = if stage_idx > 0 && b == 0 { 2 } else { 1 };
            let tag = format!("res{}_{}", stage_idx + 2, b + 1);
            layers.push(conv(&format!("{tag}_a"), &mut s, mid, 1, 1, 0));
            layers.push(conv(&format!("{tag}_b"), &mut s, mid, 3, stride, 1));
            layers.push(conv(&format!("{tag}_c"), &mut s, out, 1, 1, 0));
        }
    }
    {
        let k = s.height.max(1);
        layers.push(pool("avgpool", &mut s, k, 1));
    }
    layers.push(linear("fc", s.elems(), 1000));
    Model::new("ResNet-152", input, layers)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_buildable_table_i_row_matches_layer_number() {
        for info in TABLE_I.iter().filter(|i| i.buildable) {
            let model = build_by_name(info.name)
                .unwrap_or_else(|| panic!("{} should be buildable", info.name));
            assert_eq!(
                model.weighted_depth(),
                info.layer_number,
                "{} weighted depth mismatch",
                info.name
            );
        }
    }

    #[test]
    fn unbuildable_rows_return_none() {
        assert!(build_by_name("CUImage").is_none());
        assert!(build_by_name("SENet").is_none());
        assert!(build_by_name("no-such-model").is_none());
    }

    #[test]
    fn vgg19_structure() {
        let m = vgg19();
        // 16 conv + 5 pool + 3 fc = 24 schedulable units.
        assert_eq!(m.len(), 24);
        // ~143.6M parameters (the well-known figure ±1%).
        let params = m.param_count();
        assert!(
            (143_000_000..145_000_000).contains(&params),
            "VGG19 params {params}"
        );
        // FC layers dominate the parameter count (the §III-F premise).
        let fc_params: u64 = m
            .layers()
            .iter()
            .filter(|l| l.kind.is_fc())
            .map(|l| l.kind.param_count())
            .sum();
        assert!(fc_params * 10 > params * 8, "FC should hold >80% of params");
        // CONV layers dominate compute.
        let conv_flops: u64 = m
            .layers()
            .iter()
            .filter(|l| !l.kind.is_fc())
            .map(|l| l.kind.forward_flops())
            .sum();
        assert!(
            conv_flops * 10 > m.forward_flops() * 9,
            "CONV should hold >90% of FLOPs"
        );
    }

    #[test]
    fn vgg19_flops_magnitude() {
        // VGG19 forward pass is ~19.6 GFLOPs-MAC*2 ≈ 39 GFLOP with our 2-per-MAC
        // convention.
        let flops = vgg19().forward_flops() as f64;
        assert!(
            (3.5e10..4.5e10).contains(&flops),
            "VGG19 fwd FLOPs {flops:e}"
        );
    }

    #[test]
    fn vgg19_fc6_input_is_25088() {
        let m = vgg19();
        let fc6 = m
            .layers()
            .iter()
            .find(|l| l.name == "fc6")
            .expect("fc6 exists");
        match fc6.kind {
            LayerKind::Linear { in_features, .. } => assert_eq!(in_features, 25088),
            _ => panic!("fc6 must be linear"),
        }
    }

    #[test]
    fn googlenet_params_magnitude() {
        // GoogLeNet is famously small: ~6-8M params (weights are extent-independent).
        let params = googlenet().param_count();
        assert!(
            (5_000_000..9_000_000).contains(&params),
            "GoogLeNet params {params}"
        );
    }

    #[test]
    fn googlenet_input_is_32() {
        let m = googlenet();
        assert_eq!(m.input, SpatialShape::new(3, 32, 32));
        // Much cheaper than VGG19 per sample, as the paper's smaller straggler
        // delays for GoogLeNet imply.
        assert!(m.forward_flops() < vgg19().forward_flops() / 50);
    }

    #[test]
    fn googlenet_224_is_more_expensive_than_32() {
        assert!(googlenet_for(224).forward_flops() > googlenet().forward_flops() * 10);
    }

    #[test]
    fn resnet152_has_152_weighted_layers() {
        assert_eq!(resnet152().weighted_depth(), 152);
    }

    #[test]
    fn resnet152_params_magnitude() {
        // ~60.2M params; identity shortcuts omitted so allow a little slack
        // (projection shortcuts would add ~6M).
        let params = resnet152().param_count();
        assert!(
            (54_000_000..62_000_000).contains(&params),
            "ResNet-152 params {params}"
        );
    }

    #[test]
    fn lenet_fc_sizes_chain() {
        let m = lenet5();
        assert_eq!(m.first_fc_index(), Some(4));
        assert_eq!(m.layers()[4].kind.param_count(), 400 * 120 + 120);
    }

    #[test]
    fn alexnet_fc6_input_is_9216() {
        let m = alexnet();
        let fc6 = m.layers().iter().find(|l| l.name == "fc6").unwrap();
        match fc6.kind {
            LayerKind::Linear { in_features, .. } => assert_eq!(in_features, 9216),
            _ => panic!(),
        }
    }
}
