//! Layer descriptors and per-layer cost accounting.
//!
//! Models are sequences of [`Layer`]s. A layer knows its parameter count, its
//! per-sample forward FLOPs and its per-sample output activation size — the three
//! quantities every timing model in the workspace is built from. Contents of tensors
//! never matter here (see DESIGN.md §1); only shapes do.

use serde::{Deserialize, Serialize};

/// Bytes per element for fp32 training, the precision used throughout the paper.
pub const BYTES_PER_ELEM: u64 = 4;

/// Spatial input of a convolutional stage: `channels × height × width`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub struct SpatialShape {
    /// Number of channels.
    pub channels: u64,
    /// Feature-map height in pixels.
    pub height: u64,
    /// Feature-map width in pixels.
    pub width: u64,
}

impl SpatialShape {
    /// Creates a shape.
    pub const fn new(channels: u64, height: u64, width: u64) -> Self {
        SpatialShape {
            channels,
            height,
            width,
        }
    }

    /// Number of elements per sample.
    pub const fn elems(&self) -> u64 {
        self.channels * self.height * self.width
    }
}

/// One branch of an inception block: a 1×1 reduction followed by an optional
/// larger convolution, described by output channel counts.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct InceptionBranch {
    /// Output channels of the 1×1 reduction (0 = branch has no reduction conv).
    pub reduce: u64,
    /// Kernel size of the main convolution (1 for the pure 1×1 branch).
    pub kernel: u64,
    /// Output channels of the main convolution (0 = branch is pooling-projection
    /// only and `reduce` gives the projection width).
    pub out: u64,
}

/// What a layer computes.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum LayerKind {
    /// 2-D convolution with square kernel.
    Conv2d {
        /// Input spatial shape.
        input: SpatialShape,
        /// Output channels.
        out_channels: u64,
        /// Square kernel size.
        kernel: u64,
        /// Stride (same in both dimensions).
        stride: u64,
        /// Symmetric zero padding.
        padding: u64,
    },
    /// Fully connected layer.
    Linear {
        /// Input features.
        in_features: u64,
        /// Output features.
        out_features: u64,
    },
    /// Max/avg pooling (parameter-free, cheap; tracked for shape propagation).
    Pool2d {
        /// Input spatial shape.
        input: SpatialShape,
        /// Square window size.
        kernel: u64,
        /// Stride.
        stride: u64,
    },
    /// A GoogLeNet inception block, treated as one schedulable unit whose cost is
    /// the sum of its branches. `weighted_depth` of an inception block is 2 (the
    /// deepest branch: reduce + main conv), matching the 22-layer count of Table I.
    Inception {
        /// Input spatial shape.
        input: SpatialShape,
        /// The four branches (1×1, 3×3, 5×5, pool-proj).
        branches: [InceptionBranch; 4],
    },
}

/// A named layer in a model.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct Layer {
    /// Human-readable name, e.g. `"conv3_2"`.
    pub name: String,
    /// The computation performed.
    pub kind: LayerKind,
}

impl LayerKind {
    /// Output spatial size of a convolution given input extent, kernel, stride and
    /// padding. Saturates at 1 when the window no longer fits (kernels larger than
    /// the padded input clamp, mirroring ceil-mode pooling on tiny feature maps —
    /// GoogLeNet with the paper's 32×32 CIFAR input reaches 1×1 maps mid-network).
    fn conv_out_extent(extent: u64, kernel: u64, stride: u64, padding: u64) -> u64 {
        (extent + 2 * padding).saturating_sub(kernel) / stride + 1
    }

    /// Per-sample output shape expressed as element count.
    pub fn output_elems(&self) -> u64 {
        match *self {
            LayerKind::Conv2d {
                input,
                out_channels,
                kernel,
                stride,
                padding,
            } => {
                let h = Self::conv_out_extent(input.height, kernel, stride, padding);
                let w = Self::conv_out_extent(input.width, kernel, stride, padding);
                out_channels * h * w
            }
            LayerKind::Linear { out_features, .. } => out_features,
            LayerKind::Pool2d {
                input,
                kernel,
                stride,
            } => {
                let h = Self::conv_out_extent(input.height, kernel, stride, 0);
                let w = Self::conv_out_extent(input.width, kernel, stride, 0);
                input.channels * h * w
            }
            LayerKind::Inception { input, branches } => {
                // All branches preserve spatial extent (stride 1, same padding);
                // output channels are the concat of branch outputs.
                let out_ch: u64 = branches
                    .iter()
                    .map(|b| if b.out > 0 { b.out } else { b.reduce })
                    .sum();
                out_ch * input.height * input.width
            }
        }
    }

    /// Number of trainable parameters (weights + biases).
    pub fn param_count(&self) -> u64 {
        match *self {
            LayerKind::Conv2d {
                input,
                out_channels,
                kernel,
                ..
            } => input.channels * out_channels * kernel * kernel + out_channels,
            LayerKind::Linear {
                in_features,
                out_features,
            } => in_features * out_features + out_features,
            LayerKind::Pool2d { .. } => 0,
            LayerKind::Inception { input, branches } => {
                let mut params = 0;
                for b in branches.iter() {
                    if b.out > 0 && b.reduce > 0 {
                        // reduce conv (1x1) then main conv.
                        params += input.channels * b.reduce + b.reduce;
                        params += b.reduce * b.out * b.kernel * b.kernel + b.out;
                    } else if b.out > 0 {
                        // direct conv from input (the 1x1 branch).
                        params += input.channels * b.out * b.kernel * b.kernel + b.out;
                    } else {
                        // pool projection: 1x1 conv to `reduce` channels.
                        params += input.channels * b.reduce + b.reduce;
                    }
                }
                params
            }
        }
    }

    /// Forward multiply–accumulate FLOPs per sample (2 FLOPs per MAC).
    pub fn forward_flops(&self) -> u64 {
        match *self {
            LayerKind::Conv2d {
                input,
                out_channels,
                kernel,
                stride,
                padding,
            } => {
                let h = Self::conv_out_extent(input.height, kernel, stride, padding);
                let w = Self::conv_out_extent(input.width, kernel, stride, padding);
                2 * input.channels * out_channels * kernel * kernel * h * w
            }
            LayerKind::Linear {
                in_features,
                out_features,
            } => 2 * in_features * out_features,
            LayerKind::Pool2d {
                input,
                kernel,
                stride,
            } => {
                let h = Self::conv_out_extent(input.height, kernel, stride, 0);
                let w = Self::conv_out_extent(input.width, kernel, stride, 0);
                input.channels * h * w * kernel * kernel
            }
            LayerKind::Inception { input, branches } => {
                let hw = input.height * input.width;
                let mut flops = 0;
                for b in branches.iter() {
                    if b.out > 0 && b.reduce > 0 {
                        flops += 2 * input.channels * b.reduce * hw;
                        flops += 2 * b.reduce * b.out * b.kernel * b.kernel * hw;
                    } else if b.out > 0 {
                        flops += 2 * input.channels * b.out * b.kernel * b.kernel * hw;
                    } else {
                        flops += 2 * input.channels * b.reduce * hw;
                    }
                }
                flops
            }
        }
    }

    /// How many weighted layers this unit contributes to the "layer number" counts
    /// of Table I (pooling contributes zero; an inception block contributes two —
    /// its deepest weighted path).
    pub fn weighted_depth(&self) -> u64 {
        match self {
            LayerKind::Conv2d { .. } | LayerKind::Linear { .. } => 1,
            LayerKind::Pool2d { .. } => 0,
            LayerKind::Inception { .. } => 2,
        }
    }

    /// True for layers whose synchronisation cost dominates their compute cost
    /// (FC layers in the paper's §III-F discussion).
    pub fn is_fc(&self) -> bool {
        matches!(self, LayerKind::Linear { .. })
    }

    /// Number of GPU kernel launches one forward pass of this unit issues
    /// (an inception block launches one kernel per branch convolution). Used by
    /// the compute model's fixed-overhead term.
    pub fn kernel_count(&self) -> u64 {
        match self {
            LayerKind::Conv2d { .. } | LayerKind::Linear { .. } | LayerKind::Pool2d { .. } => 1,
            LayerKind::Inception { branches, .. } => branches
                .iter()
                .map(|b| 1 + u64::from(b.out > 0 && b.reduce > 0))
                .sum(),
        }
    }
}

impl Layer {
    /// Convenience constructor.
    pub fn new(name: impl Into<String>, kind: LayerKind) -> Self {
        Layer {
            name: name.into(),
            kind,
        }
    }

    /// Trainable parameter bytes (fp32).
    pub fn param_bytes(&self) -> u64 {
        self.kind.param_count() * BYTES_PER_ELEM
    }

    /// Per-sample output activation bytes (fp32).
    pub fn activation_bytes(&self) -> u64 {
        self.kind.output_elems() * BYTES_PER_ELEM
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn conv(c_in: u64, c_out: u64, hw: u64) -> LayerKind {
        LayerKind::Conv2d {
            input: SpatialShape::new(c_in, hw, hw),
            out_channels: c_out,
            kernel: 3,
            stride: 1,
            padding: 1,
        }
    }

    #[test]
    fn conv_param_count_matches_formula() {
        // 3x3 conv 64->64: 64*64*9 + 64 bias.
        assert_eq!(conv(64, 64, 224).param_count(), 64 * 64 * 9 + 64);
    }

    #[test]
    fn conv_preserves_shape_with_same_padding() {
        assert_eq!(conv(64, 64, 224).output_elems(), 64 * 224 * 224);
    }

    #[test]
    fn conv_flops_formula() {
        // 2 * Cin * Cout * k^2 * Hout * Wout
        assert_eq!(conv(3, 64, 224).forward_flops(), 2 * 3 * 64 * 9 * 224 * 224);
    }

    #[test]
    fn strided_conv_shrinks_output() {
        let k = LayerKind::Conv2d {
            input: SpatialShape::new(3, 224, 224),
            out_channels: 96,
            kernel: 11,
            stride: 4,
            padding: 0,
        };
        // AlexNet conv1: (224 - 11)/4 + 1 = 54.
        assert_eq!(k.output_elems(), 96 * 54 * 54);
    }

    #[test]
    fn linear_accounting() {
        let k = LayerKind::Linear {
            in_features: 4096,
            out_features: 4096,
        };
        assert_eq!(k.param_count(), 4096 * 4096 + 4096);
        assert_eq!(k.forward_flops(), 2 * 4096 * 4096);
        assert_eq!(k.output_elems(), 4096);
        assert!(k.is_fc());
    }

    #[test]
    fn pool_has_no_params_and_halves_extent() {
        let k = LayerKind::Pool2d {
            input: SpatialShape::new(64, 224, 224),
            kernel: 2,
            stride: 2,
        };
        assert_eq!(k.param_count(), 0);
        assert_eq!(k.output_elems(), 64 * 112 * 112);
        assert_eq!(k.weighted_depth(), 0);
        assert!(!k.is_fc());
    }

    #[test]
    fn inception_concatenates_branches() {
        // GoogLeNet inception 3a: 64 + 128 + 32 + 32 = 256 output channels.
        let k = LayerKind::Inception {
            input: SpatialShape::new(192, 28, 28),
            branches: [
                InceptionBranch {
                    reduce: 0,
                    kernel: 1,
                    out: 64,
                },
                InceptionBranch {
                    reduce: 96,
                    kernel: 3,
                    out: 128,
                },
                InceptionBranch {
                    reduce: 16,
                    kernel: 5,
                    out: 32,
                },
                InceptionBranch {
                    reduce: 32,
                    kernel: 1,
                    out: 0,
                },
            ],
        };
        assert_eq!(k.output_elems(), 256 * 28 * 28);
        assert_eq!(k.weighted_depth(), 2);
        assert!(k.param_count() > 0);
        assert!(k.forward_flops() > 0);
    }

    #[test]
    fn layer_byte_helpers() {
        let layer = Layer::new(
            "fc6",
            LayerKind::Linear {
                in_features: 25088,
                out_features: 4096,
            },
        );
        assert_eq!(layer.param_bytes(), (25088 * 4096 + 4096) * 4);
        assert_eq!(layer.activation_bytes(), 4096 * 4);
    }
}
