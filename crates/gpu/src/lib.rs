//! # fela-gpu — analytic GPU compute and memory model
//!
//! The hardware substitute for the paper's NVIDIA Tesla K40c (see DESIGN.md §1):
//!
//! * [`DeviceProfile`] — peak FLOP/s, sustained efficiency, memory size;
//! * [`ComputeModel`] — per-layer/per-sub-model training time as a function of
//!   batch size, reproducing the saturation curves of Figure 1;
//! * [`MemoryModel`] — batch feasibility, reproducing the "VGG19 fits at batch 32,
//!   not above" constraint of §II-B footnote 3.
//!
//! Everything here is pure shape/size arithmetic — deterministic, unit-testable,
//! and independent of the simulator.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod compute;
mod device;
mod memory;

pub use compute::{ComputeModel, TRAIN_TO_FORWARD_FLOPS};
pub use device::DeviceProfile;
pub use memory::{MemoryModel, ACTIVATION_FACTOR};
