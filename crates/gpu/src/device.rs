//! GPU device profiles.

use serde::Serialize;

/// Static description of a GPU device.
///
/// The compute model derives a layer's peak training throughput from
/// `effective_flops()` and the layer's per-sample FLOPs; the memory model checks
/// batch feasibility against `mem_bytes`.
#[derive(Clone, Debug, Serialize)]
pub struct DeviceProfile {
    /// Marketing name, e.g. `"Tesla K40c"`.
    pub name: &'static str,
    /// Peak single-precision throughput in FLOP/s.
    pub peak_flops: f64,
    /// Fraction of peak a well-tuned dense kernel sustains (cuDNN-era convolutions
    /// on Kepler sit in the 30–40% range).
    pub efficiency: f64,
    /// Device memory in bytes.
    pub mem_bytes: u64,
}

impl DeviceProfile {
    /// The NVIDIA Tesla K40c used throughout the paper: 4.29 TFLOP/s fp32, 12 GB.
    pub fn k40c() -> Self {
        DeviceProfile {
            name: "Tesla K40c",
            peak_flops: 4.29e12,
            efficiency: 0.35,
            mem_bytes: 12 * (1 << 30),
        }
    }

    /// Sustained FLOP/s available to dense training kernels.
    pub fn effective_flops(&self) -> f64 {
        self.peak_flops * self.efficiency
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn k40c_profile_values() {
        let d = DeviceProfile::k40c();
        assert_eq!(d.name, "Tesla K40c");
        assert_eq!(d.mem_bytes, 12_884_901_888);
        assert!((d.effective_flops() - 4.29e12 * 0.35).abs() < 1e6);
    }
}
