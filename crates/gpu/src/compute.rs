//! The analytic compute-time model (reproduces Figure 1).
//!
//! A layer's training throughput at batch `b` is
//!
//! ```text
//! throughput(b) = max_throughput · saturation_fraction(b, threshold)
//! max_throughput = device.effective_flops() / train_flops_per_sample
//! ```
//!
//! where `train_flops_per_sample = 3 × forward_flops` (the backward pass costs about
//! twice the forward pass: one gradient-w.r.t.-input and one gradient-w.r.t.-weights
//! product per forward product) and `saturation_fraction` is the concave rise of
//! [`fela_model::saturation_fraction`], parameterised by the layer's threshold batch
//! from the device's [`ThresholdProfile`]. Small batches therefore under-utilise the
//! GPU exactly as §II-B describes, which is the effect flexible parallelism exploits.
//!
//! Times are returned as `f64` seconds; callers at the simulation boundary convert
//! to `SimDuration`.

use fela_model::{saturation_fraction, Layer, Model, SubModel, ThresholdProfile};
use serde::Serialize;

use crate::device::DeviceProfile;

/// Ratio of training (fwd+bwd) FLOPs to forward FLOPs.
pub const TRAIN_TO_FORWARD_FLOPS: f64 = 3.0;

/// The compute-time model for one device.
#[derive(Clone, Debug, Serialize)]
pub struct ComputeModel {
    /// The device being modelled.
    pub device: DeviceProfile,
    /// The threshold-batch repository for the device.
    pub profile: ThresholdProfile,
    /// Fixed wall time per kernel launch, batch-independent: CUDA dispatch,
    /// framework (PyTorch-era) Python/C++ overhead and the paper's own
    /// *virtual-layer* hooks (§IV-C). Dominates tiny-feature-map models like
    /// GoogLeNet on 32×32 inputs; "trivial" (the paper's word) for VGG-scale
    /// layers. Charged per kernel, forward and backward alike.
    pub kernel_overhead_secs: f64,
}

impl ComputeModel {
    /// A K40c compute model with the paper's calibration (2 ms per kernel
    /// launch round-trip on the 2019-era PyTorch + hook stack).
    pub fn k40c() -> Self {
        ComputeModel {
            device: DeviceProfile::k40c(),
            profile: ThresholdProfile::k40c(),
            kernel_overhead_secs: 2.0e-3,
        }
    }

    /// Peak training throughput of `layer` in samples/second (the plateau of its
    /// Figure 1 curve).
    pub fn layer_max_throughput(&self, layer: &Layer) -> f64 {
        let train_flops = layer.kind.forward_flops().max(1) as f64 * TRAIN_TO_FORWARD_FLOPS;
        self.device.effective_flops() / train_flops
    }

    /// FLOP-limited training throughput of `layer` at `batch`, in samples/second
    /// (saturation curve only; the fixed launch overhead is added by
    /// [`ComputeModel::layer_time`]).
    pub fn layer_throughput(&self, layer: &Layer, batch: u64) -> f64 {
        let threshold = self.profile.threshold_for(layer).unwrap_or(1);
        self.layer_max_throughput(layer) * saturation_fraction(batch, threshold)
    }

    /// Wall time in seconds to train `layer` on a batch of `batch` samples:
    /// the saturation-curve FLOP time plus the fixed launch overhead (forward +
    /// backward ≈ 3 kernel rounds per forward kernel).
    pub fn layer_time(&self, layer: &Layer, batch: u64) -> f64 {
        if batch == 0 {
            return 0.0;
        }
        let flops_time = batch as f64 / self.layer_throughput(layer, batch);
        let overhead =
            TRAIN_TO_FORWARD_FLOPS * layer.kind.kernel_count() as f64 * self.kernel_overhead_secs;
        flops_time + overhead
    }

    /// Wall time in seconds to train the unit range `[start, end)` of `model` on a
    /// batch of `batch` samples. Layers execute sequentially on the device, so
    /// times add; each layer saturates (or fails to) independently.
    pub fn range_time(&self, model: &Model, start: usize, end: usize, batch: u64) -> f64 {
        model.layers()[start..end]
            .iter()
            .map(|l| self.layer_time(l, batch))
            .sum()
    }

    /// Wall time in seconds to train one sub-model on a batch.
    pub fn sub_model_time(&self, model: &Model, sm: &SubModel, batch: u64) -> f64 {
        self.range_time(model, sm.unit_start, sm.unit_end, batch)
    }

    /// Wall time in seconds for a full forward+backward pass of the whole model.
    pub fn model_time(&self, model: &Model, batch: u64) -> f64 {
        self.range_time(model, 0, model.len(), batch)
    }

    /// [`ComputeModel::range_time`] under a memory constraint: if `batch` does not
    /// fit on the device, the range is trained in the largest feasible
    /// power-of-two micro-batches with gradient accumulation (what a data-parallel
    /// PyTorch worker must do when its per-worker batch exceeds GPU memory —
    /// §II-B footnote 3). The utilisation penalty of the smaller chunks falls out
    /// of the saturation curves automatically.
    ///
    /// # Panics
    /// Panics if even a single sample does not fit.
    pub fn chunked_range_time(
        &self,
        memory: &crate::MemoryModel,
        model: &Model,
        start: usize,
        end: usize,
        batch: u64,
    ) -> f64 {
        let max_b = memory.max_pow2_batch_range(model, start, end);
        assert!(max_b > 0, "range does not fit on the device at batch 1");
        if batch <= max_b {
            return self.range_time(model, start, end, batch);
        }
        let full_chunks = batch / max_b;
        let rem = batch % max_b;
        let mut t = self.range_time(model, start, end, max_b) * full_chunks as f64;
        if rem > 0 {
            t += self.range_time(model, start, end, rem);
        }
        t
    }

    /// Effective whole-model training throughput at `batch`, in samples/second.
    pub fn model_throughput(&self, model: &Model, batch: u64) -> f64 {
        if batch == 0 {
            return 0.0;
        }
        batch as f64 / self.model_time(model, batch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fela_model::zoo;

    fn model() -> Model {
        zoo::vgg19()
    }

    fn layer<'m>(m: &'m Model, name: &str) -> &'m Layer {
        m.layers().iter().find(|l| l.name == name).unwrap()
    }

    #[test]
    fn figure1a_front_conv_saturates_at_16() {
        let cm = ComputeModel::k40c();
        let m = model();
        let front = layer(&m, "conv1_2"); // (64,64,224,224)
        let t16 = cm.layer_throughput(front, 16);
        let t64 = cm.layer_throughput(front, 64);
        let max = cm.layer_max_throughput(front);
        // At the threshold the layer is near-saturated (launch overhead shaves a
        // few percent off the pure-FLOP asymptote); quadrupling the batch buys
        // little more throughput — the Figure 1(a) plateau.
        assert!(t16 >= 0.88 * max, "t16 {t16} max {max}");
        assert!(t64 / t16 < 1.08);
    }

    #[test]
    fn figure1b_back_conv_needs_64() {
        let cm = ComputeModel::k40c();
        let m = model();
        let back = layer(&m, "conv5_2"); // (512,512,14,14)
        let max = cm.layer_max_throughput(back);
        assert!(
            cm.layer_throughput(back, 16) < 0.85 * max,
            "16 must not saturate"
        );
        assert!(cm.layer_throughput(back, 64) >= 0.88 * max, "64 saturates");
    }

    #[test]
    fn figure1c_fc_needs_2048() {
        let cm = ComputeModel::k40c();
        let m = model();
        let fc = layer(&m, "fc7"); // (4096,4096)
        let max = cm.layer_max_throughput(fc);
        assert!(
            cm.layer_throughput(fc, 64) < 0.4 * max,
            "64 far from saturating FC"
        );
        assert!(cm.layer_throughput(fc, 2048) >= 0.88 * max);
    }

    #[test]
    fn throughput_is_monotone_in_batch() {
        let cm = ComputeModel::k40c();
        let m = model();
        for name in ["conv1_1", "conv3_2", "conv5_4", "fc6"] {
            let l = layer(&m, name);
            let mut last = 0.0;
            for b in [1u64, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096] {
                let t = cm.layer_throughput(l, b);
                assert!(t >= last, "{name} throughput dipped at batch {b}");
                last = t;
            }
        }
    }

    #[test]
    fn time_scales_superlinearly_below_threshold_only() {
        let cm = ComputeModel::k40c();
        let m = model();
        let back = layer(&m, "conv5_2");
        // Below the threshold, doubling the batch costs less than double the time
        // (better utilisation); above it, time is ~linear in batch.
        let t16 = cm.layer_time(back, 16);
        let t32 = cm.layer_time(back, 32);
        assert!(t32 < 2.0 * t16 * 0.99);
        let t256 = cm.layer_time(back, 256);
        let t512 = cm.layer_time(back, 512);
        assert!((t512 / t256 - 2.0).abs() < 0.06);
    }

    #[test]
    fn k40c_vgg19_magnitude_sane() {
        // VGG19 on a K40c trains around 20–60 samples/s at saturation; the model
        // should land in that regime rather than being off by orders of magnitude.
        let cm = ComputeModel::k40c();
        let thr = cm.model_throughput(&model(), 64);
        assert!(
            (10.0..100.0).contains(&thr),
            "VGG19 throughput {thr} samples/s out of plausible range"
        );
    }

    #[test]
    fn range_time_adds_up() {
        let cm = ComputeModel::k40c();
        let m = model();
        let total = cm.model_time(&m, 32);
        let split: f64 = cm.range_time(&m, 0, 10, 32) + cm.range_time(&m, 10, m.len(), 32);
        assert!((total - split).abs() < 1e-9 * total);
    }

    #[test]
    fn zero_batch_is_free() {
        let cm = ComputeModel::k40c();
        let m = model();
        assert_eq!(cm.layer_time(layer(&m, "fc6"), 0), 0.0);
        assert_eq!(cm.model_throughput(&m, 0), 0.0);
    }

    #[test]
    fn sub_model_times_cover_model() {
        let cm = ComputeModel::k40c();
        let m = model();
        let p = fela_model::bin_partition(&m, &cm.profile, fela_model::PartitionOptions::default());
        let sum: f64 = p
            .sub_models()
            .iter()
            .map(|sm| cm.sub_model_time(&m, sm, 64))
            .sum();
        let total = cm.model_time(&m, 64);
        assert!((sum - total).abs() < 1e-9 * total);
    }

    #[test]
    fn chunked_time_kicks_in_above_memory_limit() {
        let cm = ComputeModel::k40c();
        let mm = crate::MemoryModel::k40c();
        let m = model();
        // Below the 32-sample limit: identical to the plain range time.
        let plain = cm.model_time(&m, 32);
        let chunked = cm.chunked_range_time(&mm, &m, 0, m.len(), 32);
        assert_eq!(plain, chunked);
        // Above it: 128 = 4 chunks of 32 — strictly slower than a hypothetical
        // unchunked 128 (which would saturate conv5/fc better).
        let c128 = cm.chunked_range_time(&mm, &m, 0, m.len(), 128);
        assert!((c128 - 4.0 * plain).abs() < 1e-9 * c128);
        assert!(c128 > cm.model_time(&m, 128));
        // Non-multiple remainder handled.
        let c40 = cm.chunked_range_time(&mm, &m, 0, m.len(), 40);
        assert!((c40 - (plain + cm.model_time(&m, 8))).abs() < 1e-9 * c40);
    }

    #[test]
    fn googlenet_much_faster_than_vgg19() {
        let cm = ComputeModel::k40c();
        let g = zoo::googlenet();
        // Per-sample cost difference shows up as time difference at equal batch.
        assert!(cm.model_time(&g, 64) < cm.model_time(&model(), 64) / 5.0);
    }
}
