//! GPU memory footprint model.
//!
//! Training a slice of a model with batch `b` must hold:
//!
//! * **parameter state** — weights + gradients + SGD momentum = 3 × parameter bytes;
//! * **activations** — every unit's output for the forward pass, the matching
//!   gradient buffers for the backward pass, and framework working copies
//!   (pre-activation outputs, cuDNN im2col workspace) = 3 × per-sample activation
//!   bytes × `b`;
//! * **framework overhead** — allocator slack, cuDNN workspaces, CUDA context;
//!   modelled as a constant reserve.
//!
//! Calibration target (§II-B footnote 3): full VGG19 on a 12 GB K40c fits at batch
//! 32 but not above. The memory model is what makes "just raise the data-parallel
//! batch size" impossible, forcing the multi-node regime the paper studies.

use fela_model::{Model, SubModel};
use serde::Serialize;

use crate::device::DeviceProfile;

/// Activation storage multiplier: forward outputs, backward gradient buffers and
/// framework working copies (see module docs).
pub const ACTIVATION_FACTOR: u64 = 3;

/// Memory-feasibility model for one device.
#[derive(Clone, Debug, Serialize)]
pub struct MemoryModel {
    /// Device whose memory bounds apply.
    pub device: DeviceProfile,
    /// Constant bytes reserved for CUDA context, cuDNN workspace and allocator
    /// slack (~1.5 GB on Kepler-era PyTorch).
    pub framework_reserve: u64,
}

impl MemoryModel {
    /// K40c memory model.
    pub fn k40c() -> Self {
        MemoryModel {
            device: DeviceProfile::k40c(),
            framework_reserve: 1_500_000_000,
        }
    }

    /// Bytes needed to train the unit range `[start, end)` at `batch`.
    pub fn range_bytes(&self, model: &Model, start: usize, end: usize, batch: u64) -> u64 {
        let param_bytes: u64 = model.param_bytes_in(start..end);
        let act_bytes_per_sample: u64 = model.layers()[start..end]
            .iter()
            .map(|l| l.activation_bytes())
            .sum();
        3 * param_bytes + ACTIVATION_FACTOR * act_bytes_per_sample * batch + self.framework_reserve
    }

    /// Bytes needed to train one sub-model at `batch`.
    pub fn sub_model_bytes(&self, model: &Model, sm: &SubModel, batch: u64) -> u64 {
        self.range_bytes(model, sm.unit_start, sm.unit_end, batch)
    }

    /// Bytes needed to train the full model at `batch`.
    pub fn model_bytes(&self, model: &Model, batch: u64) -> u64 {
        self.range_bytes(model, 0, model.len(), batch)
    }

    /// Whether the full model fits in device memory at `batch`.
    pub fn model_fits(&self, model: &Model, batch: u64) -> bool {
        self.model_bytes(model, batch) <= self.device.mem_bytes
    }

    /// Whether one sub-model fits at `batch`.
    pub fn sub_model_fits(&self, model: &Model, sm: &SubModel, batch: u64) -> bool {
        self.sub_model_bytes(model, sm, batch) <= self.device.mem_bytes
    }

    /// Largest power-of-two batch at which the full model fits (0 if even batch 1
    /// does not fit).
    pub fn max_pow2_batch(&self, model: &Model) -> u64 {
        self.max_pow2_batch_range(model, 0, model.len())
    }

    /// Largest power-of-two batch at which the unit range fits (0 if even batch 1
    /// does not fit).
    pub fn max_pow2_batch_range(&self, model: &Model, start: usize, end: usize) -> u64 {
        let mut best = 0;
        let mut b = 1u64;
        while b <= 1 << 20 {
            if self.range_bytes(model, start, end, b) <= self.device.mem_bytes {
                best = b;
            } else {
                break;
            }
            b <<= 1;
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fela_model::zoo;

    #[test]
    fn footnote3_vgg19_fits_at_32_not_64() {
        let mm = MemoryModel::k40c();
        let vgg = zoo::vgg19();
        assert!(mm.model_fits(&vgg, 32), "paper: batch 32 still fits");
        assert!(!mm.model_fits(&vgg, 64), "paper: batch >32 exceeds 12 GB");
        assert_eq!(mm.max_pow2_batch(&vgg), 32);
    }

    #[test]
    fn googlenet_at_32px_fits_large_batches() {
        let mm = MemoryModel::k40c();
        let g = zoo::googlenet();
        assert!(mm.model_fits(&g, 1024), "tiny inputs leave plenty of room");
    }

    #[test]
    fn sub_models_fit_at_their_thresholds() {
        // The premise of flexible parallelism: each sub-model *can* run at its own
        // threshold batch even though the whole model cannot.
        let mm = MemoryModel::k40c();
        let cm = crate::ComputeModel::k40c();
        let vgg = zoo::vgg19();
        let p =
            fela_model::bin_partition(&vgg, &cm.profile, fela_model::PartitionOptions::default());
        for sm in p.sub_models() {
            assert!(
                mm.sub_model_fits(&vgg, sm, sm.threshold_batch),
                "sub-model {} must fit at its threshold batch {}",
                sm.index,
                sm.threshold_batch
            );
        }
    }

    #[test]
    fn memory_grows_linearly_with_batch() {
        let mm = MemoryModel::k40c();
        let vgg = zoo::vgg19();
        let b8 = mm.model_bytes(&vgg, 8);
        let b16 = mm.model_bytes(&vgg, 16);
        let b24 = mm.model_bytes(&vgg, 24);
        assert_eq!(b24 - b16, b16 - b8, "activation term is linear in batch");
    }

    #[test]
    fn range_bytes_dominated_by_activations_for_conv() {
        let mm = MemoryModel::k40c();
        let vgg = zoo::vgg19();
        // Front conv slice at batch 64: activations dwarf parameters.
        let with_acts = mm.range_bytes(&vgg, 0, 5, 64);
        let params_only = 3 * vgg.param_bytes_in(0..5) + mm.framework_reserve;
        assert!(with_acts > 4 * params_only);
    }
}
