//! Local shim for `proptest`: the subset of the API this workspace's property
//! tests use — `proptest!`, `prop_assert!`, `prop_assert_eq!`, `prop_oneof!`,
//! `Just`, `any`, `prop_map`, numeric range strategies, tuple strategies and
//! `prop::collection::vec`.
//!
//! Case generation is fully deterministic: the RNG is seeded from the test
//! name, so a failure always reproduces. There is no shrinking — failures
//! report the raw failing inputs via the panic message.

pub mod collection;
pub mod prelude;
pub mod strategy;
pub mod test_runner;

/// Defines property tests: each function runs [`test_runner::CASES`] sampled
/// cases of its argument strategies.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut __rng =
                    $crate::test_runner::TestRng::deterministic(::core::stringify!($name));
                for __case in 0..$crate::test_runner::CASES {
                    let _ = __case;
                    $(let $arg = $crate::strategy::Strategy::sample(&$strat, &mut __rng);)+
                    $body
                }
            }
        )*
    };
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { ::core::assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { ::core::assert!($cond, $($fmt)+) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { ::core::assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { ::core::assert_eq!($a, $b, $($fmt)+) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { ::core::assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { ::core::assert_ne!($a, $b, $($fmt)+) };
}

/// Picks uniformly among the given strategies (all of the same value type).
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::union(::std::vec![$($crate::strategy::boxed($s)),+])
    };
}
