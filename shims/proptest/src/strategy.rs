//! Value-generation strategies.

use std::ops::Range;

use crate::test_runner::TestRng;

/// A generator of values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;
    /// Samples one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps sampled values through `f` (the `prop_map` combinator).
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// The [`Strategy::prop_map`] adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Types with a full-domain default strategy (`any::<T>()`).
pub trait Arbitrary {
    /// Samples an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_uint!(u8, u16, u32, u64, usize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// The full-domain strategy for an [`Arbitrary`] type.
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<T>()` — samples the whole domain of `T` (uniform bits).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize);

macro_rules! signed_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                (self.start as i64).wrapping_add(rng.below(span) as i64) as $t
            }
        }
    )*};
}
signed_range_strategy!(i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn sample(&self, rng: &mut TestRng) -> f32 {
        self.start + (rng.next_f64() as f32) * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Strategy),+> Strategy for ($($t,)+) {
            type Value = ($($t::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.sample(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G)
}

/// Uniform choice among boxed strategies (built by [`crate::prop_oneof!`]).
pub struct Union<T> {
    options: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        assert!(!self.options.is_empty(), "empty prop_oneof!");
        let idx = rng.below(self.options.len() as u64) as usize;
        self.options[idx].sample(rng)
    }
}

/// Boxes a strategy (helper for [`crate::prop_oneof!`]).
pub fn boxed<S: Strategy + 'static>(s: S) -> Box<dyn Strategy<Value = S::Value>> {
    Box::new(s)
}

/// Builds a [`Union`] from boxed strategies.
pub fn union<T>(options: Vec<Box<dyn Strategy<Value = T>>>) -> Union<T> {
    Union { options }
}
