//! Deterministic RNG for property-test case generation.

/// Cases generated per property test.
pub const CASES: u32 = 64;

/// A SplitMix64 stream, seeded from the test name so every run of a given
/// test sees the same cases.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the generator from a test name (FNV-1a hash).
    pub fn deterministic(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: h }
    }

    /// Next 64 random bits (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform float in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)`; `bound` must be positive.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Multiply-shift bounded sampling; bias is irrelevant for tests.
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }
}
