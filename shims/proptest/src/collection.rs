//! Collection strategies (`prop::collection::vec`).

use std::ops::Range;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Strategy producing `Vec`s with lengths drawn from a range.
pub struct VecStrategy<S> {
    elem: S,
    len: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        let len = self.len.clone().sample(rng);
        (0..len).map(|_| self.elem.sample(rng)).collect()
    }
}

/// Generates `Vec`s of `elem`-generated values with a length in `len`.
pub fn vec<S: Strategy>(elem: S, len: Range<usize>) -> VecStrategy<S> {
    VecStrategy { elem, len }
}
