//! Local shim for `criterion`: just enough API to compile and run the
//! workspace's micro-benchmarks (`Criterion::bench_function`, `Bencher::iter`,
//! `Bencher::iter_batched`, `criterion_group!`, `criterion_main!`).
//!
//! Each benchmark is timed with a fixed warm-up and a fixed measurement pass;
//! the mean per-iteration time is printed. No statistics, plots or baselines.

use std::time::{Duration, Instant};

/// Batch sizing hint; the shim ignores the distinction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Times closures handed to [`Criterion::bench_function`].
pub struct Bencher {
    total: Duration,
    iters: u64,
}

const WARMUP_ITERS: u64 = 3;
const MEASURE_ITERS: u64 = 20;

impl Bencher {
    /// Times `routine` over a fixed number of iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..WARMUP_ITERS {
            std::hint::black_box(routine());
        }
        let start = Instant::now();
        for _ in 0..MEASURE_ITERS {
            std::hint::black_box(routine());
        }
        self.total = start.elapsed();
        self.iters = MEASURE_ITERS;
    }

    /// Times `routine` with a fresh `setup` input per iteration; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..WARMUP_ITERS {
            let input = setup();
            std::hint::black_box(routine(input));
        }
        let mut total = Duration::ZERO;
        for _ in 0..MEASURE_ITERS {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            total += start.elapsed();
        }
        self.total = total;
        self.iters = MEASURE_ITERS;
    }
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Runs and reports one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            total: Duration::ZERO,
            iters: 0,
        };
        f(&mut b);
        let per_iter = if b.iters > 0 {
            b.total.as_nanos() as f64 / b.iters as f64
        } else {
            0.0
        };
        println!("bench {id:<45} {:>12.0} ns/iter", per_iter);
        self
    }
}

/// Re-export so `use criterion::black_box` also works.
pub use std::hint::black_box;

/// Groups benchmark functions into one runner function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Emits `main` invoking each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
