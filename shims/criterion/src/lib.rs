//! Local shim for `criterion`: just enough API to compile and run the
//! workspace's micro-benchmarks (`Criterion::bench_function`, `Bencher::iter`,
//! `Bencher::iter_batched`, `criterion_group!`, `criterion_main!`).
//!
//! Each benchmark is timed with a fixed warm-up and a fixed measurement pass;
//! the mean per-iteration time is printed. No statistics, plots or baselines.
//!
//! Two environment variables extend the shim for the perf-trajectory tooling:
//!
//! * `FELA_BENCH_QUICK=1` — smoke mode: one warm-up and three measured
//!   iterations per benchmark, for CI jobs that record the trajectory without
//!   paying for stable numbers.
//! * `FELA_BENCH_DIR=<dir>` — when set, each benchmark group writes its results
//!   to `<dir>/BENCH_<group>.json` (created if missing) in addition to stdout,
//!   so runs leave machine-readable artifacts.

use std::time::{Duration, Instant};

/// Batch sizing hint; the shim ignores the distinction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Times closures handed to [`Criterion::bench_function`].
pub struct Bencher {
    total: Duration,
    iters: u64,
}

const WARMUP_ITERS: u64 = 3;
const MEASURE_ITERS: u64 = 20;
const QUICK_WARMUP_ITERS: u64 = 1;
const QUICK_MEASURE_ITERS: u64 = 3;

fn quick_mode() -> bool {
    std::env::var("FELA_BENCH_QUICK").is_ok_and(|v| v != "0" && !v.is_empty())
}

fn iter_plan() -> (u64, u64) {
    if quick_mode() {
        (QUICK_WARMUP_ITERS, QUICK_MEASURE_ITERS)
    } else {
        (WARMUP_ITERS, MEASURE_ITERS)
    }
}

impl Bencher {
    /// Times `routine` over a fixed number of iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let (warmup, measure) = iter_plan();
        for _ in 0..warmup {
            std::hint::black_box(routine());
        }
        let start = Instant::now();
        for _ in 0..measure {
            std::hint::black_box(routine());
        }
        self.total = start.elapsed();
        self.iters = measure;
    }

    /// Times `routine` with a fresh `setup` input per iteration; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let (warmup, measure) = iter_plan();
        for _ in 0..warmup {
            let input = setup();
            std::hint::black_box(routine(input));
        }
        let mut total = Duration::ZERO;
        for _ in 0..measure {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            total += start.elapsed();
        }
        self.total = total;
        self.iters = measure;
    }
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {
    group: Option<String>,
    results: Vec<(String, f64)>,
}

impl Criterion {
    /// A `Criterion` that records results under a group name; on drop the group
    /// writes `BENCH_<group>.json` when `FELA_BENCH_DIR` is set.
    pub fn with_group(name: &str) -> Self {
        Criterion {
            group: Some(name.to_owned()),
            results: Vec::new(),
        }
    }

    /// Runs and reports one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            total: Duration::ZERO,
            iters: 0,
        };
        f(&mut b);
        let per_iter = if b.iters > 0 {
            b.total.as_nanos() as f64 / b.iters as f64
        } else {
            0.0
        };
        println!("bench {id:<45} {:>12.0} ns/iter", per_iter);
        self.results.push((id.to_owned(), per_iter));
        self
    }
}

impl Drop for Criterion {
    fn drop(&mut self) {
        let (Some(group), Ok(dir)) = (self.group.as_deref(), std::env::var("FELA_BENCH_DIR"))
        else {
            return;
        };
        if dir.is_empty() {
            return;
        }
        if let Err(e) = write_group_json(&dir, group, &self.results) {
            eprintln!("warning: cannot write BENCH_{group}.json: {e}");
        }
    }
}

/// Minimal JSON escaping for benchmark ids (ASCII control chars, quotes,
/// backslashes — ids are plain identifiers in practice).
fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn write_group_json(dir: &str, group: &str, results: &[(String, f64)]) -> std::io::Result<()> {
    std::fs::create_dir_all(dir)?;
    let mut body = String::new();
    body.push_str("{\n");
    body.push_str(&format!("  \"group\": \"{}\",\n", escape_json(group)));
    body.push_str(&format!("  \"quick\": {},\n", quick_mode()));
    body.push_str("  \"benches\": [\n");
    for (i, (id, ns)) in results.iter().enumerate() {
        let comma = if i + 1 < results.len() { "," } else { "" };
        body.push_str(&format!(
            "    {{ \"id\": \"{}\", \"ns_per_iter\": {:.1} }}{comma}\n",
            escape_json(id),
            ns
        ));
    }
    body.push_str("  ]\n}\n");
    let path = std::path::Path::new(dir).join(format!("BENCH_{group}.json"));
    std::fs::write(path, body)
}

/// Re-export so `use criterion::black_box` also works.
pub use std::hint::black_box;

/// Groups benchmark functions into one runner function. The group name becomes
/// the `BENCH_<group>.json` artifact name when `FELA_BENCH_DIR` is set.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::with_group(stringify!($group));
            $($target(&mut c);)+
        }
    };
}

/// Emits `main` invoking each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
