//! Local shim for `serde_json`: `to_string`, `to_string_pretty`, `from_str`
//! over the shim serde's JSON value model. Output is byte-deterministic —
//! struct fields print in declaration order and map keys sorted — which the
//! experiment harness relies on for its JSONL determinism guarantees.

use std::fmt;

use serde::de::Deserialize;
use serde::ser::Serialize;
pub use serde::value::Value;

/// A serialization or deserialization failure.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for Error {}

/// Serializes `value` as a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_compact(&value.to_value(), &mut out);
    Ok(out)
}

/// Serializes `value` as pretty-printed JSON (2-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_pretty(&value.to_value(), 0, &mut out);
    Ok(out)
}

/// Converts a `Serialize` type into a [`Value`].
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value, Error> {
    Ok(value.to_value())
}

/// Parses a JSON string into any `Deserialize` type.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse_value(s)?;
    T::from_value(&value).map_err(|e| Error::new(e.to_string()))
}

// -------------------------------------------------------------- formatting --

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_f64(v: f64, out: &mut String) {
    if !v.is_finite() {
        // Real serde_json emits null for non-finite floats.
        out.push_str("null");
    } else if v.fract() == 0.0 && v.abs() < 1e16 {
        out.push_str(&format!("{v:.1}"));
    } else {
        out.push_str(&format!("{v}"));
    }
}

fn write_compact(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(n) => write_f64(*n, out),
        Value::Str(s) => write_escaped(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_compact(item, out);
            }
            out.push(']');
        }
        Value::Object(pairs) => {
            out.push('{');
            for (i, (k, val)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(k, out);
                out.push(':');
                write_compact(val, out);
            }
            out.push('}');
        }
    }
}

fn write_pretty(v: &Value, indent: usize, out: &mut String) {
    const STEP: usize = 2;
    match v {
        Value::Array(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&" ".repeat(indent + STEP));
                write_pretty(item, indent + STEP, out);
            }
            out.push('\n');
            out.push_str(&" ".repeat(indent));
            out.push(']');
        }
        Value::Object(pairs) if !pairs.is_empty() => {
            out.push_str("{\n");
            for (i, (k, val)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&" ".repeat(indent + STEP));
                write_escaped(k, out);
                out.push_str(": ");
                write_pretty(val, indent + STEP, out);
            }
            out.push('\n');
            out.push_str(&" ".repeat(indent));
            out.push('}');
        }
        other => write_compact(other, out),
    }
}

// ----------------------------------------------------------------- parsing --

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected '{}' at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(Error::new(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            other => Err(Error::new(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected ',' or ']' at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            pairs.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected ',' or '}}' at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path over plain bytes.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::new("invalid utf-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0C}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::new("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::new("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not produced by our writer;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        }
                        other => {
                            return Err(Error::new(format!("unknown escape '\\{}'", other as char)))
                        }
                    }
                }
                _ => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if !is_float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::I64(n));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::new(format!("invalid number '{text}'")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_value() {
        let v = Value::Object(vec![
            ("a".into(), Value::U64(3)),
            ("b".into(), Value::Array(vec![Value::F64(1.5), Value::Null])),
            ("s".into(), Value::Str("x\n\"y\"".into())),
            ("neg".into(), Value::I64(-7)),
        ]);
        let compact = {
            let mut s = String::new();
            write_compact(&v, &mut s);
            s
        };
        assert_eq!(compact, r#"{"a":3,"b":[1.5,null],"s":"x\n\"y\"","neg":-7}"#);
        assert_eq!(parse_value(&compact).unwrap(), v);
    }

    #[test]
    fn pretty_matches_serde_json_layout() {
        let v = Value::Object(vec![("k".into(), Value::Array(vec![Value::U64(1)]))]);
        let mut s = String::new();
        write_pretty(&v, 0, &mut s);
        assert_eq!(s, "{\n  \"k\": [\n    1\n  ]\n}");
    }

    #[test]
    fn floats_keep_their_type() {
        let mut s = String::new();
        write_f64(10.0, &mut s);
        assert_eq!(s, "10.0");
        assert_eq!(parse_value("10.0").unwrap(), Value::F64(10.0));
        assert_eq!(parse_value("10").unwrap(), Value::U64(10));
    }
}
