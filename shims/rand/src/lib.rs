//! Local shim for the `rand` crate: only the `RngCore` trait surface the
//! workspace uses. See `shims/README.md`.

use std::fmt;

/// Error type returned by fallible RNG operations.
#[derive(Debug, Clone)]
pub struct Error;

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rng error")
    }
}

impl std::error::Error for Error {}

/// The core of a random number generator (the `rand` 0.8 trait surface).
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
    /// Fallible variant of [`RngCore::fill_bytes`].
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error>;
}
