//! Local shim for `serde`: the `Serialize`/`Deserialize` traits implemented
//! over a self-contained JSON value model (see `shims/README.md`).
//!
//! Unlike real serde's visitor architecture, serialization here goes through
//! [`value::Value`], which is all `serde_json`-style formatting needs. The
//! `derive` feature provides `#[derive(Serialize, Deserialize)]` for plain
//! structs and enums via the `serde_derive` shim.

pub mod de;
pub mod ser;
pub mod value;

pub use de::Deserialize;
pub use ser::Serialize;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
