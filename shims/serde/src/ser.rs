//! The `Serialize` trait and impls for std types.

use std::collections::{BTreeMap, HashMap};

use crate::value::Value;

/// A type that can be converted into the JSON data model.
pub trait Serialize {
    /// Converts `self` into a [`Value`].
    fn to_value(&self) -> Value;
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for &mut T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

macro_rules! ser_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
    )*};
}
ser_uint!(u8, u16, u32, u64, usize);

macro_rules! ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = *self as i64;
                if v >= 0 {
                    Value::U64(v as u64)
                } else {
                    Value::I64(v)
                }
            }
        }
    )*};
}
ser_int!(i8, i16, i32, i64, isize);

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl Serialize for () {
    fn to_value(&self) -> Value {
        Value::Null
    }
}

macro_rules! ser_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$n.to_value()),+])
            }
        }
    )*};
}
ser_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_value(&self) -> Value {
        // Sort keys so serialized output is deterministic.
        let mut pairs: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.to_value()))
            .collect();
        pairs.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(pairs)
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}
