//! The `Deserialize` trait and impls for std types.

use std::collections::{BTreeMap, HashMap};
use std::fmt;

use crate::value::Value;

/// A deserialization failure with a human-readable message.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Creates an error from a message.
    pub fn custom(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for Error {}

/// A type that can be reconstructed from the JSON data model.
pub trait Deserialize: Sized {
    /// Builds `Self` from a [`Value`].
    fn from_value(v: &Value) -> Result<Self, Error>;
}

/// Looks up `key` in object entries and deserializes it. A missing key is
/// treated as `null` (so `Option` fields tolerate omission), but the error of
/// the `null` conversion reports the missing key.
pub fn field<T: Deserialize>(obj: &[(String, Value)], key: &str) -> Result<T, Error> {
    match obj.iter().find(|(k, _)| k == key) {
        Some((_, v)) => T::from_value(v).map_err(|e| Error::custom(format!("field `{key}`: {e}"))),
        None => {
            T::from_value(&Value::Null).map_err(|_| Error::custom(format!("missing field `{key}`")))
        }
    }
}

/// Like [`field`], but a missing key yields `T::default()` — the behaviour of
/// `#[serde(default)]`. A key that is *present* still deserializes strictly.
pub fn field_or_default<T: Deserialize + Default>(
    obj: &[(String, Value)],
    key: &str,
) -> Result<T, Error> {
    match obj.iter().find(|(k, _)| k == key) {
        Some((_, v)) => T::from_value(v).map_err(|e| Error::custom(format!("field `{key}`: {e}"))),
        None => Ok(T::default()),
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::custom(format!("expected bool, got {other:?}"))),
        }
    }
}

fn int_from(v: &Value) -> Result<i128, Error> {
    match v {
        Value::U64(n) => Ok(*n as i128),
        Value::I64(n) => Ok(*n as i128),
        Value::F64(n) if n.fract() == 0.0 && n.abs() < 9.3e18 => Ok(*n as i128),
        other => Err(Error::custom(format!("expected integer, got {other:?}"))),
    }
}

macro_rules! de_int {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = int_from(v)?;
                <$t>::try_from(n)
                    .map_err(|_| Error::custom(format!("{n} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
de_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::F64(n) => Ok(*n),
            Value::U64(n) => Ok(*n as f64),
            Value::I64(n) => Ok(*n as f64),
            // Non-finite floats serialize as null; round-trip them as NaN.
            Value::Null => Ok(f64::NAN),
            other => Err(Error::custom(format!("expected number, got {other:?}"))),
        }
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|n| n as f32)
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::custom(format!("expected string, got {other:?}"))),
        }
    }
}

impl Deserialize for &'static str {
    fn from_value(v: &Value) -> Result<Self, Error> {
        // Mirrors serde's borrowed-str deserialization. JSON input owns its
        // buffers, so a 'static str can only be produced by leaking; the
        // workspace only deserializes &'static str in small static tables
        // (e.g. model-zoo metadata), so the leak is bounded and acceptable.
        match v {
            Value::Str(s) => Ok(Box::leak(s.clone().into_boxed_str())),
            other => Err(Error::custom(format!("expected string, got {other:?}"))),
        }
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let s = String::from_value(v)?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::custom("expected single-character string")),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items = v
            .as_array()
            .ok_or_else(|| Error::custom(format!("expected array, got {v:?}")))?;
        items.iter().map(T::from_value).collect()
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items = Vec::<T>::from_value(v)?;
        let len = items.len();
        items
            .try_into()
            .map_err(|_| Error::custom(format!("expected array of length {N}, got {len}")))
    }
}

impl Deserialize for () {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(()),
            other => Err(Error::custom(format!("expected null, got {other:?}"))),
        }
    }
}

macro_rules! de_tuple {
    ($(($len:literal; $($n:tt $t:ident),+))*) => {$(
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let items = v
                    .as_array()
                    .ok_or_else(|| Error::custom("expected array for tuple"))?;
                if items.len() != $len {
                    return Err(Error::custom(format!(
                        "expected array of length {}, got {}", $len, items.len()
                    )));
                }
                Ok(($($t::from_value(&items[$n])?,)+))
            }
        }
    )*};
}
de_tuple! {
    (1; 0 A)
    (2; 0 A, 1 B)
    (3; 0 A, 1 B, 2 C)
    (4; 0 A, 1 B, 2 C, 3 D)
    (5; 0 A, 1 B, 2 C, 3 D, 4 E)
    (6; 0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let pairs = v
            .as_object()
            .ok_or_else(|| Error::custom(format!("expected object, got {v:?}")))?;
        pairs
            .iter()
            .map(|(k, val)| Ok((k.clone(), V::from_value(val)?)))
            .collect()
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let pairs = v
            .as_object()
            .ok_or_else(|| Error::custom(format!("expected object, got {v:?}")))?;
        pairs
            .iter()
            .map(|(k, val)| Ok((k.clone(), V::from_value(val)?)))
            .collect()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}
