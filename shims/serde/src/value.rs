//! The JSON data model shared by serialization and deserialization.

/// A JSON-like value tree.
///
/// Objects preserve insertion order (matching real serde_json's streaming
/// serialization of structs), so serialized output is byte-deterministic.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Non-negative integer.
    U64(u64),
    /// Negative integer.
    I64(i64),
    /// Floating point number.
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Object: ordered key/value pairs.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Returns the object entries if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// Returns the elements if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Returns the string if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Looks up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()
            .and_then(|pairs| pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v))
    }

    /// True if this is `Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}
