//! Local shim for `serde_derive`: `#[derive(Serialize)]` and
//! `#[derive(Deserialize)]` for plain (non-generic) structs and enums.
//!
//! The input token stream is parsed by hand — no `syn`/`quote` — which is
//! enough because this workspace only uses a small slice of serde. Supported
//! shapes, matching real serde's JSON representation:
//!
//! * named-field structs → object;
//! * newtype structs → the inner value;
//! * tuple structs (n ≥ 2) → array;
//! * unit structs → null;
//! * enums: unit variants → `"Variant"`, newtype variants →
//!   `{"Variant": value}`, tuple variants → `{"Variant": [..]}`,
//!   struct variants → `{"Variant": {..}}`.
//!
//! Two field attributes are honoured, with real serde's semantics:
//!
//! * `#[serde(skip_serializing_if = "path")]` — the field is omitted from the
//!   serialized object when `path(&field)` is true;
//! * `#[serde(default)]` — a missing key deserializes to `Default::default()`.
//!
//! Anything else inside `#[serde(...)]` is a compile error (via a panic in the
//! macro) rather than a silent difference from real serde.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// One named field plus its honoured `#[serde(...)]` options.
#[derive(Debug)]
struct Field {
    name: String,
    /// `skip_serializing_if` predicate path, if any.
    skip_if: Option<String>,
    /// Whether `#[serde(default)]` was present.
    default: bool,
}

#[derive(Debug)]
enum Fields {
    Named(Vec<Field>),
    Tuple(usize),
    Unit,
}

#[derive(Debug)]
enum Data {
    Struct(Fields),
    Enum(Vec<(String, Fields)>),
}

/// Derives the shim `serde::Serialize` trait.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let (name, data) = parse_item(input);
    let body = match &data {
        Data::Struct(fields) => struct_to_value(fields),
        Data::Enum(variants) => enum_to_value(&name, variants),
    };
    let out = format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::value::Value {{ {body} }}\n\
         }}"
    );
    out.parse()
        .expect("serde_derive: generated Serialize impl must parse")
}

/// Derives the shim `serde::Deserialize` trait.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let (name, data) = parse_item(input);
    let body = match &data {
        Data::Struct(fields) => struct_from_value(&name, fields),
        Data::Enum(variants) => enum_from_value(&name, variants),
    };
    let out = format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(__v: &::serde::value::Value)\n\
                 -> ::std::result::Result<Self, ::serde::de::Error> {{ {body} }}\n\
         }}"
    );
    out.parse()
        .expect("serde_derive: generated Deserialize impl must parse")
}

// ---------------------------------------------------------------- parsing --

fn parse_item(input: TokenStream) -> (String, Data) {
    let mut iter = input.into_iter().peekable();
    // Skip attributes (incl. doc comments) and visibility until struct/enum.
    let kind = loop {
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                iter.next(); // the [...] group
            }
            Some(TokenTree::Ident(id)) => {
                let s = id.to_string();
                if s == "struct" || s == "enum" {
                    break s;
                }
                // `pub` — possibly followed by a `(crate)`-style group.
                if s == "pub" {
                    if let Some(TokenTree::Group(g)) = iter.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            iter.next();
                        }
                    }
                }
            }
            Some(_) => {}
            None => panic!("serde_derive: no struct/enum in derive input"),
        }
    };
    let name = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected type name, got {other:?}"),
    };
    // Generic parameters are not supported; skip a balanced <...> if present
    // so the error (if any) surfaces in the generated impl instead.
    if let Some(TokenTree::Punct(p)) = iter.peek() {
        if p.as_char() == '<' {
            let mut depth = 0i32;
            for tt in iter.by_ref() {
                if let TokenTree::Punct(p) = &tt {
                    match p.as_char() {
                        '<' => depth += 1,
                        '>' => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                }
            }
        }
    }
    let data = if kind == "struct" {
        match iter.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Data::Struct(Fields::Named(parse_named_fields(g.stream())))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Data::Struct(Fields::Tuple(count_tuple_fields(g.stream())))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Data::Struct(Fields::Unit),
            other => panic!("serde_derive: unexpected struct body {other:?}"),
        }
    } else {
        match iter.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Data::Enum(parse_variants(g.stream()))
            }
            other => panic!("serde_derive: unexpected enum body {other:?}"),
        }
    };
    (name, data)
}

fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let mut fields = Vec::new();
    let mut iter = stream.into_iter().peekable();
    loop {
        // Walk attributes (capturing `#[serde(...)]` options) and visibility
        // until the field name.
        let mut skip_if = None;
        let mut default = false;
        let name = loop {
            match iter.next() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    if let Some(TokenTree::Group(g)) = iter.next() {
                        if let Some(opts) = serde_attr_options(g.stream()) {
                            apply_serde_options(opts, &mut skip_if, &mut default);
                        }
                    }
                }
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    if let Some(TokenTree::Group(g)) = iter.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            iter.next();
                        }
                    }
                }
                Some(TokenTree::Ident(id)) => break Some(id.to_string()),
                Some(other) => panic!("serde_derive: unexpected token in fields: {other:?}"),
                None => break None,
            }
        };
        let Some(name) = name else { break };
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde_derive: expected ':' after field `{name}`, got {other:?}"),
        }
        skip_type_until_comma(&mut iter);
        fields.push(Field {
            name,
            skip_if,
            default,
        });
    }
    fields
}

/// If an attribute body (the stream inside `#[...]`) is `serde(...)`, returns
/// the option stream inside the parentheses; any other attribute yields `None`.
fn serde_attr_options(stream: TokenStream) -> Option<TokenStream> {
    let mut iter = stream.into_iter();
    match iter.next() {
        Some(TokenTree::Ident(id)) if id.to_string() == "serde" => {}
        _ => return None,
    }
    match iter.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => Some(g.stream()),
        other => panic!("serde_derive: malformed #[serde ...] attribute: {other:?}"),
    }
}

/// Parses a `serde(...)` option list. Only `default` and
/// `skip_serializing_if = "path"` are understood; anything else is a hard
/// error so the shim never silently diverges from real serde.
fn apply_serde_options(opts: TokenStream, skip_if: &mut Option<String>, default: &mut bool) {
    let mut iter = opts.into_iter().peekable();
    while let Some(tt) = iter.next() {
        match &tt {
            TokenTree::Ident(id) if id.to_string() == "default" => *default = true,
            TokenTree::Ident(id) if id.to_string() == "skip_serializing_if" => {
                match iter.next() {
                    Some(TokenTree::Punct(p)) if p.as_char() == '=' => {}
                    other => panic!(
                        "serde_derive: expected `=` after skip_serializing_if, got {other:?}"
                    ),
                }
                match iter.next() {
                    Some(TokenTree::Literal(lit)) => {
                        let s = lit.to_string();
                        let path = s
                            .strip_prefix('"')
                            .and_then(|s| s.strip_suffix('"'))
                            .unwrap_or_else(|| {
                                panic!("serde_derive: skip_serializing_if expects a string literal, got {s}")
                            });
                        *skip_if = Some(path.to_owned());
                    }
                    other => panic!(
                        "serde_derive: skip_serializing_if expects a string literal, got {other:?}"
                    ),
                }
            }
            TokenTree::Punct(p) if p.as_char() == ',' => {}
            other => panic!("serde_derive: unsupported serde option: {other:?}"),
        }
    }
}

/// Consumes a type, stopping after a top-level `,` or at end of stream.
/// Angle-bracket depth is tracked through raw puncts; `->` is handled so the
/// `>` of a return arrow is not miscounted.
fn skip_type_until_comma(iter: &mut std::iter::Peekable<proc_macro::token_stream::IntoIter>) {
    let mut depth = 0i32;
    let mut prev_dash = false;
    for tt in iter.by_ref() {
        match &tt {
            TokenTree::Punct(p) => {
                let c = p.as_char();
                match c {
                    '<' => depth += 1,
                    '>' if !prev_dash => depth -= 1,
                    ',' if depth == 0 => return,
                    _ => {}
                }
                prev_dash = c == '-';
            }
            _ => prev_dash = false,
        }
    }
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut iter = stream.into_iter().peekable();
    let mut count = 0usize;
    let mut saw_tokens = false;
    let mut depth = 0i32;
    let mut prev_dash = false;
    for tt in iter.by_ref() {
        match &tt {
            TokenTree::Punct(p) => {
                let c = p.as_char();
                match c {
                    '<' => depth += 1,
                    '>' if !prev_dash => depth -= 1,
                    ',' if depth == 0 => {
                        count += 1;
                        saw_tokens = false;
                        prev_dash = false;
                        continue;
                    }
                    _ => {}
                }
                prev_dash = c == '-';
                saw_tokens = true;
            }
            _ => {
                prev_dash = false;
                saw_tokens = true;
            }
        }
    }
    if saw_tokens {
        count += 1;
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<(String, Fields)> {
    let mut variants = Vec::new();
    let mut iter = stream.into_iter().peekable();
    loop {
        // Skip attributes, find the variant name.
        let name = loop {
            match iter.next() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    iter.next();
                }
                Some(TokenTree::Ident(id)) => break Some(id.to_string()),
                Some(other) => panic!("serde_derive: unexpected token in variants: {other:?}"),
                None => break None,
            }
        };
        let Some(name) = name else { break };
        let fields = match iter.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let g = g.stream();
                iter.next();
                Fields::Named(parse_named_fields(g))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let g = g.stream();
                iter.next();
                Fields::Tuple(count_tuple_fields(g))
            }
            _ => Fields::Unit,
        };
        // Consume any discriminant (`= expr`) and the trailing comma.
        skip_type_until_comma(&mut iter);
        variants.push((name, fields));
    }
    variants
}

// ----------------------------------------------------------- serialization --

/// Emits the serialization expression for one named field into an `__entries`
/// vector: unconditional for ordinary fields, guarded by the
/// `skip_serializing_if` predicate otherwise. `expr` is how the field value is
/// reached (`&self.name` for structs, the bound name in enum match arms).
fn named_entry_stmt(f: &Field, expr: &str) -> String {
    let push = format!(
        "__entries.push((::std::string::String::from(\"{name}\"), \
         ::serde::Serialize::to_value({expr})));",
        name = f.name
    );
    match &f.skip_if {
        Some(path) => format!("if !{path}({expr}) {{ {push} }}"),
        None => push,
    }
}

/// Wraps per-field entry statements into an object-building block.
fn named_entries_block(stmts: &[String]) -> String {
    format!(
        "{{ let mut __entries: ::std::vec::Vec<(::std::string::String, \
         ::serde::value::Value)> = ::std::vec::Vec::new();\n\
         {}\n\
         ::serde::value::Value::Object(__entries) }}",
        stmts.join("\n")
    )
}

fn struct_to_value(fields: &Fields) -> String {
    match fields {
        Fields::Named(fs) => {
            let stmts: Vec<String> = fs
                .iter()
                .map(|f| named_entry_stmt(f, &format!("&self.{}", f.name)))
                .collect();
            named_entries_block(&stmts)
        }
        Fields::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_owned(),
        Fields::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!(
                "::serde::value::Value::Array(::std::vec![{}])",
                items.join(", ")
            )
        }
        Fields::Unit => "::serde::value::Value::Null".to_owned(),
    }
}

fn enum_to_value(name: &str, variants: &[(String, Fields)]) -> String {
    let arms: Vec<String> = variants
        .iter()
        .map(|(v, fields)| match fields {
            Fields::Unit => format!(
                "{name}::{v} => \
                 ::serde::value::Value::Str(::std::string::String::from(\"{v}\")),"
            ),
            Fields::Named(fs) => {
                let pat = fs
                    .iter()
                    .map(|f| f.name.as_str())
                    .collect::<Vec<_>>()
                    .join(", ");
                let stmts: Vec<String> = fs.iter().map(|f| named_entry_stmt(f, &f.name)).collect();
                format!(
                    "{name}::{v} {{ {pat} }} => ::serde::value::Value::Object(::std::vec![\
                     (::std::string::String::from(\"{v}\"), {})]),",
                    named_entries_block(&stmts)
                )
            }
            Fields::Tuple(1) => format!(
                "{name}::{v}(__f0) => ::serde::value::Value::Object(::std::vec![\
                 (::std::string::String::from(\"{v}\"), \
                  ::serde::Serialize::to_value(__f0))]),"
            ),
            Fields::Tuple(n) => {
                let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                let items: Vec<String> = binds
                    .iter()
                    .map(|b| format!("::serde::Serialize::to_value({b})"))
                    .collect();
                format!(
                    "{name}::{v}({}) => ::serde::value::Value::Object(::std::vec![\
                     (::std::string::String::from(\"{v}\"), \
                      ::serde::value::Value::Array(::std::vec![{}]))]),",
                    binds.join(", "),
                    items.join(", ")
                )
            }
        })
        .collect();
    format!("match self {{ {} }}", arms.join("\n"))
}

// --------------------------------------------------------- deserialization --

fn named_fields_ctor(path: &str, fs: &[Field], obj_expr: &str) -> String {
    let inits: Vec<String> = fs
        .iter()
        .map(|f| {
            // `#[serde(default)]` tolerates a missing key; plain fields don't.
            let helper = if f.default {
                "field_or_default"
            } else {
                "field"
            };
            format!(
                "{name}: ::serde::de::{helper}({obj_expr}, \"{name}\")?,",
                name = f.name
            )
        })
        .collect();
    format!("{path} {{ {} }}", inits.join(" "))
}

fn struct_from_value(name: &str, fields: &Fields) -> String {
    match fields {
        Fields::Named(fs) => {
            let ctor = named_fields_ctor(name, fs, "__obj");
            format!(
                "let __obj = __v.as_object().ok_or_else(|| \
                 ::serde::de::Error::custom(\"expected object for {name}\"))?;\n\
                 ::std::result::Result::Ok({ctor})"
            )
        }
        Fields::Tuple(1) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(__v)?))")
        }
        Fields::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&__items[{i}])?"))
                .collect();
            format!(
                "let __items = __v.as_array().ok_or_else(|| \
                 ::serde::de::Error::custom(\"expected array for {name}\"))?;\n\
                 if __items.len() != {n} {{ return ::std::result::Result::Err(\
                 ::serde::de::Error::custom(\"wrong tuple length for {name}\")); }}\n\
                 ::std::result::Result::Ok({name}({}))",
                items.join(", ")
            )
        }
        Fields::Unit => format!(
            "if __v.is_null() {{ ::std::result::Result::Ok({name}) }} else {{ \
             ::std::result::Result::Err(::serde::de::Error::custom(\
             \"expected null for unit struct {name}\")) }}"
        ),
    }
}

fn enum_from_value(name: &str, variants: &[(String, Fields)]) -> String {
    let unit_arms: Vec<String> = variants
        .iter()
        .filter(|(_, f)| matches!(f, Fields::Unit))
        .map(|(v, _)| format!("\"{v}\" => ::std::result::Result::Ok({name}::{v}),"))
        .collect();
    let data_arms: Vec<String> = variants
        .iter()
        .filter(|(_, f)| !matches!(f, Fields::Unit))
        .map(|(v, fields)| match fields {
            Fields::Named(fs) => {
                let ctor = named_fields_ctor(&format!("{name}::{v}"), fs, "__obj");
                format!(
                    "\"{v}\" => {{ let __obj = __inner.as_object().ok_or_else(|| \
                     ::serde::de::Error::custom(\"expected object for {name}::{v}\"))?;\n\
                     ::std::result::Result::Ok({ctor}) }}"
                )
            }
            Fields::Tuple(1) => format!(
                "\"{v}\" => ::std::result::Result::Ok(\
                 {name}::{v}(::serde::Deserialize::from_value(__inner)?)),"
            ),
            Fields::Tuple(n) => {
                let items: Vec<String> = (0..*n)
                    .map(|i| format!("::serde::Deserialize::from_value(&__items[{i}])?"))
                    .collect();
                format!(
                    "\"{v}\" => {{ let __items = __inner.as_array().ok_or_else(|| \
                     ::serde::de::Error::custom(\"expected array for {name}::{v}\"))?;\n\
                     if __items.len() != {n} {{ return ::std::result::Result::Err(\
                     ::serde::de::Error::custom(\"wrong tuple length for {name}::{v}\")); }}\n\
                     ::std::result::Result::Ok({name}::{v}({})) }}",
                    items.join(", ")
                )
            }
            Fields::Unit => unreachable!(),
        })
        .collect();
    format!(
        "match __v {{\n\
             ::serde::value::Value::Str(__s) => match __s.as_str() {{\n\
                 {unit}\n\
                 __other => ::std::result::Result::Err(::serde::de::Error::custom(\
                     ::std::format!(\"unknown variant `{{__other}}` for {name}\"))),\n\
             }},\n\
             ::serde::value::Value::Object(__pairs) if __pairs.len() == 1 => {{\n\
                 let (__tag, __inner) = &__pairs[0];\n\
                 let __inner: &::serde::value::Value = __inner;\n\
                 let _ = __inner;\n\
                 match __tag.as_str() {{\n\
                     {data}\n\
                     __other => ::std::result::Result::Err(::serde::de::Error::custom(\
                         ::std::format!(\"unknown variant `{{__other}}` for {name}\"))),\n\
                 }}\n\
             }}\n\
             __other => ::std::result::Result::Err(::serde::de::Error::custom(\
                 ::std::format!(\"invalid value for enum {name}: {{__other:?}}\"))),\n\
         }}",
        unit = unit_arms.join("\n"),
        data = data_arms.join("\n"),
    )
}
