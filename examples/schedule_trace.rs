//! Schedule trace: watch the token-based scheduling of §III-B happen, event by
//! event, on a small scenario — grants, completions, helper steals and
//! per-sub-model syncs with virtual timestamps.
//!
//! ```text
//! cargo run --release -p fela-examples --bin schedule_trace
//! ```

use fela_cluster::{Scenario, StragglerModel};
use fela_core::{FelaConfig, FelaRuntime};
use fela_model::zoo;
use fela_sim::SimDuration;

fn main() {
    // Two iterations of VGG19 at batch 128 → Figure 3's token structure:
    // 8 T-1, 4 T-2, 2 T-3 tokens per iteration; worker 5 sleeps in iteration 0.
    let scenario = Scenario::paper(zoo::vgg19(), 128)
        .with_iterations(2)
        .with_straggler(StragglerModel::RoundRobin {
            delay: SimDuration::from_secs(5),
        });
    let runtime = FelaRuntime::new(FelaConfig::new(3).with_weights(vec![1, 2, 4]));
    let (report, trace) = runtime.run_traced(&scenario);

    println!("event log ({} events):", trace.events().len());
    for ev in trace.events() {
        println!("  {ev}");
    }
    println!(
        "\n{} tokens trained in {:.2}s ({} stolen by helpers — look for grants of\n\
         worker 0's sample-owner tokens to other workers while it sleeps).",
        report.counter("grants"),
        report.total_time_secs,
        report.counter("steals"),
    );
}
