//! Elastic tuning: run the §IV-B two-phase configuration search for a workload
//! and inspect the landscape it navigates.
//!
//! ```text
//! cargo run --release -p fela-examples --bin elastic_tuning
//! ```

use fela_cluster::{Scenario, TrainingRuntime};
use fela_core::FelaRuntime;
use fela_metrics::{f3, Table};
use fela_model::zoo;
use fela_tuning::Tuner;

fn main() {
    let scenario = Scenario::paper(zoo::vgg19(), 512).with_iterations(20);
    let tuner = Tuner::default(); // 5 profiling iterations per case, as in §IV-B

    println!("Tuning VGG19 @ total batch 512 on 8×K40c…\n");
    let outcome = tuner.tune(&scenario);

    let mut table = Table::new(
        "Search landscape (13 cases: 10 weight vectors + 3 CTD subsets)",
        &[
            "case",
            "phase",
            "weights",
            "CTD subset",
            "per-iteration (s)",
        ],
    );
    for c in &outcome.cases {
        table.row(vec![
            c.case.id.to_string(),
            c.case.phase.to_string(),
            format!("{:?}", c.case.weights),
            c.case
                .subset
                .map(|s| s.to_string())
                .unwrap_or_else(|| "8 (off)".into()),
            c.per_iteration_secs
                .map(f3)
                .unwrap_or_else(|| "infeasible".into()),
        ]);
    }
    print!("{}", table.render());

    let best = &outcome.cases[outcome.best].case;
    println!(
        "Winner: case {} — weights {:?}, CTD subset {:?}",
        best.id, best.weights, best.subset
    );
    println!(
        "Best-vs-worst savings: Phase 1 {:.1}%, Phase 2 {:.1}%, overall {:.1}%",
        outcome.phase1_saving() * 100.0,
        outcome.phase2_saving() * 100.0,
        outcome.overall_saving() * 100.0
    );
    println!(
        "Warm-up cost: {} cases × {} iterations = {} profiled iterations \
         (\"trivial\" beside the ~10⁵ iterations of a real training job, §IV-B).",
        outcome.cases.len(),
        outcome.profile_iterations,
        outcome.cases.len() as u64 * outcome.profile_iterations
    );

    // Train with the winner.
    let report = FelaRuntime::new(outcome.best_config.clone()).run(&scenario);
    println!(
        "\nTrained 20 iterations with the tuned configuration: {:.1} samples/s, \
         GPU utilisation {:.2}.",
        report.average_throughput(),
        report.mean_utilization()
    );
}
