//! Reproducibility: demonstrate that Fela's token scheduling is a pure
//! re-ordering of BSP training — the Table II "Algorithm Reproducibility ✓"
//! property — using the real CPU training engine.
//!
//! ```text
//! cargo run --release -p fela-examples --bin reproducibility
//! ```

use fela_engine::{
    mse_loss, seeded_schedule, serial_step, EngineNet, SplitPlan, Tensor, TokenExecutor,
};

fn main() {
    // A small MLP split into three sub-models with token counts 4/2/1 — the same
    // nondecreasing per-token-batch structure as the paper's Figure 3.
    let net0 = EngineNet::mlp(&[16, 32, 32, 8], 2024);
    let plan = SplitPlan {
        levels: vec![(0, 2), (2, 4), (4, 5)],
        tokens: vec![4, 2, 1],
    };
    let x = Tensor::seeded(&[16, 16], 1, 1.0);
    let target = Tensor::seeded(&[16, 8], 2, 1.0);
    let exec = TokenExecutor {
        plan: plan.clone(),
        lr: 0.1,
    };

    // 1. Train under four different token schedules (different interleavings of
    //    the same token DAG — what different cluster timings would produce).
    println!("Training 10 iterations under 4 different token schedules…");
    let mut trained = Vec::new();
    for seed in [11u64, 222, 3333, 44444] {
        let mut net = net0.clone();
        for step in 0..10 {
            let schedule = seeded_schedule(&plan, seed.wrapping_mul(31).wrapping_add(step));
            exec.step(&mut net, &x, &target, &schedule);
        }
        trained.push(net);
    }
    let all_equal = trained.iter().all(|n| n == &trained[0]);
    println!("  → all four trained models bit-identical: {all_equal}");
    assert!(all_equal);

    // 2. A single-token plan IS serial BSP, bit for bit.
    let serial_plan = SplitPlan {
        levels: vec![(0, 5)],
        tokens: vec![1],
    };
    let serial_exec = TokenExecutor {
        plan: serial_plan.clone(),
        lr: 0.1,
    };
    let mut serial = net0.clone();
    let mut single = net0.clone();
    for step in 0..10 {
        serial_step(&mut serial, &x, &target, 0.1);
        serial_exec.step(
            &mut single,
            &x,
            &target,
            &seeded_schedule(&serial_plan, step),
        );
    }
    println!(
        "  → single-token plan equals the serial reference exactly: {}",
        serial == single
    );
    assert_eq!(serial, single);

    // 3. And it all still learns.
    let loss = |net: &EngineNet| {
        let (_, y) = net.forward_range(0, net.len(), &x);
        mse_loss(&y, &target)
    };
    println!(
        "  → loss: initial {:.4}, token-scheduled {:.4}, serial {:.4}",
        loss(&net0),
        loss(&trained[0]),
        loss(&serial)
    );
    println!(
        "\nContrast with ASP/SSP (§II-C): there, the *timing* of workers changes\n\
         which parameter versions gradients see, so two runs of the same job can\n\
         diverge. Fela re-orders work without changing any data dependency."
    );
}
