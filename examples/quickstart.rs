//! Quickstart: train VGG19 on the paper's 8-node testbed with Fela and compare
//! against the three baselines.
//!
//! ```text
//! cargo run --release -p fela-examples --bin quickstart
//! ```

use fela_baselines::{DpRuntime, HpRuntime, MpRuntime};
use fela_cluster::{Scenario, TrainingRuntime};
use fela_core::{FelaConfig, FelaRuntime};
use fela_metrics::{f2, format_speedup, Table};
use fela_model::zoo;

fn main() {
    // 1. Pick a model and a workload: VGG19, total batch 256, 20 iterations.
    let model = zoo::vgg19();
    let scenario = Scenario::paper(model, 256).with_iterations(20);

    // 2. Configure Fela: three sub-models (the default bin partition), weight
    //    vector {1, 2, 4} as in the paper's Figure 3, CTD subset of 2 for the
    //    FC sub-model.
    let config = FelaConfig::new(3).with_weights(vec![1, 2, 4]).with_ctd(2);
    let fela = FelaRuntime::new(config);

    // 3. Run Fela and the baselines on the identical scenario.
    let runtimes: Vec<(&str, Box<dyn TrainingRuntime>)> = vec![
        ("Fela", Box::new(fela)),
        ("DP (data-parallel)", Box::new(DpRuntime::default())),
        ("MP (pipeline)", Box::new(MpRuntime::default())),
        ("HP (Stanza)", Box::new(HpRuntime)),
    ];
    let mut table = Table::new(
        "Quickstart — VGG19, batch 256, 8×K40c, 10 GbE",
        &["runtime", "samples/s", "GPU util", "wire GB"],
    );
    let mut reports = Vec::new();
    for (name, rt) in &runtimes {
        let report = rt.run(&scenario);
        table.row(vec![
            (*name).to_owned(),
            f2(report.average_throughput()),
            f2(report.mean_utilization()),
            f2(report.network_bytes as f64 / 1e9),
        ]);
        reports.push(report);
    }
    print!("{}", table.render());
    for (i, (name, _)) in runtimes.iter().enumerate().skip(1) {
        println!(
            "Fela vs {}: {}",
            name,
            format_speedup(reports[0].average_throughput() / reports[i].average_throughput())
        );
    }
    println!(
        "\nFela counters: {} tokens granted, {} stolen by helpers, {} lock conflicts",
        reports[0].counter("grants"),
        reports[0].counter("steals"),
        reports[0].counter("conflicts"),
    );
}
