//! Straggler rescue: inject the paper's two straggler scenarios and watch
//! Fela's token stealing absorb the sleeps that DP pays in full.
//!
//! ```text
//! cargo run --release -p fela-examples --bin straggler_rescue
//! ```

use fela_baselines::DpRuntime;
use fela_cluster::{Scenario, StragglerModel, TrainingRuntime};
use fela_core::{FelaConfig, FelaRuntime};
use fela_metrics::{f2, f3, per_iteration_delay, Table};
use fela_model::zoo;
use fela_sim::SimDuration;

fn main() {
    let base = Scenario::paper(zoo::vgg19(), 256).with_iterations(20);
    let fela = FelaRuntime::new(FelaConfig::new(3).with_weights(vec![1, 2, 4]));
    let dp = DpRuntime::default();

    let fela_base = fela.run(&base);
    let dp_base = dp.run(&base);

    let scenarios = [
        (
            "round-robin, d=6s",
            StragglerModel::RoundRobin {
                delay: SimDuration::from_secs(6),
            },
        ),
        (
            "probabilistic, p=0.3, d=6s",
            StragglerModel::Probabilistic {
                p: 0.3,
                delay: SimDuration::from_secs(6),
                seed: 7,
            },
        ),
    ];

    let mut table = Table::new(
        "Straggler rescue — VGG19, batch 256 (PID = per-iteration delay, Eq. 4)",
        &[
            "scenario",
            "Fela AT",
            "DP AT",
            "Fela PID (s)",
            "DP PID (s)",
            "PID saved",
        ],
    );
    for (label, straggler) in scenarios {
        let sc = base.clone().with_straggler(straggler);
        let f = fela.run(&sc);
        let d = dp.run(&sc);
        let f_pid = per_iteration_delay(&f, &fela_base);
        let d_pid = per_iteration_delay(&d, &dp_base);
        table.row(vec![
            label.to_owned(),
            f2(f.average_throughput()),
            f2(d.average_throughput()),
            f3(f_pid),
            f3(d_pid),
            format!("{:.1}%", (1.0 - f_pid / d_pid) * 100.0),
        ]);
        // Where did the rescue come from? Count helper steals.
        println!(
            "{label}: {} helper steals rebalanced the straggler's tokens",
            f.counter("steals")
        );
    }
    print!("{}", table.render());
    println!(
        "DP must wait the full sleep every iteration; Fela's idle workers pull the\n\
         straggler's tokens from its sub-token-bucket instead (§III-C, §III-E)."
    );
}
