//! Cross-crate elastic integration tests.
//!
//! The elasticity contract rests on four cross-crate properties, each pinned
//! here end-to-end:
//!
//! 1. the incremental boundary re-tune is **bit-identical** to the full
//!    two-phase search oracle under arbitrary churn;
//! 2. resize-free elastic runs are **byte-identical** to plain tuned Fela —
//!    same report, no `resize` key in artifacts, unchanged `config_hash`;
//! 3. churn sweeps are independent of the harness `--jobs` value;
//! 4. a live elastic run (per-epoch sessions, `Hello` hot-join, drain on
//!    leave) conforms bytewise to the simulated elastic run on both
//!    transports.

use fela_baselines::{DpRuntime, HpRuntime};
use fela_cluster::{ResizeAction, ResizeEvent, ResizeModel, Scenario, TrainingRuntime};
use fela_core::FelaRuntime;
use fela_elastic::{
    run_live_elastic, ElasticOptions, ElasticRuntime, IncrementalTuner, StopRestartRuntime,
};
use fela_harness::{config_hash, to_jsonl, RunRecord, SweepSpec};
use fela_model::zoo;
use fela_tuning::Tuner;
use proptest::prelude::*;

fn options() -> ElasticOptions {
    ElasticOptions {
        profile_iterations: 1,
        ..ElasticOptions::default()
    }
}

fn scripted() -> ResizeModel {
    ResizeModel::Scripted(vec![
        ResizeEvent {
            iteration: 2,
            action: ResizeAction::Join(2),
        },
        ResizeEvent {
            iteration: 4,
            action: ResizeAction::Leave(vec![9, 3]),
        },
    ])
}

fn scenario(batch: u64, iters: u64) -> Scenario {
    Scenario::paper(zoo::googlenet(), batch).with_iterations(iters)
}

#[test]
fn resize_free_elastic_runs_are_byte_identical_to_plain_tuned_fela() {
    let sc = scenario(256, 3);
    let tuner = Tuner {
        profile_iterations: 1,
    };
    let plain = FelaRuntime::new(tuner.tune_with_jobs(&sc, 1).best_config).run(&sc);
    let elastic = ElasticRuntime::new(options()).run(&sc);
    assert_eq!(
        serde_json::to_string(&plain).expect("serializes"),
        serde_json::to_string(&elastic).expect("serializes"),
        "resize-free elastic must delegate byte-exactly (runtime name included)"
    );

    // Artifact byte-identity: a resize-free record must not even mention
    // elasticity, and its config hash must match a pre-elasticity scenario's.
    let record = RunRecord::new("suite", "rt", "sc", &sc, None, elastic.clone());
    let line = to_jsonl(std::slice::from_ref(&record));
    assert!(
        !line.contains("\"resize\"") && !line.contains("elastic"),
        "resize-free artifact must stay pre-elasticity-shaped: {line}"
    );
    assert_eq!(
        config_hash(&sc),
        config_hash(&sc.clone().with_resize(ResizeModel::None)),
    );
}

#[test]
fn churn_sweeps_are_jobs_independent() {
    let build = || {
        let mut spec = SweepSpec::new("elastic-jobs")
            .runtime("fela-elastic", |_| Box::new(ElasticRuntime::new(options())))
            .runtime("dp-restart", |_| {
                Box::new(StopRestartRuntime::new(DpRuntime::default(), "dp-restart"))
            })
            .runtime("hp-restart", |_| {
                Box::new(StopRestartRuntime::new(HpRuntime, "hp-restart"))
            });
        for (label, rate) in [("light", 0.3), ("heavy", 0.6)] {
            spec = spec.scenario(
                label,
                scenario(128, 6).with_resize(ResizeModel::Churn { rate, seed: 7 }),
            );
        }
        spec.with_seed(Some(5))
    };
    let sequential = to_jsonl(&build().run(1).records);
    let parallel = to_jsonl(&build().run(4).records);
    assert_eq!(
        sequential, parallel,
        "elastic sweeps must not depend on --jobs"
    );
}

#[test]
fn live_elastic_conforms_to_the_simulated_run_on_both_transports() {
    let sc = scenario(256, 6).with_resize(scripted());
    let simulated = ElasticRuntime::new(options())
        .run_elastic(&sc)
        .expect("simulated elastic run");
    let sim_json = serde_json::to_string(&simulated.report).expect("serializes");
    for transport in ["chan", "tcp"] {
        let live = run_live_elastic(options(), &sc, transport).expect("live elastic run");
        assert_eq!(
            live.epochs.len(),
            simulated.plan.epochs.len(),
            "{transport}: one live session per epoch"
        );
        assert_eq!(
            serde_json::to_string(&live.report).expect("serializes"),
            sim_json,
            "{transport}: live elastic must conform bytewise to the simulator"
        );
    }
}

proptest! {
    #[test]
    fn incremental_retune_matches_the_full_search_oracle_under_churn(
        rate in 0.1f64..0.9,
        seed in any::<u64>(),
    ) {
        let sc = scenario(128, 6).with_resize(ResizeModel::Churn { rate, seed });
        let plan = ElasticRuntime::new(options()).plan(&sc).expect("plans");
        let mut incremental = IncrementalTuner::new(1);
        for e in &plan.epochs {
            // The plan's chosen configuration must equal the full two-phase
            // search's, and the cached incremental walk must be bit-identical
            // to a fresh full search on every epoch it revisits.
            let oracle = Tuner { profile_iterations: 1 }.tune_with_jobs(&e.scenario, 1);
            prop_assert_eq!(
                serde_json::to_string(&e.config).expect("serializes"),
                serde_json::to_string(&oracle.best_config).expect("serializes")
            );
            prop_assert_eq!(&e.weights, &oracle.cases[oracle.best].case.weights);
            prop_assert_eq!(e.subset, oracle.cases[oracle.best].case.subset);
            let (cached, _) = incremental.tune(&e.scenario);
            prop_assert_eq!(
                serde_json::to_string(&cached).expect("serializes"),
                serde_json::to_string(&oracle).expect("serializes")
            );
        }
    }
}
