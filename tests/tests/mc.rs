//! Model-checker and protocol-verifier integration: `fela-check`'s `mc` and
//! `protocol` layers against the *real* live runtime, cross-crate.
//!
//! The unit suites in `fela-check` prove the explorer and session machine on
//! the small model configurations; this suite closes the loop with threads:
//! a real `fela-live` virtual-clock run, recorded through the scheduler seam,
//! must satisfy the same frame-session protocol the model checker verifies —
//! and seeded wire mutations on that *live* trace must still be caught.

use fela_check::{
    model_check, mutate_events, record_execution, run_mutation_matrix, verify_session, McConfig,
    WireMutation,
};
use fela_cluster::{ClusterSpec, Scenario};
use fela_core::{FelaConfig, FelaRuntime};
use fela_live::{
    run_real_with, run_virtual_with, ChanTransport, RealOptions, RecordingSched, SharedSched,
    SyncEvent,
};
use fela_model::zoo;

#[test]
fn the_acceptance_configuration_is_exhaustively_clean() {
    // ISSUE acceptance: 2 workers × 2 shards × 2 iterations, every
    // non-equivalent interleaving, zero deadlocks, zero lost wakeups, all
    // histories linearizable against the monolithic oracle.
    let outcome = model_check(&McConfig::small());
    assert!(outcome.ok(), "violations: {:?}", outcome.violations);
    assert!(outcome.states > 0 && outcome.terminals > 0);
    assert!(!outcome.truncated, "space must be exhausted, not truncated");
}

#[test]
fn sharding_does_not_change_the_explored_schedule_space() {
    // The sharded coordinator must be observationally equivalent to the
    // monolithic token server: same reachable states, same transitions, same
    // terminal count — not merely "also clean".
    let mono = model_check(&McConfig::small().with_shards(1));
    let sharded = model_check(&McConfig::small().with_shards(2));
    assert!(mono.ok() && sharded.ok());
    assert_eq!(mono.states, sharded.states);
    assert_eq!(mono.transitions, sharded.transitions);
    assert_eq!(mono.terminals, sharded.terminals);
}

#[test]
fn the_lease_adversary_is_clean_and_actually_adversarial() {
    let outcome = model_check(&McConfig::small().with_recovery());
    assert!(outcome.ok(), "violations: {:?}", outcome.violations);
    assert!(
        outcome.lease_fires > 0,
        "the adversary never fired a lease — the recovery space was not explored"
    );
    assert!(
        outcome.stale_reports > 0,
        "no revoked-then-reported token was explored"
    );
}

#[test]
fn the_mutation_matrix_is_caught_with_distinct_diagnostics() {
    let matrix = run_mutation_matrix();
    assert!(matrix.len() >= 3, "need at least three seeded mutations");
    let mut kinds = std::collections::BTreeSet::new();
    for row in &matrix {
        assert!(row.caught, "mutation '{}' slipped through", row.name);
        assert!(
            kinds.insert(row.kind),
            "mutation '{}' produced a duplicate diagnostic kind '{}'",
            row.name,
            row.kind
        );
    }
}

#[test]
fn recorded_model_executions_are_session_clean() {
    for shards in [1usize, 2] {
        let (events, ops) = record_execution(&McConfig::small().with_shards(shards));
        assert!(!events.is_empty() && !ops.is_empty());
        let report = verify_session(&events, Some(&ops));
        assert!(report.ok(), "shards {shards}: {:?}", report.violations);
        assert_eq!(report.links, 2);
    }
}

/// A real threaded virtual-clock run over the in-process channel transport,
/// recorded through the `Sched` seam.
fn recorded_live_trace() -> Vec<SyncEvent> {
    let mut scenario = Scenario::paper(zoo::alexnet(), 128);
    scenario.iterations = 2;
    scenario.cluster = ClusterSpec::k40c_cluster(2);
    let m = FelaRuntime::new(FelaConfig::new(1))
        .partition_for(&scenario)
        .len();
    let config = FelaConfig::new(m);
    let rec = RecordingSched::new();
    let sched: SharedSched = rec.clone();
    run_virtual_with(&config, &scenario, &mut ChanTransport, sched).expect("live run succeeds");
    rec.take()
}

#[test]
fn a_real_threaded_run_satisfies_the_frame_session_protocol() {
    let events = recorded_live_trace();
    assert!(!events.is_empty(), "the scheduler seam recorded nothing");
    let report = verify_session(&events, None);
    assert!(
        report.ok(),
        "live trace violations: {:?}",
        report.violations
    );
    assert_eq!(report.links, 2, "one session per worker link");
    assert!(report.frames > 0);
}

/// A real-clock pull-mode run (the `Request`/`Grant`/`Report` dialogue the
/// wire mutations target — virtual mode prices spans with `CostQuery`
/// instead), recorded through the same seam.
fn recorded_real_trace() -> Vec<SyncEvent> {
    let mut scenario = Scenario::paper(zoo::alexnet(), 128);
    scenario.iterations = 2;
    scenario.cluster = ClusterSpec::k40c_cluster(2);
    let m = FelaRuntime::new(FelaConfig::new(1))
        .partition_for(&scenario)
        .len();
    let config = FelaConfig::new(m);
    let rec = RecordingSched::new();
    let sched: SharedSched = rec.clone();
    let opts = RealOptions {
        time_scale: 1e-4,
        ..RealOptions::default()
    };
    run_real_with(&config, &scenario, &mut ChanTransport, opts, sched)
        .expect("real-clock run succeeds");
    rec.take()
}

#[test]
fn wire_mutations_on_a_live_trace_are_still_caught() {
    // The session verifier is not specific to model-generated streams: the
    // same seeded wire mutations must be caught on a trace recorded from real
    // threads (misroute needs grant intents from an op log, so it is covered
    // by the model-side matrix instead).
    let events = recorded_real_trace();
    let clean = verify_session(&events, None);
    assert!(clean.ok(), "real trace violations: {:?}", clean.violations);
    for mutation in [
        WireMutation::DropGrant { nth: 0 },
        WireMutation::ReorderGrantReport { nth: 0 },
    ] {
        let mutated = mutate_events(&events, &mutation);
        let report = verify_session(&mutated, None);
        assert!(
            !report.ok(),
            "{mutation:?} went unnoticed on the live trace"
        );
    }
}
