//! Live-runtime conformance: a `fela-live` virtual-clock run — real worker
//! threads, real wire protocol, on both transports — must be **byte-identical**
//! to the discrete-event simulator, so the whole `fela-check` verification
//! stack (race detector, recovery verifier) applies to live traces unchanged.
//!
//! The real-clock smoke at the bottom checks the complementary guarantee:
//! wall-clock runs are nondeterministic in *timing*, but the executor's
//! canonical per-level reduction makes the final model parameters bit-equal
//! to the deterministic virtual run anyway.

use fela_cluster::{ClusterSpec, FaultKind, FaultModel, Scenario};
use fela_core::{FelaConfig, FelaRuntime};
use fela_live::{run_real, run_virtual, ChanTransport, RealOptions, TcpTransport, Transport};
use fela_model::zoo;
use fela_sim::SimDuration;

/// The conformance matrix: three zoo configs under BSP (staleness 0), all on
/// a 4-node cluster so ≥ 4 live worker threads run concurrently.
fn zoo_configs() -> Vec<(&'static str, FelaConfig, Scenario)> {
    let mut out = Vec::new();
    for (name, model, batch, weights) in [
        ("vgg19/b128", zoo::vgg19(), 128u64, Some(vec![1u64, 2, 4])),
        ("googlenet/b256", zoo::googlenet(), 256, None),
        ("alexnet/b128", zoo::alexnet(), 128, None),
    ] {
        let mut scenario = Scenario::paper(model, batch);
        scenario.iterations = 3;
        scenario.cluster = ClusterSpec::k40c_cluster(4);
        let m = FelaRuntime::new(FelaConfig::new(1))
            .partition_for(&scenario)
            .len();
        let config = match weights {
            Some(w) => FelaConfig::new(m).with_weights(w),
            None => FelaConfig::new(m),
        };
        out.push((name, config, scenario));
    }
    out
}

fn transports() -> Vec<(&'static str, Box<dyn Transport>)> {
    vec![
        ("chan", Box::new(ChanTransport) as Box<dyn Transport>),
        ("tcp", Box::<TcpTransport>::default()),
    ]
}

#[test]
fn virtual_runs_are_byte_identical_to_the_simulator_across_the_zoo() {
    for (name, config, scenario) in zoo_configs() {
        let (sim_report, sim_trace) = FelaRuntime::new(config.clone()).run_traced(&scenario);
        for (tname, mut transport) in transports() {
            let live =
                run_virtual(&config, &scenario, transport.as_mut()).expect("live run succeeds");
            assert_eq!(
                sim_trace.events(),
                live.trace.events(),
                "{name}/{tname}: live trace must be event-for-event equal to the simulator"
            );
            assert_eq!(
                sim_report.total_time_secs.to_bits(),
                live.report.total_time_secs.to_bits(),
                "{name}/{tname}: makespan must be bit-identical"
            );
            assert_eq!(
                sim_report.per_iteration_secs, live.report.per_iteration_secs,
                "{name}/{tname}"
            );
            assert_eq!(sim_report.counters, live.report.counters, "{name}/{tname}");
            assert!(!live.params.is_empty(), "{name}/{tname}: params collected");
        }
    }
}

#[test]
fn fela_check_accepts_live_traces_unchanged() {
    // The race detector and its happens-before analysis were written against
    // simulator traces; byte-conformance means they run on live traces as-is.
    for (name, config, scenario) in zoo_configs() {
        let live = run_virtual(&config, &scenario, &mut ChanTransport).expect("live run");
        let summary = fela_check::check_trace(&live.trace, 0)
            .unwrap_or_else(|v| panic!("{name}: race check rejected a live trace: {v:?}"));
        assert!(summary.grants > 0, "{name}: trace carries grants");
        assert!(summary.completions > 0, "{name}: trace carries completions");
    }
}

#[test]
fn params_are_bit_identical_across_transports() {
    // Same config, two different wire substrates: the replicas must land on
    // exactly the same bytes (and `run_virtual` already asserted every worker
    // matched its local reference replay).
    for (name, config, scenario) in zoo_configs() {
        let chan = run_virtual(&config, &scenario, &mut ChanTransport).expect("chan run");
        let tcp = run_virtual(&config, &scenario, &mut TcpTransport::default()).expect("tcp run");
        assert_eq!(
            chan.params, tcp.params,
            "{name}: params diverge across transports"
        );
    }
}

#[test]
fn recovery_verifier_accepts_a_faulted_live_trace() {
    // Crash-restart a worker mid-run: the live virtual run must still be
    // byte-identical to the simulator, and fela-check's lease-protocol
    // verifier must prove exactly-once gradient application on the live trace.
    let (_, config, mut scenario) = zoo_configs().remove(0);
    scenario.iterations = 4;
    scenario.fault = FaultModel::Scripted {
        worker: 1,
        iteration: 1,
        kind: FaultKind::CrashRestart {
            down: SimDuration::from_secs(20),
        },
    };
    let (_, sim_trace) = FelaRuntime::new(config.clone()).run_traced(&scenario);
    for (tname, mut transport) in transports() {
        let live = run_virtual(&config, &scenario, transport.as_mut()).expect("faulted live run");
        assert_eq!(
            sim_trace.events(),
            live.trace.events(),
            "{tname}: faulted live trace must match the simulator"
        );
        let summary = fela_check::check_recovery(&live.trace)
            .unwrap_or_else(|v| panic!("{tname}: recovery verifier rejected live trace: {v:?}"));
        assert!(summary.crashes >= 1, "{tname}: the crash is in the trace");
        assert_eq!(
            fela_check::check_trace(&live.trace, 0).map(|s| s.revocations >= 1),
            Ok(true),
            "{tname}: race check passes and sees the revocation"
        );
    }
}

#[test]
fn virtual_conformance_holds_at_64_workers() {
    // The poll-loop/batching rewrite is gated by this invariant: even at 64
    // live worker threads, a virtual-clock run on either transport stays
    // event-for-event identical to the discrete-event simulator.
    let mut scenario = Scenario::paper(zoo::alexnet(), 256);
    scenario.iterations = 2;
    scenario.cluster = ClusterSpec::k40c_cluster(64);
    let m = FelaRuntime::new(FelaConfig::new(1))
        .partition_for(&scenario)
        .len();
    let config = FelaConfig::new(m);
    let (sim_report, sim_trace) = FelaRuntime::new(config.clone()).run_traced(&scenario);
    for (tname, mut transport) in transports() {
        let live = run_virtual(&config, &scenario, transport.as_mut()).expect("64-worker live run");
        assert_eq!(
            sim_trace.events(),
            live.trace.events(),
            "{tname}: 64-worker live trace must be event-for-event equal to the simulator"
        );
        assert_eq!(
            sim_report.counters, live.report.counters,
            "{tname}: counters must match at 64 workers"
        );
        assert!(!live.params.is_empty(), "{tname}: params collected");
    }
}

#[test]
fn real_clock_timer_edge_regression() {
    // Timer-underflow regression at the workspace level: zero lease/downtime
    // floors plus a tiny time scale put every lease and restart deadline in
    // the past by the time it is armed. The old server loop panicked on the
    // unchecked `at - now`; the poll loop must fire these immediately and
    // still finish the faulted run on both transports.
    let (_, config, mut scenario) = zoo_configs().remove(2); // alexnet: fastest
    scenario.iterations = 4;
    scenario.fault = FaultModel::Scripted {
        worker: 1,
        iteration: 1,
        kind: FaultKind::CrashRestart {
            down: SimDuration::from_millis(100),
        },
    };
    for (tname, mut transport) in transports() {
        let real = run_real(
            &config,
            &scenario,
            transport.as_mut(),
            RealOptions {
                time_scale: 1e-7,
                min_lease: std::time::Duration::ZERO,
                min_down: std::time::Duration::ZERO,
                ..RealOptions::default()
            },
        )
        .expect("timer-edge run completes");
        assert_eq!(real.iterations, 4, "{tname}");
        assert!(real.crashes >= 1, "{tname}: the scripted crash happened");
        assert!(real.restarts >= 1, "{tname}: the worker rejoined");
    }
}

#[test]
fn real_clock_smoke_matches_virtual_params() {
    // 4 workers, both transports, wall clock: nondeterministic interleavings,
    // deterministic outcome. Every replica (and the server's reference
    // replay, asserted inside run_real) must agree with the virtual run.
    let (_, config, scenario) = zoo_configs().remove(2); // alexnet: fastest
    let virt = run_virtual(&config, &scenario, &mut ChanTransport).expect("virtual run");
    for (tname, mut transport) in transports() {
        let real = run_real(
            &config,
            &scenario,
            transport.as_mut(),
            RealOptions {
                time_scale: 1e-4,
                ..RealOptions::default()
            },
        )
        .expect("real run completes");
        assert_eq!(real.iterations, scenario.iterations, "{tname}");
        assert_eq!(
            real.params, virt.params,
            "{tname}: real-clock params must be bit-equal to the virtual run"
        );
        assert!(real.tokens_per_sec > 0.0, "{tname}");
    }
}
