//! Property-based tests on the workspace's core invariants (proptest).

use fela_cluster::{FaultModel, StragglerModel};
use fela_core::{FelaConfig, TokenPlan};
use fela_engine::{seeded_schedule, EngineNet, SplitPlan, Tensor, TokenExecutor};
use fela_metrics::stats;
use fela_model::{bin_partition, zoo, PartitionOptions, ThresholdProfile};
use fela_net::fairshare::{max_min_rates, FlowLinks, IncrementalMaxMin};
use fela_sim::{EventQueue, SimTime};
use proptest::prelude::*;
use std::collections::{BTreeMap, BTreeSet};

fn pow2_weight() -> impl Strategy<Value = u64> {
    prop_oneof![Just(1u64), Just(2), Just(4), Just(8)]
}

proptest! {
    /// Token plans conserve the batch at every level and their generation ratios
    /// compose exactly.
    #[test]
    fn token_plan_conserves_batch(
        batch_exp in 6u32..12, // 64..=2048
        w2 in pow2_weight(),
        w3 in pow2_weight(),
    ) {
        let total = 1u64 << batch_exp;
        let (w2, w3) = (w2.min(w3), w2.max(w3));
        let p = bin_partition(
            &zoo::vgg19(),
            &ThresholdProfile::k40c(),
            PartitionOptions::default(),
        );
        let cfg = FelaConfig::new(3).with_weights(vec![1, w2, w3]);
        if let Ok(plan) = TokenPlan::build(&p, &cfg, total, 8) {
            for l in &plan.levels {
                prop_assert_eq!(l.batch_per_token * l.tokens_per_iteration, total);
                prop_assert!(l.batch_per_token >= 1);
            }
            let ratio_product: u64 = plan.levels.iter().map(|l| l.gen_ratio).product();
            prop_assert_eq!(
                plan.levels[0].tokens_per_iteration,
                plan.levels.last().unwrap().tokens_per_iteration * ratio_product
            );
            // Tokens per level never increase with depth (w nondecreasing).
            let counts: Vec<u64> =
                plan.levels.iter().map(|l| l.tokens_per_iteration).collect();
            prop_assert!(counts.windows(2).all(|w| w[0] >= w[1]));
        }
    }

    /// Max–min fairness never oversubscribes a link and never starves a flow.
    #[test]
    fn fairshare_feasible_and_positive(
        flows in prop::collection::vec((0usize..6, 0usize..6), 1..24),
    ) {
        let caps = vec![1e9f64; 6];
        let links: Vec<FlowLinks> = flows
            .iter()
            .map(|&(src, dst)| FlowLinks { egress: src, ingress: dst })
            .collect();
        let rates = max_min_rates(&caps, &caps, &links);
        prop_assert_eq!(rates.len(), links.len());
        let mut eg = [0.0f64; 6];
        let mut ing = [0.0f64; 6];
        for (f, r) in links.iter().zip(&rates) {
            prop_assert!(*r > 0.0, "no flow may starve");
            eg[f.egress] += r;
            ing[f.ingress] += r;
        }
        for l in 0..6 {
            prop_assert!(eg[l] <= 1e9 * 1.0001, "egress {} oversubscribed", l);
            prop_assert!(ing[l] <= 1e9 * 1.0001, "ingress {} oversubscribed", l);
        }
    }

    /// Max–min rates are scale-invariant: doubling every capacity doubles every
    /// rate.
    #[test]
    fn fairshare_scales_linearly(
        flows in prop::collection::vec((0usize..4, 0usize..4), 1..12),
    ) {
        let links: Vec<FlowLinks> = flows
            .iter()
            .map(|&(s, d)| FlowLinks { egress: s, ingress: d })
            .collect();
        let r1 = max_min_rates(&[1e9; 4], &[1e9; 4], &links);
        let r2 = max_min_rates(&[2e9; 4], &[2e9; 4], &links);
        for (a, b) in r1.iter().zip(&r2) {
            prop_assert!((b / a - 2.0).abs() < 1e-9);
        }
    }

    /// Bin partitioning covers every unit exactly once for any target count and
    /// preserves total parameters, for every buildable zoo model.
    #[test]
    fn partition_always_tiles(target in 1usize..8, model_idx in 0usize..5) {
        let model = match model_idx {
            0 => zoo::vgg19(),
            1 => zoo::vgg16(),
            2 => zoo::googlenet(),
            3 => zoo::alexnet(),
            _ => zoo::resnet152(),
        };
        let p = bin_partition(
            &model,
            &ThresholdProfile::k40c(),
            PartitionOptions { bin_width: 16, target_max: Some(target) },
        );
        prop_assert!(p.len() <= target.max(1));
        let mut next = 0usize;
        for s in p.sub_models() {
            prop_assert_eq!(s.unit_start, next);
            prop_assert!(s.unit_end > s.unit_start);
            next = s.unit_end;
        }
        prop_assert_eq!(next, model.len());
        prop_assert_eq!(p.total_param_bytes(), model.param_bytes());
    }

    /// The engine's reproducibility theorem, property-tested: any two valid
    /// schedules of any seeded MLP/token split train to bit-identical models.
    #[test]
    fn token_schedules_always_bit_identical(
        net_seed in 0u64..1000,
        sched_a in 0u64..1000,
        sched_b in 0u64..1000,
        tokens0_exp in 0u32..3, // 1, 2, or 4 root tokens
    ) {
        let tokens0 = 1usize << tokens0_exp;
        let net0 = EngineNet::mlp(&[6, 10, 4], net_seed);
        let plan = SplitPlan {
            levels: vec![(0, 2), (2, 3)],
            tokens: vec![tokens0, 1],
        };
        let batch = tokens0 * 2;
        let x = Tensor::seeded(&[batch, 6], net_seed ^ 0xAB, 1.0);
        let t = Tensor::seeded(&[batch, 4], net_seed ^ 0xCD, 1.0);
        let exec = TokenExecutor { plan: plan.clone(), lr: 0.05 };
        let mut a = net0.clone();
        let mut b = net0;
        exec.step(&mut a, &x, &t, &seeded_schedule(&plan, sched_a));
        exec.step(&mut b, &x, &t, &seeded_schedule(&plan, sched_b));
        prop_assert_eq!(a, b);
    }

    /// Normalisation maps any series into [0, 1] with the extremes attained.
    #[test]
    fn normalize_unit_bounds(xs in prop::collection::vec(0.0f64..1e6, 2..40)) {
        let n = stats::normalize_unit(&xs);
        prop_assert_eq!(n.len(), xs.len());
        for v in &n {
            prop_assert!((0.0..=1.0).contains(v));
        }
        let spread = stats::max(&xs).unwrap() - stats::min(&xs).unwrap();
        if spread > 0.0 {
            prop_assert!(n.contains(&0.0));
            prop_assert!(n.contains(&1.0));
        }
    }

    /// Saturation curves are monotone and bounded for arbitrary thresholds.
    #[test]
    fn saturation_curve_monotone(threshold in 1u64..10_000, b1 in 1u64..100_000, b2 in 1u64..100_000) {
        let (lo, hi) = (b1.min(b2), b1.max(b2));
        let f_lo = fela_model::saturation_fraction(lo, threshold);
        let f_hi = fela_model::saturation_fraction(hi, threshold);
        prop_assert!(f_lo <= f_hi + 1e-12);
        prop_assert!((0.0..=1.0).contains(&f_lo));
        prop_assert!((0.0..=1.0).contains(&f_hi));
    }

    /// The incremental fair-share engine stays *bit-identical* to the stateless
    /// oracle over arbitrary star-topology flow churn: random interleavings of
    /// single inserts, single removals and batched removals, checked after every
    /// operation against `max_min_rates` over the surviving flow set in
    /// ascending-key order (the engine's canonical order).
    #[test]
    fn incremental_fairshare_is_bit_identical_to_oracle(
        ops in prop::collection::vec((0usize..4, 0usize..6, 0usize..6, 0usize..64), 1..60),
    ) {
        let caps = vec![1e9f64; 6];
        let mut engine = IncrementalMaxMin::new(caps.clone(), caps.clone());
        let mut mirror: BTreeMap<u64, FlowLinks> = BTreeMap::new();
        let mut next_key = 0u64;
        for (kind, src, dst, sel) in ops {
            let alive: Vec<u64> = mirror.keys().copied().collect();
            match kind {
                // Removal of one flow (when any exist).
                1 if !alive.is_empty() => {
                    let key = alive[sel % alive.len()];
                    engine.remove(key);
                    mirror.remove(&key);
                }
                // Batched removal of up to three flows — a completion wave.
                2 if !alive.is_empty() => {
                    let start = sel % alive.len();
                    let batch: Vec<u64> =
                        alive.iter().copied().cycle().skip(start).take(3.min(alive.len())).collect();
                    let mut batch = batch;
                    batch.sort_unstable();
                    batch.dedup();
                    engine.remove_batch(&batch);
                    for k in &batch {
                        mirror.remove(k);
                    }
                }
                // Insert (also the fallback for removal ops on an empty set).
                _ => {
                    let links = FlowLinks { egress: src, ingress: dst };
                    engine.insert(next_key, links);
                    mirror.insert(next_key, links);
                    next_key += 1;
                }
            }
            prop_assert_eq!(engine.len(), mirror.len());
            let flows: Vec<FlowLinks> = mirror.values().copied().collect();
            let expect = max_min_rates(&caps, &caps, &flows);
            let got: Vec<(u64, f64)> = engine.rates().collect();
            prop_assert_eq!(got.len(), expect.len());
            for ((key, rate), (mirror_key, oracle)) in got.iter().zip(mirror.keys().zip(&expect)) {
                prop_assert_eq!(key, mirror_key);
                prop_assert_eq!(
                    rate.to_bits(),
                    oracle.to_bits(),
                    "flow {} diverged: incremental {} vs oracle {}",
                    key,
                    rate,
                    oracle
                );
            }
        }
    }

    /// `StragglerModel::delay_for` is a pure function of `(iteration, worker)`:
    /// re-evaluating any cell yields the same delay, `p` at the extremes is
    /// all-or-nothing, and an empty or overflowed worker range injects nothing.
    #[test]
    fn straggler_delay_is_deterministic_and_edge_exact(
        seed in 0u64..1_000_000_000,
        iteration in 0u64..10_000,
        worker in 0usize..64,
        n_workers in 0usize..64,
        delay_ms in 1u64..60_000,
    ) {
        let delay = fela_sim::SimDuration::from_nanos(delay_ms * 1_000_000);
        for p in [0.0f64, 0.3, 1.0] {
            let m = StragglerModel::Probabilistic { p, delay, seed };
            let first = m.delay_for(iteration, worker, n_workers);
            prop_assert_eq!(first, m.delay_for(iteration, worker, n_workers));
            if worker >= n_workers || n_workers == 0 {
                // Out-of-range workers (and the degenerate empty cluster)
                // never straggle, for any probability.
                prop_assert!(first.is_zero());
            } else if p == 0.0 {
                prop_assert!(first.is_zero());
            } else if p == 1.0 {
                prop_assert_eq!(first, delay);
            }
        }
        // Round-robin slows exactly one in-range worker per iteration, and an
        // empty cluster (n_workers == 0) must not divide by zero.
        let rr = StragglerModel::RoundRobin { delay };
        prop_assert!(rr.delay_for(iteration, worker, 0).is_zero());
        if n_workers > 0 {
            let victims = (0..n_workers)
                .filter(|&w| !rr.delay_for(iteration, w, n_workers).is_zero())
                .count();
            prop_assert_eq!(victims, 1);
        }
    }

    /// `FaultModel` realisations share the purity contract: deterministic per
    /// cell, seed-sensitive, and inert outside the worker range.
    #[test]
    fn fault_model_is_deterministic_and_range_safe(
        seed in 0u64..1_000_000_000,
        iteration in 0u64..10_000,
        worker in 0usize..64,
        n_workers in 0usize..64,
    ) {
        let down = fela_sim::SimDuration::from_secs(5);
        for p in [0.0f64, 0.5, 1.0] {
            let m = FaultModel::Chaos { p, down, seed };
            let first = m.fault_for(iteration, worker, n_workers);
            prop_assert_eq!(first, m.fault_for(iteration, worker, n_workers));
            if worker >= n_workers || p == 0.0 {
                prop_assert_eq!(first, None);
            } else if p == 1.0 {
                prop_assert!(first.is_some());
            }
        }
    }

    /// `EventQueue` stays consistent with a reference model under random
    /// schedule / cancel / pop / peek interleavings — including cancels of ids
    /// that already fired or were already cancelled (the tombstone-leak
    /// regression), and regardless of when compaction strikes.
    #[test]
    fn event_queue_consistent_under_random_cancels(
        ops in prop::collection::vec((0usize..4, 0u64..100, 0usize..128), 1..200),
    ) {
        let mut q: EventQueue<u64> = EventQueue::new();
        let mut model: BTreeSet<(SimTime, fela_sim::EventId)> = BTreeSet::new();
        let mut issued: Vec<fela_sim::EventId> = Vec::new();
        for (kind, time, sel) in ops {
            match kind {
                0 => {
                    let t = SimTime::from_nanos(time);
                    let id = q.schedule_at(t, time);
                    model.insert((t, id));
                    issued.push(id);
                }
                1 if !issued.is_empty() => {
                    // May hit a live, fired, or already-cancelled id.
                    let id = issued[sel % issued.len()];
                    let was_live = model.iter().any(|&(_, i)| i == id);
                    let cancelled = q.cancel(id);
                    prop_assert_eq!(cancelled, was_live);
                    model.retain(|&(_, i)| i != id);
                }
                2 => {
                    let expect = model.iter().next().copied();
                    match (q.pop_next(), expect) {
                        (Some((t, id, payload)), Some((et, eid))) => {
                            prop_assert_eq!(t, et);
                            prop_assert_eq!(id, eid);
                            prop_assert_eq!(SimTime::from_nanos(payload), t);
                            model.remove(&(et, eid));
                        }
                        (None, None) => {}
                        (got, want) => {
                            prop_assert!(
                                false,
                                "pop mismatch: got {:?}, want {:?}",
                                got.map(|(t, i, _)| (t, i)),
                                want
                            );
                        }
                    }
                }
                _ => {
                    prop_assert_eq!(q.peek_time(), model.iter().next().map(|&(t, _)| t));
                }
            }
            prop_assert_eq!(q.len(), model.len());
            prop_assert_eq!(q.is_empty(), model.is_empty());
        }
    }
}
