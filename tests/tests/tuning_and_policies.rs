//! Integration tests for the tuner and the scheduling policies, end to end.

use fela_cluster::{Scenario, StragglerModel, TrainingRuntime};
use fela_core::{FelaConfig, FelaRuntime};
use fela_model::zoo;
use fela_sim::SimDuration;
use fela_tuning::Tuner;

#[test]
fn tuned_config_is_at_least_as_good_as_every_probed_case() {
    let scenario = Scenario::paper(zoo::googlenet(), 256);
    let tuner = Tuner {
        profile_iterations: 3,
    };
    let outcome = tuner.tune(&scenario);
    let best_time = outcome.cases[outcome.best]
        .per_iteration_secs
        .expect("best is feasible");
    for c in &outcome.cases {
        if let Some(t) = c.per_iteration_secs {
            assert!(
                best_time <= t + 1e-12,
                "case {:?} beat the declared winner",
                c.case
            );
        }
    }
}

#[test]
fn tuner_finds_different_configs_for_different_batches() {
    // Figure 6's point: the optimum moves with the workload. Checked across the
    // full sweep — at least two distinct winners must appear.
    let tuner = Tuner {
        profile_iterations: 2,
    };
    let mut winners = Vec::new();
    for batch in [64u64, 256, 1024] {
        let outcome = tuner.tune(&Scenario::paper(zoo::vgg19(), batch));
        let c = &outcome.cases[outcome.best].case;
        winners.push((c.weights.clone(), c.subset));
    }
    let all_same = winners.iter().all(|w| w == &winners[0]);
    assert!(
        !all_same,
        "tuning landscape should not be flat across a 16× batch range: {winners:?}"
    );
}

#[test]
fn ctd_reduces_fc_sync_traffic_monotonically() {
    let sc = Scenario::paper(zoo::vgg19(), 256).with_iterations(3);
    let mut last_bytes = u64::MAX;
    for subset in [8usize, 4, 2, 1] {
        let mut cfg = FelaConfig::new(3).with_weights(vec![1, 2, 4]);
        if subset < 8 {
            cfg = cfg.with_ctd(subset);
        }
        let r = FelaRuntime::new(cfg).run(&sc);
        assert!(
            r.network_bytes <= last_bytes,
            "subset {subset} increased traffic: {} > {last_bytes}",
            r.network_bytes
        );
        last_bytes = r.network_bytes;
    }
}

#[test]
fn helpers_only_steal_under_imbalance() {
    // Homogeneous non-straggler runs steal rarely; straggler runs steal a lot.
    let base = Scenario::paper(zoo::vgg19(), 256).with_iterations(5);
    let fela = FelaRuntime::new(FelaConfig::new(3).with_weights(vec![1, 2, 4]));
    let calm = fela.run(&base);
    let stormy = fela.run(&base.clone().with_straggler(StragglerModel::RoundRobin {
        delay: SimDuration::from_secs(6),
    }));
    assert!(
        stormy.counter("steals") > calm.counter("steals"),
        "stragglers must trigger more helping: {} vs {}",
        stormy.counter("steals"),
        calm.counter("steals")
    );
}

#[test]
fn transient_stragglers_favour_reactive_scheduling() {
    // §III-C: probability-based (transient) stragglers switch rapidly; Fela's
    // pull-based distribution absorbs part of each sleep.
    let base = Scenario::paper(zoo::vgg19(), 256).with_iterations(6);
    let straggler = StragglerModel::Probabilistic {
        p: 0.4,
        delay: SimDuration::from_secs(6),
        seed: 5,
    };
    let fela = FelaRuntime::new(FelaConfig::new(3).with_weights(vec![1, 2, 4]));
    let fela_base = fela.run(&base);
    let fela_slow = fela.run(&base.clone().with_straggler(straggler));
    let fela_pid = fela_metrics::per_iteration_delay(&fela_slow, &fela_base);

    let dp = fela_baselines::DpRuntime::default();
    let dp_base = dp.run(&base);
    let dp_slow = dp.run(&base.with_straggler(straggler));
    let dp_pid = fela_metrics::per_iteration_delay(&dp_slow, &dp_base);

    assert!(
        fela_pid < 0.85 * dp_pid,
        "Fela PID {fela_pid} should be well below DP's {dp_pid}"
    );
}

#[test]
fn larger_clusters_scale_throughput() {
    // Not a paper figure, but a sanity property of the whole stack: 16 nodes
    // outrun 4 nodes on the same workload.
    let mut small = Scenario::paper(zoo::vgg19(), 512).with_iterations(3);
    small.cluster = fela_cluster::ClusterSpec::k40c_cluster(4);
    let mut large = small.clone();
    large.cluster = fela_cluster::ClusterSpec::k40c_cluster(16);
    let fela4 = FelaRuntime::new(FelaConfig::new(3).with_weights(vec![1, 2, 4]));
    let at4 = fela4.run(&small).average_throughput();
    let at16 = fela4.run(&large).average_throughput();
    assert!(
        at16 > at4,
        "16 nodes ({at16}) should outrun 4 nodes ({at4})"
    );
}

#[test]
fn rpc_latency_matters_but_modestly() {
    // The paper claims the TS control plane is lightweight; a 10× latency bump
    // should cost well under 50% of throughput.
    let sc = Scenario::paper(zoo::vgg19(), 256).with_iterations(3);
    let mut slow_cfg = FelaConfig::new(3).with_weights(vec![1, 2, 4]);
    slow_cfg.rpc_latency = SimDuration::from_millis(1);
    let fast = FelaRuntime::new(FelaConfig::new(3).with_weights(vec![1, 2, 4])).run(&sc);
    let slow = FelaRuntime::new(slow_cfg).run(&sc);
    let ratio = fast.average_throughput() / slow.average_throughput();
    assert!(ratio < 1.5, "10× RPC latency cost {ratio}× — TS too hot");
    assert!(ratio >= 1.0 - 1e-9);
}
