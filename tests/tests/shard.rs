//! Shard-conformance suite: the sharded [`Coordinator`] is proved against the
//! monolithic [`TokenServer`] oracle.
//!
//! Three layers of evidence, mirroring how `IncrementalMaxMin` was proved
//! against `max_min_rates`:
//!
//! 1. **Lockstep churn** — both planes consume an identical random operation
//!    stream (requests, reports, syncs, crashes, restarts, lease expiries)
//!    across the policy matrix; every grant, sync spec, error and final
//!    [`ServerSnapshot`] must compare bit-for-bit.
//! 2. **Full-run byte identity** — complete simulated runs on zoo scenarios
//!    (including a faulted one) produce identical report JSON and
//!    event-for-event identical traces for `shards = 1` and `shards = k`.
//! 3. **Snapshot round-trips** — snapshot → restore → snapshot is
//!    bit-identical on both planes, and a restored plane *continues*
//!    identically to the original under the same suffix of operations.

use std::collections::BTreeMap;

use fela_cluster::{FaultModel, Scenario};
use fela_core::{
    Coordinator, FelaConfig, FelaRuntime, LevelMeta, RecoveryConfig, TokenId, TokenPlan,
    TokenServer,
};
use fela_model::{bin_partition, zoo, PartitionOptions, ThresholdProfile};
use fela_sim::{SimDuration, SimTime};
use proptest::prelude::*;

const N_WORKERS: usize = 8;
const BATCH: u64 = 128;
const ITERATIONS: u64 = 4;

/// vgg19/k40c partition: 3 sub-models, the testbed of the policy tests.
fn vgg_inputs(cfg: &FelaConfig) -> (TokenPlan, Vec<LevelMeta>) {
    let p = bin_partition(
        &zoo::vgg19(),
        &ThresholdProfile::k40c(),
        PartitionOptions::default(),
    );
    let plan = TokenPlan::build(&p, cfg, BATCH, N_WORKERS).expect("plan must be feasible");
    let meta = p
        .sub_models()
        .iter()
        .map(|s| LevelMeta {
            param_bytes: s.param_bytes,
            output_bytes_per_sample: s.output_bytes_per_sample,
            input_bytes_per_sample: s.input_bytes_per_sample,
            comm_intensive: s.comm_intensive,
        })
        .collect();
    (plan, meta)
}

fn build_cfg(hf: bool, ads: bool, ctd: bool, recovery: bool, shards: usize) -> FelaConfig {
    let mut cfg = FelaConfig::new(3)
        .with_weights(vec![1, 2, 4])
        .with_ads(ads)
        .with_hf(hf)
        .with_shards(shards);
    if ctd {
        cfg = cfg.with_ctd(4);
    }
    if recovery {
        cfg = cfg.with_recovery(RecoveryConfig::default());
    }
    cfg
}

/// Driver bookkeeping shared by both planes of a lockstep pair. Updated from
/// the first plane's results (the second must match bit-for-bit anyway).
struct Churn {
    /// Granted-but-unreported tokens: `(worker, token, attempt at grant)`.
    /// Entries can go stale after a revocation — both planes must then reject
    /// the report identically.
    outstanding: Vec<(usize, TokenId, u64)>,
    /// Emitted-but-unfinished syncs: `(level, iteration)`.
    syncs: Vec<(usize, u64)>,
    clock: u64,
    /// Per-op result log (grant essence excludes the timing-only conflict
    /// flag) — lets a restored pair's continuation be compared to the
    /// original's.
    log: Vec<String>,
}

impl Churn {
    fn new() -> Self {
        Churn {
            outstanding: Vec::new(),
            syncs: Vec::new(),
            clock: 0,
            log: Vec::new(),
        }
    }
}

/// One lockstep operation applied to two planes (any mix of `TokenServer` /
/// `Coordinator` — the APIs are identical, so a macro covers all pairings).
/// Asserts bit-equality of results and updates the shared driver state.
macro_rules! lockstep_op {
    ($a:expr, $b:expr, $st:expr, $action:expr, $pick:expr, $dt:expr) => {{
        $st.clock += $dt;
        let now = SimTime::from_nanos($st.clock);
        match $action % 6 {
            0 => {
                // Token request from a (possibly ineligible) worker.
                let w = $pick % N_WORKERS;
                let ra = $a.request(w, now);
                let rb = $b.request(w, now);
                assert_eq!(format!("{ra:?}"), format!("{rb:?}"), "request({w})");
                if let Ok(Some(g)) = &ra {
                    $st.outstanding.push((w, g.token.id, g.attempt));
                    $st.log.push(format!(
                        "req {w} {:?} {:?} {}",
                        g.token.id, g.fetches, g.attempt
                    ));
                } else {
                    $st.log.push(format!("req {w} none"));
                }
            }
            1 => {
                // Report an outstanding (possibly revoked → stale) grant.
                if !$st.outstanding.is_empty() {
                    let (w, t, _) = $st.outstanding.remove($pick % $st.outstanding.len());
                    let ra = $a.report(w, t);
                    let rb = $b.report(w, t);
                    assert_eq!(ra, rb, "report({w}, {t:?})");
                    if let Ok(specs) = &ra {
                        for s in specs {
                            $st.syncs.push((s.level, s.iteration));
                        }
                    }
                    $st.log.push(format!("rep {w} {t:?} {ra:?}"));
                }
            }
            2 => {
                // Finish an emitted sync barrier.
                if !$st.syncs.is_empty() {
                    let (level, iteration) = $st.syncs.remove($pick % $st.syncs.len());
                    let ra = $a.sync_finished(level, iteration);
                    let rb = $b.sync_finished(level, iteration);
                    assert_eq!(ra, rb, "sync_finished({level}, {iteration})");
                    $st.log.push(format!("sync {level} {iteration} {ra:?}"));
                }
            }
            3 => {
                // Toggle liveness: crash if alive, restart if dead.
                let w = $pick % N_WORKERS;
                if $a.is_alive(w) {
                    let ra = $a.worker_crashed(w);
                    let rb = $b.worker_crashed(w);
                    assert_eq!(ra, rb, "worker_crashed({w})");
                    $st.log.push(format!("crash {w} {ra:?}"));
                } else {
                    let ra = $a.worker_restarted(w);
                    let rb = $b.worker_restarted(w);
                    assert_eq!(ra, rb, "worker_restarted({w})");
                    $st.log.push(format!("restart {w} {ra:?}"));
                }
            }
            4 => {
                // Expire an outstanding lease (no-op stale timer without
                // recovery, or after the lease already moved on).
                if !$st.outstanding.is_empty() {
                    let (_, t, attempt) = $st.outstanding[$pick % $st.outstanding.len()];
                    let ra = $a.lease_expired(t, attempt);
                    let rb = $b.lease_expired(t, attempt);
                    assert_eq!(ra, rb, "lease_expired({t:?}, {attempt})");
                    $st.log.push(format!("expire {t:?} {ra:?}"));
                }
            }
            _ => {
                // Serve the waiting queue.
                let ra = $a.pop_ready_grant(now);
                let rb = $b.pop_ready_grant(now);
                assert_eq!(format!("{ra:?}"), format!("{rb:?}"), "pop_ready_grant");
                if let Ok(Some((w, g))) = &ra {
                    $st.outstanding.push((*w, g.token.id, g.attempt));
                    $st.log.push(format!(
                        "pop {w} {:?} {:?} {}",
                        g.token.id, g.fetches, g.attempt
                    ));
                } else {
                    $st.log.push("pop none".to_string());
                }
            }
        }
    }};
}

proptest! {
    /// Oracle vs sharded coordinator under random churn across the policy
    /// matrix: every grant, sync, error, liveness transition and the final
    /// snapshot must be bit-identical.
    #[test]
    fn sharded_plane_matches_oracle_under_churn(
        shards in 2usize..4,
        hf in 0u8..2,
        ads in 0u8..2,
        ctd in 0u8..2,
        recovery in 0u8..2,
        ops in prop::collection::vec(
            (0u8..6, 0usize..64, 1u64..20_000_000),
            1..120,
        ),
    ) {
        let cfg = build_cfg(hf == 1, ads == 1, ctd == 1, recovery == 1, shards);
        let (plan, meta) = vgg_inputs(&cfg);
        let mut oracle =
            TokenServer::new(plan.clone(), cfg.clone(), meta.clone(), N_WORKERS, ITERATIONS);
        let mut sharded = Coordinator::new(plan, cfg, meta, N_WORKERS, ITERATIONS);
        prop_assert_eq!(sharded.shard_count(), shards.min(3));
        let mut st = Churn::new();
        for &(action, pick, dt) in &ops {
            lockstep_op!(oracle, sharded, st, action, pick, dt);
        }
        prop_assert_eq!(oracle.snapshot(), sharded.snapshot());
        prop_assert_eq!(
            format!("{:?}", oracle.stats()),
            format!("{:?}", sharded.stats())
        );
        prop_assert_eq!(oracle.trained_per_worker(), sharded.trained_per_worker());
        prop_assert_eq!(
            oracle.completed_iterations(),
            sharded.completed_iterations()
        );
    }

    /// Snapshot → restore → snapshot round-trips bit-identically on *both*
    /// planes, and the restored pair continues exactly like the original under
    /// the same operation suffix (timing-only conflict state excluded: suffix
    /// steps outlast the lock window).
    #[test]
    fn snapshot_round_trips_and_continues_identically(
        shards in 2usize..4,
        hf in 0u8..2,
        recovery in 0u8..2,
        prefix in prop::collection::vec((0u8..6, 0usize..64), 1..60),
        suffix in prop::collection::vec((0u8..6, 0usize..64), 1..40),
    ) {
        let cfg = build_cfg(hf == 1, true, false, recovery == 1, shards);
        let (plan, meta) = vgg_inputs(&cfg);
        let mut oracle =
            TokenServer::new(plan.clone(), cfg.clone(), meta.clone(), N_WORKERS, ITERATIONS);
        let mut sharded =
            Coordinator::new(plan.clone(), cfg.clone(), meta.clone(), N_WORKERS, ITERATIONS);
        // Steps outlast the 5 ms lock window so no grant ever conflicts:
        // `last_grant_at` is deliberately absent from snapshots.
        const DT: u64 = 10_000_000;
        let mut st = Churn::new();
        for &(action, pick) in &prefix {
            lockstep_op!(oracle, sharded, st, action, pick, DT);
        }
        let snap = oracle.snapshot();
        prop_assert_eq!(&snap, &sharded.snapshot());

        let mut restored_oracle = TokenServer::restore(
            plan.clone(),
            cfg.clone(),
            meta.clone(),
            N_WORKERS,
            ITERATIONS,
            oracle.tokens().clone(),
            &snap,
        )
        .expect("oracle restore");
        prop_assert_eq!(&restored_oracle.snapshot(), &snap, "oracle round-trip");
        let mut restored_sharded = Coordinator::restore(
            plan,
            cfg,
            meta,
            N_WORKERS,
            ITERATIONS,
            sharded.tokens().clone(),
            &snap,
        )
        .expect("sharded restore");
        prop_assert_eq!(&restored_sharded.snapshot(), &snap, "sharded round-trip");

        // Continuation: the restored pair must replay the original pair's
        // future behaviour op for op.
        let mut orig = Churn::new();
        orig.clock = st.clock;
        let mut rest = Churn::new();
        rest.clock = st.clock;
        for &(action, pick) in &suffix {
            lockstep_op!(oracle, sharded, orig, action, pick, DT);
            lockstep_op!(restored_oracle, restored_sharded, rest, action, pick, DT);
        }
        prop_assert_eq!(&orig.log, &rest.log, "restored continuation diverged");
        prop_assert_eq!(oracle.snapshot(), restored_oracle.snapshot());
        prop_assert_eq!(sharded.snapshot(), restored_sharded.snapshot());
    }
}

/// The zoo configurations the CI `shard-conformance` job byte-diffs, one of
/// them faulted (crash + restart mid-run).
fn conformance_scenarios() -> Vec<(&'static str, FelaConfig, Scenario)> {
    let fault = FaultModel::Scripted {
        worker: 2,
        iteration: 1,
        kind: fela_cluster::FaultKind::CrashRestart {
            down: SimDuration::from_secs(2),
        },
    };
    vec![
        (
            "vgg19",
            FelaConfig::new(3).with_weights(vec![1, 2, 4]),
            Scenario::paper(zoo::vgg19(), 128).with_iterations(3),
        ),
        (
            "googlenet-ctd",
            FelaConfig::new(3).with_weights(vec![1, 2, 4]).with_ctd(4),
            Scenario::paper(zoo::googlenet(), 256).with_iterations(3),
        ),
        (
            "vgg19-faulted",
            FelaConfig::new(3).with_weights(vec![1, 2, 4]),
            Scenario::paper(zoo::vgg19(), 256)
                .with_iterations(4)
                .with_fault(fault),
        ),
    ]
}

/// Complete simulated runs are byte-identical between the monolithic and
/// sharded planes: same report JSON (makespan bits included), same trace
/// event for event — on every conformance scenario, including the faulted one.
#[test]
fn sharded_full_runs_are_byte_identical_to_oracle() {
    for (name, cfg, sc) in conformance_scenarios() {
        let (report1, trace1) = FelaRuntime::new(cfg.clone()).run_traced(&sc);
        for shards in [2usize, 3] {
            let sharded_cfg = cfg.clone().with_shards(shards);
            let (report_k, trace_k) = FelaRuntime::new(sharded_cfg).run_traced(&sc);
            assert_eq!(
                serde_json::to_string(&report1).expect("report json"),
                serde_json::to_string(&report_k).expect("report json"),
                "{name}: report bytes diverged at shards={shards}"
            );
            assert_eq!(
                trace1.events(),
                trace_k.events(),
                "{name}: trace diverged at shards={shards}"
            );
        }
    }
}

/// `fela-check` applies to sharded traces unchanged: the race detector and
/// the recovery verifier were written against single-server traces, and byte
/// conformance means they accept sharded ones as-is.
#[test]
fn fela_check_accepts_sharded_traces_unchanged() {
    for (name, cfg, sc) in conformance_scenarios() {
        let staleness = cfg.staleness;
        let (_, trace) = FelaRuntime::new(cfg.with_shards(3)).run_traced(&sc);
        let summary = fela_check::check_trace(&trace, staleness)
            .unwrap_or_else(|v| panic!("{name}: race check rejected a sharded trace: {v:?}"));
        assert!(summary.grants > 0, "{name}: sharded trace carries grants");
        let recovery = fela_check::check_recovery(&trace)
            .unwrap_or_else(|v| panic!("{name}: recovery check rejected a sharded trace: {v:?}"));
        assert_eq!(
            recovery.applied, summary.completions,
            "{name}: every completion applied exactly once"
        );
    }
}

/// The restore path rejects nothing it produced: a snapshot taken mid-run on
/// a faulted scenario still restores on both planes. (Deterministic spot
/// check complementing the proptest above: exercises parked tokens and
/// quarantine state reached through the full simulator.)
#[test]
fn faulted_mid_run_snapshot_restores_on_both_planes() {
    let cfg = build_cfg(true, true, false, true, 3);
    let (plan, meta) = vgg_inputs(&cfg);
    let mut oracle = TokenServer::new(
        plan.clone(),
        cfg.clone(),
        meta.clone(),
        N_WORKERS,
        ITERATIONS,
    );
    let mut sharded = Coordinator::new(plan.clone(), cfg.clone(), meta.clone(), N_WORKERS, 4);
    let mut st = Churn::new();
    // Grant a round, crash two workers (one holding leases), expire a lease.
    for w in 0..N_WORKERS {
        lockstep_op!(oracle, sharded, st, 0, w, 10_000_000);
    }
    lockstep_op!(oracle, sharded, st, 3, 2, 10_000_000);
    lockstep_op!(oracle, sharded, st, 3, 5, 10_000_000);
    lockstep_op!(oracle, sharded, st, 4, 0, 10_000_000);
    lockstep_op!(oracle, sharded, st, 1, 1, 10_000_000);
    let snap = oracle.snapshot();
    assert_eq!(&snap, &sharded.snapshot());
    let tokens: BTreeMap<TokenId, _> = oracle.tokens().clone();
    let r1 = TokenServer::restore(
        plan.clone(),
        cfg.clone(),
        meta.clone(),
        N_WORKERS,
        ITERATIONS,
        tokens.clone(),
        &snap,
    )
    .expect("oracle restore");
    let r2 = Coordinator::restore(plan, cfg, meta, N_WORKERS, ITERATIONS, tokens, &snap)
        .expect("sharded restore");
    assert_eq!(r1.snapshot(), snap);
    assert_eq!(r2.snapshot(), snap);
}

/// Drives a fresh plane into a state with a non-empty waiting queue and
/// servable tokens: one grant per worker, a starved second request that
/// queues every worker, then reports that release the next level's tokens.
macro_rules! starve_then_release {
    ($p:expr) => {{
        let mut clock = 0u64;
        let mut granted = Vec::new();
        for w in 0..N_WORKERS {
            clock += 1_000;
            let g = $p
                .request(w, SimTime::from_nanos(clock))
                .expect("request")
                .expect("the first round must grant");
            granted.push((w, g.token.id));
        }
        for w in 0..N_WORKERS {
            clock += 1_000;
            let g = $p.request(w, SimTime::from_nanos(clock)).expect("request");
            assert!(g.is_none(), "second request must starve into the queue");
        }
        for (w, t) in granted {
            clock += 1_000;
            for s in $p.report(w, t).expect("report") {
                $p.sync_finished(s.level, s.iteration).expect("sync");
            }
        }
        clock + 1_000
    }};
}

/// The batched grant path (`drain_ready_grants`) must be observably identical
/// to the one-at-a-time `pop_ready_grant`-until-`None` loop — same grants in
/// the same order, same stats — on both the oracle and the sharded plane.
#[test]
fn drain_ready_grants_matches_repeated_pop_on_both_planes() {
    for shards in [1usize, 3] {
        let cfg = build_cfg(true, true, false, false, shards);
        let (plan, meta) = vgg_inputs(&cfg);
        let mut drained = Coordinator::new(
            plan.clone(),
            cfg.clone(),
            meta.clone(),
            N_WORKERS,
            ITERATIONS,
        );
        let mut popped = Coordinator::new(
            plan.clone(),
            cfg.clone(),
            meta.clone(),
            N_WORKERS,
            ITERATIONS,
        );
        let mut oracle = TokenServer::new(plan, cfg, meta, N_WORKERS, ITERATIONS);

        let clock = starve_then_release!(drained);
        assert_eq!(clock, starve_then_release!(popped));
        assert_eq!(clock, starve_then_release!(oracle));
        let now = SimTime::from_nanos(clock);

        let mut batch = Vec::new();
        drained.drain_ready_grants(now, &mut batch).expect("drain");
        let mut singles = Vec::new();
        while let Some(pair) = popped.pop_ready_grant(now).expect("pop") {
            singles.push(pair);
        }
        let mut oracle_batch = Vec::new();
        oracle
            .drain_ready_grants(now, &mut oracle_batch)
            .expect("oracle drain");

        assert!(
            !batch.is_empty(),
            "the scenario must exercise a non-empty drain (shards = {shards})"
        );
        assert_eq!(format!("{batch:?}"), format!("{singles:?}"));
        assert_eq!(format!("{batch:?}"), format!("{oracle_batch:?}"));
        assert_eq!(
            format!("{:?}", drained.stats()),
            format!("{:?}", popped.stats()),
            "stats must not diverge between the batched and single-pop paths"
        );
        assert_eq!(drained.snapshot(), popped.snapshot());
    }
}
