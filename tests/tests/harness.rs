//! Harness guarantees: parallel sweeps are byte-identical to sequential ones,
//! and a fixed seed pins the full JSONL record stream.

use fela_baselines::{DpRuntime, HpRuntime, MpRuntime};
use fela_cluster::{Scenario, StragglerModel};
use fela_core::{FelaConfig, FelaRuntime};
use fela_harness::{to_jsonl, SweepSpec};
use fela_model::zoo;
use fela_sim::SimDuration;
use proptest::prelude::*;

/// A small but non-trivial sweep: 4 runtimes × 3 scenarios, stragglers on.
fn demo_sweep(seed: Option<u64>) -> SweepSpec {
    let straggler = StragglerModel::Probabilistic {
        p: 0.3,
        delay: SimDuration::from_secs(3),
        seed: 7,
    };
    let mut spec = SweepSpec::new("harness_demo")
        .runtime("fela", |_| {
            Box::new(FelaRuntime::new(
                FelaConfig::new(3).with_weights(vec![1, 2, 4]),
            ))
        })
        .runtime("dp", |_| Box::new(DpRuntime::default()))
        .runtime("mp", |_| Box::new(MpRuntime::default()))
        .runtime("hp", |_| Box::new(HpRuntime))
        .with_seed(seed);
    for batch in [64u64, 128, 256] {
        spec = spec.scenario(
            format!("b{batch}"),
            Scenario::paper(zoo::googlenet(), batch)
                .with_iterations(4)
                .with_straggler(straggler),
        );
    }
    spec
}

#[test]
fn expansion_is_scenario_major_and_indexed() {
    let jobs = demo_sweep(None).expand();
    assert_eq!(jobs.len(), 12);
    for (i, job) in jobs.iter().enumerate() {
        assert_eq!(job.index, i);
    }
    assert_eq!(jobs[0].runtime, "fela");
    assert_eq!(jobs[0].scenario_label, "b64");
    assert_eq!(jobs[3].runtime, "hp");
    assert_eq!(jobs[3].scenario_label, "b64");
    assert_eq!(jobs[4].runtime, "fela");
    assert_eq!(jobs[4].scenario_label, "b128");
}

#[test]
fn seed_override_rewrites_probabilistic_stragglers_only() {
    let jobs = demo_sweep(Some(99)).expand();
    for job in &jobs {
        match job.scenario.straggler {
            StragglerModel::Probabilistic { seed, .. } => assert_eq!(seed, 99),
            other => panic!("unexpected straggler {other:?}"),
        }
        assert_eq!(job.scenario.iterations, 4);
    }
}

#[test]
fn same_seed_means_identical_jsonl_bytes() {
    let a = to_jsonl(&demo_sweep(Some(5)).run(2).records);
    let b = to_jsonl(&demo_sweep(Some(5)).run(3).records);
    assert!(!a.is_empty());
    assert_eq!(a.as_bytes(), b.as_bytes());
    // A different seed must change the straggler realisation and the stream.
    let c = to_jsonl(&demo_sweep(Some(6)).run(2).records);
    assert_ne!(a.as_bytes(), c.as_bytes());
}

/// Regression test for the artifact path itself: two identical seeded sweeps,
/// written through `write_jsonl_to`, land byte-identical files on disk. This
/// pins the full serialisation pipeline (record order, field order, float
/// formatting, trailing newline), not just the in-memory string.
#[test]
fn written_artifacts_are_byte_identical_across_runs() {
    let base = std::env::temp_dir().join(format!("fela-harness-regr-{}", std::process::id()));
    let dir_a = base.join("a");
    let dir_b = base.join("b");

    let path_a =
        fela_harness::write_jsonl_to(&dir_a, "regr", &demo_sweep(Some(5)).run(2).records).unwrap();
    let path_b =
        fela_harness::write_jsonl_to(&dir_b, "regr", &demo_sweep(Some(5)).run(4).records).unwrap();
    let bytes_a = std::fs::read(&path_a).unwrap();
    let bytes_b = std::fs::read(&path_b).unwrap();
    assert!(!bytes_a.is_empty());
    assert_eq!(
        bytes_a, bytes_b,
        "identical sweeps must write identical bytes"
    );
    assert_eq!(
        bytes_a.iter().filter(|&&b| b == b'\n').count(),
        12,
        "one line per run, newline-terminated"
    );

    let _ = std::fs::remove_dir_all(&base);
}

/// The control-plane shard count as a sweep axis: `fela[s=1]` is the
/// monolithic Token Server, `fela[s=2]`/`fela[s=3]` the sharded coordinator.
/// Schedules are byte-identical across the axis (proved token-by-token in
/// `tests/shard.rs`), so every record of one scenario must agree on the
/// report — the axis varies control-plane *cost*, never the schedule.
#[test]
fn shard_axis_sweeps_are_report_identical_across_planes() {
    let straggler = StragglerModel::Probabilistic {
        p: 0.3,
        delay: SimDuration::from_secs(3),
        seed: 7,
    };
    let mut spec = SweepSpec::new("shard_axis").with_seed(Some(11));
    for shards in 1usize..=3 {
        spec = spec.runtime(format!("fela[s={shards}]"), move |_| {
            Box::new(FelaRuntime::new(
                FelaConfig::new(3)
                    .with_weights(vec![1, 2, 4])
                    .with_shards(shards),
            ))
        });
    }
    for batch in [64u64, 256] {
        spec = spec.scenario(
            format!("b{batch}"),
            Scenario::paper(zoo::googlenet(), batch)
                .with_iterations(4)
                .with_straggler(straggler),
        );
    }
    let result = spec.run(3);
    assert_eq!(result.records.len(), 6);
    for scenario in ["b64", "b256"] {
        let rows = result.scenario_records(scenario);
        assert_eq!(rows.len(), 3);
        let reference = serde_json::to_string(&rows[0].report).unwrap();
        for row in &rows[1..] {
            assert_eq!(
                serde_json::to_string(&row.report).unwrap(),
                reference,
                "{scenario}: {} diverged from {}",
                row.runtime,
                rows[0].runtime
            );
        }
    }
}

#[test]
fn records_carry_scenario_coordinates_and_config_hash() {
    let result = demo_sweep(Some(5)).run(4);
    assert_eq!(result.records.len(), 12);
    for record in &result.records {
        assert_eq!(record.experiment, "harness_demo");
        assert_eq!(record.model, "GoogleNet");
        assert_eq!(record.nodes, 8);
        assert_eq!(record.seed, Some(5));
        assert!(record.sim_time_secs > 0.0);
        assert_eq!(record.sim_time_secs, record.report.total_time_secs);
    }
    // Same scenario ⇒ same config hash across runtimes; different batch ⇒
    // different hash.
    let b64: Vec<_> = result.scenario_records("b64");
    assert_eq!(b64.len(), 4);
    assert!(b64.iter().all(|r| r.config_hash == b64[0].config_hash));
    let b128 = result.scenario_records("b128");
    assert_ne!(b64[0].config_hash, b128[0].config_hash);
}

#[test]
fn records_roundtrip_through_json() {
    let result = demo_sweep(None).run(2);
    let line = serde_json::to_string(&result.records[0]).unwrap();
    let back: fela_harness::RunRecord = serde_json::from_str(&line).unwrap();
    assert_eq!(back.runtime, result.records[0].runtime);
    assert_eq!(back.config_hash, result.records[0].config_hash);
    assert_eq!(back.report.total_time_secs, result.records[0].sim_time_secs);
    assert_eq!(serde_json::to_string(&back).unwrap(), line);
}

proptest! {
    /// The harness's core guarantee, property-tested: for any straggler
    /// scenario, batch and job count, the parallel record stream is
    /// byte-identical to the sequential one.
    #[test]
    fn parallel_equals_sequential(
        jobs in 2usize..8,
        batch in prop_oneof![Just(64u64), Just(128), Just(256)],
        straggler in prop_oneof![
            Just(StragglerModel::None),
            Just(StragglerModel::RoundRobin { delay: SimDuration::from_secs(2) }),
            Just(StragglerModel::Probabilistic {
                p: 0.25,
                delay: SimDuration::from_secs(2),
                seed: 3,
            }),
        ],
    ) {
        let build = || {
            SweepSpec::new("prop")
                .runtime("fela", |_| {
                    Box::new(FelaRuntime::new(
                        FelaConfig::new(3).with_weights(vec![1, 1, 2]),
                    ))
                })
                .runtime("dp", |_| Box::new(DpRuntime::default()))
                .scenario(
                    "s",
                    Scenario::paper(zoo::googlenet(), batch)
                        .with_iterations(3)
                        .with_straggler(straggler),
                )
        };
        let sequential = to_jsonl(&build().run(1).records);
        let parallel = to_jsonl(&build().run(jobs).records);
        prop_assert_eq!(sequential.as_bytes(), parallel.as_bytes());
    }
}
