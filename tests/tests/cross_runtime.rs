//! Cross-runtime integration tests: every runtime executes the same scenarios
//! and must satisfy the invariants the paper's comparison rests on.

use fela_baselines::{DpRuntime, HpRuntime, MpRuntime};
use fela_cluster::{Scenario, StragglerModel, TrainingRuntime};
use fela_core::{FelaConfig, FelaRuntime};
use fela_metrics::RunReport;
use fela_model::zoo;
use fela_sim::SimDuration;

fn runtimes() -> Vec<Box<dyn TrainingRuntime>> {
    vec![
        Box::new(FelaRuntime::new(
            FelaConfig::new(3).with_weights(vec![1, 2, 4]),
        )),
        Box::new(DpRuntime::default()),
        Box::new(MpRuntime::default()),
        Box::new(HpRuntime),
    ]
}

fn scenario(batch: u64, iters: u64) -> Scenario {
    Scenario::paper(zoo::vgg19(), batch).with_iterations(iters)
}

#[test]
fn every_runtime_completes_the_same_scenario() {
    let sc = scenario(128, 3);
    for rt in runtimes() {
        let r = rt.run(&sc);
        assert_eq!(r.iterations, 3, "{} iterations", rt.name());
        assert_eq!(r.per_iteration_secs.len(), 3, "{}", rt.name());
        assert!(r.total_time_secs > 0.0, "{}", rt.name());
        assert!(r.average_throughput() > 0.0, "{}", rt.name());
        let sum: f64 = r.per_iteration_secs.iter().sum();
        assert!(
            (sum - r.total_time_secs).abs() < 1e-6 * r.total_time_secs,
            "{}: per-iteration times must add up to the total",
            rt.name()
        );
    }
}

#[test]
fn every_runtime_is_deterministic() {
    let sc = scenario(128, 2).with_straggler(StragglerModel::Probabilistic {
        p: 0.3,
        delay: SimDuration::from_secs(2),
        seed: 99,
    });
    for rt in runtimes() {
        let a = rt.run(&sc);
        let b = rt.run(&sc);
        assert_eq!(a.total_time_secs, b.total_time_secs, "{}", rt.name());
        assert_eq!(a.network_bytes, b.network_bytes, "{}", rt.name());
        assert_eq!(a.per_iteration_secs, b.per_iteration_secs, "{}", rt.name());
    }
}

#[test]
fn stragglers_never_speed_anything_up() {
    let base = scenario(128, 4);
    let slow = base.clone().with_straggler(StragglerModel::RoundRobin {
        delay: SimDuration::from_secs(3),
    });
    for rt in runtimes() {
        let b = rt.run(&base);
        let s = rt.run(&slow);
        assert!(
            s.total_time_secs >= b.total_time_secs - 1e-9,
            "{}: straggler run faster than baseline?!",
            rt.name()
        );
    }
}

#[test]
fn fela_beats_every_baseline_on_the_paper_workloads() {
    // The headline of Figure 8, checked at one representative point per model.
    for (model, batch) in [(zoo::vgg19(), 256), (zoo::googlenet(), 256)] {
        let sc = Scenario::paper(model, batch).with_iterations(5);
        let fela = FelaRuntime::new(FelaConfig::new(3).with_weights(vec![1, 1, 2]))
            .run(&sc)
            .average_throughput();
        for rt in [
            Box::new(DpRuntime::default()) as Box<dyn TrainingRuntime>,
            Box::new(MpRuntime::default()),
            Box::new(HpRuntime),
        ] {
            let at = rt.run(&sc).average_throughput();
            assert!(
                fela > at,
                "{}: Fela {fela} must beat {} {at}",
                sc.model.name,
                rt.name()
            );
        }
    }
}

#[test]
fn hp_dp_crossover_matches_figure8() {
    // HP beats DP at small batch; DP overtakes at large batch (§V-C1).
    let small = scenario(64, 3);
    let large = scenario(1024, 3);
    let hp_small = HpRuntime.run(&small).average_throughput();
    let dp_small = DpRuntime::default().run(&small).average_throughput();
    let hp_large = HpRuntime.run(&large).average_throughput();
    let dp_large = DpRuntime::default().run(&large).average_throughput();
    assert!(
        hp_small > dp_small,
        "HP {hp_small} vs DP {dp_small} at batch 64"
    );
    assert!(
        dp_large > hp_large,
        "DP {dp_large} vs HP {hp_large} at batch 1024"
    );
}

#[test]
fn mp_is_last_under_bsp() {
    let sc = scenario(256, 3);
    let mp = MpRuntime::default().run(&sc).average_throughput();
    for rt in [
        Box::new(DpRuntime::default()) as Box<dyn TrainingRuntime>,
        Box::new(HpRuntime),
    ] {
        assert!(rt.run(&sc).average_throughput() > mp, "{} vs MP", rt.name());
    }
}

#[test]
fn fela_pid_beats_dp_and_hp_under_stragglers() {
    let base = scenario(256, 5);
    let slow = base.clone().with_straggler(StragglerModel::RoundRobin {
        delay: SimDuration::from_secs(6),
    });
    let pid = |rt: &dyn TrainingRuntime| {
        let b: RunReport = rt.run(&base);
        let s = rt.run(&slow);
        fela_metrics::per_iteration_delay(&s, &b)
    };
    let fela = FelaRuntime::new(FelaConfig::new(3).with_weights(vec![1, 2, 4]));
    let fela_pid = pid(&fela);
    assert!(
        fela_pid < pid(&DpRuntime::default()),
        "Fela PID {fela_pid} vs DP"
    );
    assert!(fela_pid < pid(&HpRuntime), "Fela PID {fela_pid} vs HP");
}

#[test]
fn network_traffic_ordering_matches_the_paper_story() {
    // Fela with CTD ships fewer bytes than DP's full-model all-reduce. (MP ships
    // no parameters at all, but its per-micro-batch boundary activations on a
    // FLOP-balanced VGG19 split are enormous — a known pipeline-parallel cost —
    // so no MP-vs-DP byte ordering is asserted.)
    let sc = scenario(256, 3);
    let dp = DpRuntime::default().run(&sc).network_bytes;
    let fela = FelaRuntime::new(FelaConfig::new(3).with_weights(vec![1, 2, 4]).with_ctd(2))
        .run(&sc)
        .network_bytes;
    assert!(fela < dp, "Fela {fela} vs DP {dp}");
    // DP's traffic is batch-independent; MP's grows with the batch.
    let sc_small = scenario(64, 3);
    let mp_small = MpRuntime::default().run(&sc_small).network_bytes;
    let mp_large = MpRuntime::default().run(&sc).network_bytes;
    assert!(mp_large > 3 * mp_small, "MP traffic must scale with batch");
}

#[test]
fn equal_samples_processed_by_all_runtimes() {
    // Token conservation: Fela trains exactly total_batch samples per iteration
    // at every level.
    let sc = scenario(128, 4);
    let fela = FelaRuntime::new(FelaConfig::new(3).with_weights(vec![1, 2, 4]));
    let r = fela.run(&sc);
    // n = (8, 4, 2) tokens/iter → 14 per iteration.
    assert_eq!(r.counter("grants"), 14 * 4);
    let trained: u64 = (0..8)
        .map(|w| r.counter(&format!("tokens_worker{w}")))
        .sum();
    assert_eq!(trained, 14 * 4);
}

#[test]
fn heterogeneous_cluster_is_supported() {
    // A persistently 2× slower node: Fela redistributes, DP just waits for it.
    let mut sc = scenario(256, 4);
    sc.cluster.speed_factors[3] = 2.0;
    let fela = FelaRuntime::new(FelaConfig::new(3).with_weights(vec![1, 2, 4])).run(&sc);
    let dp = DpRuntime::default().run(&sc);
    assert!(fela.average_throughput() > dp.average_throughput());
    // The slow worker trains fewer tokens than the fast ones.
    let slow = fela.counter("tokens_worker3");
    let fast = fela.counter("tokens_worker0");
    assert!(
        slow < fast,
        "slow worker trained {slow} tokens vs fast {fast} — no rebalancing?"
    );
}
