//! Integration tests for `fela-check`: every paper configuration's schedule
//! DAG verifies across the policy matrix, and seeded mutations of a valid DAG
//! produce distinct, accurate diagnostics.

use fela_check::{verify_config, CheckError, DagViolation, Mutation, ScheduleDag};
use fela_core::{FelaConfig, TokenPlan};
use fela_model::{bin_partition, zoo, Partition, PartitionOptions, ThresholdProfile};
use proptest::prelude::*;

fn paper_partition(name: &str) -> Partition {
    let model = zoo::build_by_name(name).expect("zoo model");
    bin_partition(
        &model,
        &ThresholdProfile::k40c(),
        PartitionOptions::default(),
    )
}

/// The policy presets `fela check --all` sweeps, as config transformers.
fn policy_config(policy: usize, m: usize) -> FelaConfig {
    let base = FelaConfig::new(m);
    match policy {
        0 => base.with_ads(false).with_hf(false), // no optimisation
        1 => base.with_hf(false),                 // ADS only
        2 => base.with_ads(false),                // HF only
        3 => base.with_ctd(4),                    // CTD on half the 8-node cluster
        _ => base,                                // full Fela
    }
}

proptest! {
    /// Every zoo model × policy preset × Phase-1 candidate weight vector either
    /// has no feasible token plan (small batches) or produces a schedule DAG
    /// that satisfies every invariant. No configuration reachable from the
    /// tuner may be scheduled incorrectly.
    #[test]
    fn zoo_policy_matrix_verifies(
        model_idx in 0usize..zoo::TABLE_I.len(),
        policy in 0usize..5,
        cand_pick in 0usize..64,
        batch_exp in 6u32..11, // 64..=1024
    ) {
        let info = &zoo::TABLE_I[model_idx];
        // CUImage and SENet appear in Table I but have no layer-level builder.
        if zoo::build_by_name(info.name).is_some() {
            let partition = paper_partition(info.name);
            let m = partition.len();
            let candidates = fela_tuning::phase1_candidates(m, 8);
            let weights = candidates[cand_pick % candidates.len()].clone();
            let cfg = policy_config(policy, m).with_weights(weights.clone());
            cfg.validate(8);
            match verify_config(&partition, &cfg, 1u64 << batch_exp, 8, 2) {
                Ok(summary) => {
                    prop_assert!(summary.train_tokens > 0);
                    prop_assert!(summary.edges >= summary.train_tokens);
                }
                Err(CheckError::Plan(_)) => {} // infeasible combo, not a schedule bug
                Err(CheckError::Dag(v)) => {
                    panic!("{} policy {policy} weights {weights:?}: {v:?}", info.name);
                }
            }
        }
    }

    /// SSP staleness never breaks verification: relaxing the barrier only
    /// removes constraints from the DAG.
    #[test]
    fn staleness_preserves_validity(staleness in 0u64..4) {
        let partition = paper_partition("VGG19");
        let cfg = FelaConfig::new(partition.len())
            .with_weights(vec![1, 2, 4])
            .with_staleness(staleness);
        let summary = verify_config(&partition, &cfg, 256, 8, 3);
        prop_assert!(summary.is_ok(), "{:?}", summary.err());
    }
}

fn valid_dag() -> ScheduleDag {
    let partition = paper_partition("VGG19");
    let cfg = FelaConfig::new(partition.len()).with_weights(vec![1, 2, 4]);
    let plan = TokenPlan::build(&partition, &cfg, 128, 8).expect("feasible plan");
    ScheduleDag::build(&plan, &cfg, 8, 2)
}

/// Each seeded corruption is caught, and each corruption class maps to its own
/// diagnostic — the verifier localises the bug instead of reporting a generic
/// failure.
#[test]
fn mutations_are_caught_with_distinct_diagnostics() {
    for seed in 0..8u64 {
        let mut dropped = valid_dag();
        dropped.mutate(Mutation::DropDependencyEdge { seed });
        let violations = dropped.verify().expect_err("dropped edge must be caught");
        assert!(
            violations
                .iter()
                .any(|v| matches!(v, DagViolation::MissingDependency { .. })
                    || matches!(v, DagViolation::GradientDominance { .. })
                    || matches!(v, DagViolation::BarrierViolation { .. })),
            "seed {seed}: {violations:?}"
        );

        let mut duplicated = valid_dag();
        duplicated.mutate(Mutation::DuplicateToken { seed });
        let violations = duplicated.verify().expect_err("duplicate must be caught");
        assert!(
            violations
                .iter()
                .any(|v| matches!(v, DagViolation::DuplicateToken { .. })),
            "seed {seed}: {violations:?}"
        );

        let mut crossed = valid_dag();
        crossed.mutate(Mutation::CrossIterationEdge { seed });
        let violations = crossed
            .verify()
            .expect_err("cross-iteration edge must be caught");
        assert!(
            violations
                .iter()
                .any(|v| matches!(v, DagViolation::CrossIterationEdge { .. })
                    || matches!(v, DagViolation::Cycle { .. })),
            "seed {seed}: {violations:?}"
        );
    }
}

/// The real simulator's traces pass the race detector for every policy ablation
/// — static and dynamic verification agree on the paper testbed.
#[test]
fn traced_runs_are_race_free_across_policies() {
    use fela_cluster::Scenario;
    use fela_core::FelaRuntime;

    let configs = [
        FelaConfig::new(3).with_weights(vec![1, 2, 4]),
        FelaConfig::new(3)
            .with_weights(vec![1, 2, 4])
            .with_ads(false),
        FelaConfig::new(3)
            .with_weights(vec![1, 2, 4])
            .with_hf(false),
        FelaConfig::new(3).with_weights(vec![1, 2, 4]).with_ctd(4),
        FelaConfig::new(3)
            .with_weights(vec![1, 1, 1])
            .with_staleness(1),
    ];
    for cfg in configs {
        let staleness = cfg.staleness;
        let sc = Scenario::paper(zoo::vgg19(), 128).with_iterations(3);
        let (_, trace) = FelaRuntime::new(cfg).run_traced(&sc);
        let summary = fela_check::check_trace(&trace, staleness)
            .unwrap_or_else(|v| panic!("race violations: {v:?}"));
        assert!(summary.grants > 0);
        assert_eq!(summary.grants, summary.completions);
    }
}

/// The exhaustive small-config schedule space is safe and convergent — the
/// same check CI runs via `fela check --all`.
#[test]
fn exhaustive_small_config_schedules_converge() {
    let outcome = fela_check::exhaustive_schedule_check(0);
    assert!(outcome.violations.is_empty(), "{:?}", outcome.violations);
    assert!(
        outcome.schedules.len() > 1,
        "BSP small config must admit multiple interleavings"
    );
    assert!(!outcome.truncated);
}
