//! End-to-end fault-tolerance guarantees: chaos sweeps stay byte-identical
//! across job counts, a crash-free fault model changes nothing, and recovered
//! runs apply every micro-batch gradient exactly once (proved by fela-check).

use fela_baselines::{DpRuntime, HpRuntime, MpRuntime};
use fela_cluster::{FaultKind, FaultModel, Scenario, TrainingRuntime};
use fela_core::{FelaConfig, FelaRuntime};
use fela_harness::{to_jsonl, SweepSpec};
use fela_model::zoo;
use fela_sim::SimDuration;

fn fela() -> FelaRuntime {
    FelaRuntime::new(FelaConfig::new(3).with_weights(vec![1, 2, 4]))
}

fn scenario(batch: u64) -> Scenario {
    Scenario::paper(zoo::googlenet(), batch).with_iterations(4)
}

fn chaos(p: f64) -> FaultModel {
    FaultModel::Chaos {
        p,
        down: SimDuration::from_secs(4),
        seed: 11,
    }
}

/// 4 runtimes × 3 batches under crash-restart churn.
fn chaos_sweep(seed: Option<u64>) -> SweepSpec {
    let mut spec = SweepSpec::new("recovery_demo")
        .runtime("fela", |_| Box::new(fela()))
        .runtime("dp", |_| Box::new(DpRuntime::default()))
        .runtime("mp", |_| Box::new(MpRuntime::default()))
        .runtime("hp", |_| Box::new(HpRuntime))
        .with_seed(seed);
    for batch in [64u64, 128, 256] {
        spec = spec.scenario(format!("b{batch}"), scenario(batch).with_fault(chaos(0.1)));
    }
    spec
}

#[test]
fn chaos_sweeps_are_byte_identical_across_job_counts() {
    let sequential = to_jsonl(&chaos_sweep(Some(5)).run(1).records);
    let parallel = to_jsonl(&chaos_sweep(Some(5)).run(4).records);
    assert!(!sequential.is_empty());
    assert_eq!(sequential.as_bytes(), parallel.as_bytes());
    // The record stream must carry the fault model it ran under.
    assert!(sequential.contains("\"fault\""));
    // A different seed re-roots the chaos realisation and changes the stream.
    let reseeded = to_jsonl(&chaos_sweep(Some(6)).run(1).records);
    assert_ne!(sequential.as_bytes(), reseeded.as_bytes());
}

#[test]
fn crash_free_fault_model_is_bit_identical_to_no_fault() {
    // Chaos with p = 0 arms the fault machinery but never fires it; every
    // runtime must produce the very same report bytes as a fault-free run.
    for runtime in [
        Box::new(fela()) as Box<dyn TrainingRuntime>,
        Box::new(DpRuntime::default()),
        Box::new(MpRuntime::default()),
        Box::new(HpRuntime),
    ] {
        let plain = runtime.run(&scenario(128));
        let armed = runtime.run(&scenario(128).with_fault(chaos(0.0)));
        assert_eq!(
            serde_json::to_string(&plain).unwrap(),
            serde_json::to_string(&armed).unwrap(),
            "runtime {} diverged under a crash-free fault model",
            runtime.name()
        );
    }
}

#[test]
fn crash_restart_run_completes_and_applies_each_gradient_exactly_once() {
    let sc = scenario(128).with_fault(FaultModel::Scripted {
        worker: 2,
        iteration: 1,
        kind: FaultKind::CrashRestart {
            down: SimDuration::from_secs(5),
        },
    });
    let (report, trace) = fela().run_traced(&sc);
    assert_eq!(report.iterations, sc.iterations);
    assert_eq!(report.counter("crashes"), 1);
    assert_eq!(report.counter("restarts"), 1);

    // fela-check proves the lease protocol: every granted token applied
    // exactly once, no ghost gradients, no grants to dead workers.
    let summary = fela_check::check_recovery(&trace).expect("lease protocol holds");
    assert_eq!(summary.crashes, 1);
    assert_eq!(summary.restarts, 1);
    assert_eq!(summary.applied as u64, summary.tokens as u64);

    // The recovered run trains the same applied-gradient set (same per-worker
    // token totals overall) as the fault-free run.
    let fault_free = fela().run(&scenario(128));
    let total = |r: &fela_metrics::RunReport| {
        (0..8)
            .map(|w| r.counter(&format!("tokens_worker{w}")))
            .sum::<u64>()
    };
    assert_eq!(total(&report), total(&fault_free));
}

#[test]
fn chaos_churn_is_race_free_and_exactly_once() {
    let sc = scenario(128).with_fault(chaos(0.1));
    let (report, trace) = fela().run_traced(&sc);
    assert_eq!(report.iterations, sc.iterations);
    fela_check::check_recovery(&trace).expect("lease protocol holds under churn");
    fela_check::check_trace(&trace, 0).expect("no data races under churn");
}
