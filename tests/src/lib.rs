//! Shared helpers for Fela integration tests live here; the tests themselves
//! are in `tests/tests/`.
